"""The 450-skill catalog (9 categories × top-50) behind the simulation.

The catalog reproduces, skill-for-skill, every named skill in the paper's
Tables 4, 8, 12, and 14 — with the endpoints it contacts, the data types
it collects, and the shape of its privacy policy — and fills the remaining
slots with generated skills whose attributes are drawn to satisfy the
aggregate quotas of Tables 1, 3, 13 and §7.1.

The catalog is *world* data: the simulated marketplace serves it and skill
backends execute it.  The auditing framework never reads it directly — it
must rediscover these facts from captures, ads, and policy text.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.util.rng import Seed

__all__ = [
    "PolicySpec",
    "SkillSpec",
    "SkillCatalog",
    "build_catalog",
    "churn_catalog",
    "STREAMING_SKILLS",
    "QUOTAS",
]


# --------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PolicySpec:
    """Shape of a skill's privacy policy, from which text is generated.

    ``platform_disclosure`` / ``endpoint_disclosures`` / ``datatype_disclosures``
    use the PoliCheck disclosure classes ``clear`` / ``vague`` / ``omitted``.
    """

    has_link: bool
    downloadable: bool
    mentions_amazon: bool = False
    links_amazon_policy: bool = False
    platform_disclosure: str = "omitted"
    endpoint_disclosures: Mapping[str, str] = field(default_factory=dict)
    datatype_disclosures: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.downloadable and not self.has_link:
            raise ValueError("a policy cannot be downloadable without a link")
        for value in (
            self.platform_disclosure,
            *self.endpoint_disclosures.values(),
            *self.datatype_disclosures.values(),
        ):
            if value not in {"clear", "vague", "omitted"}:
                raise ValueError(f"invalid disclosure class: {value}")


@dataclass(frozen=True)
class SkillSpec:
    """Ground truth for one marketplace skill."""

    skill_id: str
    name: str
    category: str
    vendor: str
    review_count: int
    invocation_name: str
    sample_utterances: Tuple[str, ...]
    amazon_endpoints: Tuple[str, ...] = ()
    other_endpoints: Tuple[str, ...] = ()
    data_types: Tuple[str, ...] = ()
    is_streaming: bool = False
    fails_to_load: bool = False
    permissions: Tuple[str, ...] = ()
    requires_account_linking: bool = False
    policy: Optional[PolicySpec] = None

    @property
    def active(self) -> bool:
        return not self.fails_to_load

    @property
    def contacts_third_party(self) -> bool:
        """True when any non-Amazon, non-vendor-owned endpoint is contacted."""
        return any(d not in _VENDOR_OWNED.get(self.vendor, ()) for d in self.other_endpoints)


#: Domains that are first-party for a given vendor (§4.1: only Garmin and
#: YouVersion Bible talk to their own domains).
_VENDOR_OWNED: Dict[str, Tuple[str, ...]] = {
    "Garmin International": ("static.garmincdn.com",),
    "Life Covenant Church, Inc.": ("api.youversionapi.com", "events.youversionapi.com"),
}


# --------------------------------------------------------------------- #
# Amazon endpoint mix
# --------------------------------------------------------------------- #

#: Every active skill session touches the core voice pipeline.
CORE_AMAZON_ENDPOINTS: Tuple[str, ...] = (
    "avs-alexa-16-na.amazon.com",
    "alexa.amazon.com",
)

#: Optional Amazon endpoints with target skill counts from Table 1
#: (probability = target / 446 active skills).
OPTIONAL_AMAZON_ENDPOINTS: Tuple[Tuple[str, float], ...] = (
    ("prod.amcs-tachyon.com", 305 / 446),
    ("api.amazonalexa.com", 173 / 446),
    ("d1s31zyz7dcc2d.cloudfront.net", 0.12),
    ("d3p8zr0ffa9t17.cloudfront.net", 0.07),
    ("dtm5qzpa8mrbl.cloudfront.net", 0.05),
    ("d2c1wgm0pbpm6k.cloudfront.net", 0.04),
    ("d38b8me95wjkbc.cloudfront.net", 0.02),
    ("d1f0esyv34gzvq.cloudfront.net", 0.01),
    ("d2gfdmu30u15x7.cloudfront.net", 0.01),
    ("device-metrics-us-2.amazon.com", 123 / 446),
    ("s3.us-east-1.amazonaws.com", 0.05),
    ("lambda.us-east-1.amazonaws.com", 0.04),
    ("kinesis.us-east-1.amazonaws.com", 0.02),
    ("skills-store.amazonaws.com", 0.01),
    ("acsechocaptiveportal.com", 27 / 446),
    ("fireoscaptiveportal.com", 20 / 446),
    ("ingestion.us-east-1.prod.arteries.alexa.a2z.com", 7 / 446),
    ("ffs-provisioner-config.amazon-dss.com", 2 / 446),
    ("api.amazon.com", 0.30),
    ("dcape-na.amazon.com", 0.20),
    ("dp-gw-na.amazon.com", 0.15),
    ("softwareupdates.amazon.com", 0.10),
    ("todo-ta-g7g.amazon.com", 0.05),
    ("kindle-time.amazon.com", 0.05),
    ("arcus-uswest.amazon.com", 0.08),
    ("msh.amazon.com", 0.06),
    ("unagi-na.amazon.com", 0.10),
)


# --------------------------------------------------------------------- #
# Aggregate quotas (Tables 13, §7.1) used by the filler generator
# --------------------------------------------------------------------- #

QUOTAS = {
    "total_skills": 450,
    "failed_skills": 4,
    "policy_links": 214,  # §7.1: 47.6 % of 450
    "policies_downloadable": 188,
    "policies_mention_amazon": 59,
    "policies_link_amazon_policy": 10,
    "platform_disclosure": {"clear": 10, "vague": 136, "omitted": 42},
    # data type -> (clear, vague, omitted, no_policy) collector counts
    "datatype_disclosure": {
        dt.VOICE_RECORDING: (20, 18, 150, 258),
        dt.CUSTOMER_ID: (11, 9, 38, 84),
        dt.SKILL_ID: (0, 11, 85, 230),
        dt.LANGUAGE: (0, 3, 5, 10),
        dt.TIMEZONE: (0, 3, 5, 10),
        dt.OTHER_PREFERENCES: (0, 40, 139, 255),
        dt.AUDIO_PLAYER_EVENTS: (0, 60, 99, 226),
    },
}


# --------------------------------------------------------------------- #
# Named skills (Tables 4, 8, 12, 14)
# --------------------------------------------------------------------- #

def _utterances(invocation: str, *extra: str) -> Tuple[str, ...]:
    return (f"open {invocation}", *extra)


def _named_skill(
    name: str,
    category: str,
    vendor: str,
    reviews: int,
    other_endpoints: Sequence[str] = (),
    streaming: bool = False,
    permissions: Sequence[str] = (),
    extra_utterances: Sequence[str] = (),
) -> SkillSpec:
    invocation = name.lower().replace("&", "and").replace("!", "").strip()
    slug = invocation.replace(" ", "-").replace("'", "").replace(",", "")
    return SkillSpec(
        skill_id=f"skill-{slug}",
        name=name,
        category=category,
        vendor=vendor,
        review_count=reviews,
        invocation_name=invocation,
        sample_utterances=_utterances(invocation, *extra_utterances),
        other_endpoints=tuple(other_endpoints),
        is_streaming=streaming,
        permissions=tuple(permissions),
    )


def _named_skills() -> List[SkillSpec]:
    """All skills named in the paper, with their Table 4/14 endpoints."""
    return [
        # ---- Connected Car -------------------------------------------------
        _named_skill(
            "Garmin", cat.CONNECTED_CAR, "Garmin International", 1250,
            other_endpoints=(
                "chtbl.com",
                "traffic.omny.fm",
                "dts.podtrac.com",
                "turnernetworksales.mc.tritondigital.com",
                "static.garmincdn.com",
            ),
            streaming=True,
            extra_utterances=("ask garmin for a driving podcast",),
        ),
        _named_skill(
            "My Tesla (Unofficial)", cat.CONNECTED_CAR, "Tesla Fans United", 310,
            other_endpoints=("chtbl.com",),
            extra_utterances=("ask my tesla about charge status",),
        ),
        _named_skill(
            "Genesis", cat.CONNECTED_CAR, "Genesis Motors", 398,
            other_endpoints=("play.podtrac.com", "cdn.megaphone.fm", "adbarker.megaphone.fm"),
            extra_utterances=("ask genesis about remote start",),
        ),
        _named_skill(
            "FordPass", cat.CONNECTED_CAR, "Ford", 2200,
            permissions=("email",),
            extra_utterances=("ask fordpass to check my fuel level",),
        ),
        _named_skill(
            "Jeep", cat.CONNECTED_CAR, "Jeep", 820,
            extra_utterances=("ask jeep to lock my doors",),
        ),
        # ---- Fashion & Style ----------------------------------------------
        _named_skill(
            "Makeup of the Day", cat.FASHION, "Xeline Development", 640,
            other_endpoints=(
                "cdn.megaphone.fm",
                "adbarker.megaphone.fm",
                "play.podtrac.com",
                "chtbl.com",
                "play.pod.npr.org",
                "1432239412.rsc.cdn77.org",
            ),
            streaming=True,
            extra_utterances=("ask makeup of the day for a look",),
        ),
        _named_skill(
            "Men's Finest Daily Fashion Tip", cat.FASHION, "Men's Finest", 13,
            other_endpoints=(
                "play.podtrac.com",
                "cdn.megaphone.fm",
                "adbarker.megaphone.fm",
                "spclient.wg.spotify.com",
                "ondemand.pod.npr.org",
            ),
            extra_utterances=("give me a fashion tip",),
        ),
        _named_skill(
            "Gwynnie Bee", cat.FASHION, "Gwynnie Bee Inc", 150,
            other_endpoints=(
                "dts.podtrac.com",
                "traffic.libsyn.com",
                "ssl.libsyn.com",
                "traffic.omny.fm",
                "1432239411.rsc.cdn77.org",
            ),
            streaming=True,
            extra_utterances=("ask gwynnie bee what's trending",),
        ),
        _named_skill(
            "Outfit Check!", cat.FASHION, "StyleWorks", 95,
            extra_utterances=("ask outfit check how i look",),
        ),
        # ---- Dating --------------------------------------------------------
        _named_skill(
            "Dating and Relationship Tips and advices", cat.DATING, "Aaron Spelling", 210,
            other_endpoints=("play.podtrac.com", "cdn.megaphone.fm", "adbarker.megaphone.fm"),
            extra_utterances=("give me a dating tip",),
        ),
        _named_skill(
            "Love Trouble", cat.DATING, "HeartWise Media", 77,
            other_endpoints=("dts.podtrac.com", "cdn.megaphone.fm", "spclient.wg.spotify.com"),
            extra_utterances=("ask love trouble for advice",),
        ),
        _named_skill(
            "Angry Girlfriend", cat.DATING, "Heart Apps Studio", 44,
            other_endpoints=("discovery.meethue.com",),
            extra_utterances=("ask angry girlfriend why she is mad",),
        ),
        # ---- Pets & Animals -------------------------------------------------
        _named_skill(
            "VCA Animal Hospitals", cat.PETS, "VCA Inc", 120,
            other_endpoints=("dillilabs.com", "api.dillilabs.com"),
            extra_utterances=("ask vca animal hospitals for pet advice",),
        ),
        _named_skill(
            "EcoSmart Live", cat.PETS, "EcoSmart", 60,
            other_endpoints=("dillilabs.com", "discovery.meethue.com"),
            extra_utterances=("ask ecosmart live to set aquarium lights",),
        ),
        _named_skill(
            "Dog Squeaky Toy", cat.PETS, "Pet Audio Works", 530,
            other_endpoints=("dillilabs.com", "media.dillilabs.com"),
            extra_utterances=("play a squeaky toy sound",),
        ),
        _named_skill(
            "Relax My Pet", cat.PETS, "Pet Audio Works", 410,
            other_endpoints=("dillilabs.com", "sounds.dillilabs.com"),
            streaming=True,
            extra_utterances=("play relaxing pet music",),
        ),
        _named_skill(
            "Dinosaur Sounds", cat.PETS, "Pet Audio Works", 330,
            other_endpoints=("dillilabs.com", "media.dillilabs.com"),
            extra_utterances=("play a dinosaur sound",),
        ),
        _named_skill(
            "Cat Sounds", cat.PETS, "Pet Audio Works", 290,
            other_endpoints=("dillilabs.com", "sounds.dillilabs.com"),
            extra_utterances=("play a cat sound",),
        ),
        _named_skill(
            "Hush Puppy", cat.PETS, "Pet Audio Works", 180,
            other_endpoints=("dillilabs.com", "cdn1.voiceapps.com"),
            extra_utterances=("ask hush puppy to calm my dog",),
        ),
        _named_skill(
            "Calm My Dog", cat.PETS, "Pet Audio Works", 260,
            other_endpoints=("dillilabs.com", "static.dillilabs.com"),
            streaming=True,
            extra_utterances=("play calming dog sounds",),
        ),
        _named_skill(
            "Calm My Pet", cat.PETS, "Pet Audio Works", 240,
            other_endpoints=("dillilabs.com", "img.dillilabs.com", "ssl.libsyn.com"),
            streaming=True,
            extra_utterances=("play pet meditation",),
        ),
        _named_skill(
            "Al's Dog Training Tips", cat.PETS, "Al Longstaff", 140,
            other_endpoints=("traffic.libsyn.com", "chtbl.com", "play.pod.npr.org"),
            extra_utterances=("ask al for a dog training tip",),
        ),
        _named_skill(
            "Comfort My Dog", cat.PETS, "PawSounds", 105,
            other_endpoints=("1432239411.rsc.cdn77.org",),
            streaming=True,
            extra_utterances=("comfort my dog",),
        ),
        _named_skill(
            "Calm My Cat", cat.PETS, "PawSounds", 88,
            other_endpoints=("1432239412.rsc.cdn77.org",),
            streaming=True,
            extra_utterances=("calm my cat",),
        ),
        _named_skill(
            "My Dog", cat.PETS, "PetCo Labs", 75,
            extra_utterances=("ask my dog how he feels",),
        ),
        _named_skill(
            "My Cat", cat.PETS, "PetCo Labs", 71,
            extra_utterances=("ask my cat for a meow",),
        ),
        _named_skill(
            "Pet Buddy", cat.PETS, "PetCo Labs", 66,
            extra_utterances=("ask pet buddy for a fact",),
        ),
        # ---- Religion & Spirituality ----------------------------------------
        _named_skill(
            "Charles Stanley Radio", cat.RELIGION, "In Touch Ministries", 480,
            other_endpoints=(
                "live.streamtheworld.com",
                "playerservices.streamtheworld.com",
                "cdn2.voiceapps.com",
            ),
            streaming=True,
            extra_utterances=("play charles stanley radio",),
        ),
        _named_skill(
            "Prayer Time", cat.RELIGION, "Faith Skills Co", 350,
            other_endpoints=("cdn2.voiceapps.com",),
            extra_utterances=("when is prayer time",),
        ),
        _named_skill(
            "Morning Bible Inspiration", cat.RELIGION, "Faith Skills Co", 270,
            other_endpoints=("cdn2.voiceapps.com", "ondemand.pod.npr.org"),
            streaming=True,
            extra_utterances=("give me morning inspiration",),
        ),
        _named_skill(
            "Holy Rosary", cat.RELIGION, "Faith Skills Co", 310,
            other_endpoints=("cdn2.voiceapps.com", "cdn1.voiceapps.com"),
            extra_utterances=("pray the holy rosary",),
        ),
        _named_skill(
            "meal prayer", cat.RELIGION, "Faith Skills Co", 190,
            other_endpoints=("cdn2.voiceapps.com", "1432239411.rsc.cdn77.org"),
            extra_utterances=("say a meal prayer",),
        ),
        _named_skill(
            "Halloween Sounds", cat.RELIGION, "Faith Skills Co", 160,
            other_endpoints=("cdn2.voiceapps.com", "ondemand.streamtheworld.com"),
            streaming=True,
            extra_utterances=("play halloween sounds",),
        ),
        _named_skill(
            "Bible Trivia", cat.RELIGION, "Faith Skills Co", 420,
            other_endpoints=("cdn2.voiceapps.com", "static.voiceapps.com"),
            extra_utterances=("play bible trivia",),
        ),
        _named_skill(
            "Say a Prayer", cat.RELIGION, "Prayer Apps Studio", 130,
            other_endpoints=("discovery.meethue.com",),
            extra_utterances=("say a prayer",),
        ),
        _named_skill(
            "YouVersion Bible", cat.RELIGION, "Life Covenant Church, Inc.", 900,
            other_endpoints=("api.youversionapi.com", "events.youversionapi.com"),
            extra_utterances=("read the verse of the day",),
        ),
        _named_skill(
            "Lords Prayer", cat.RELIGION, "Faith Audio Works", 110,
            other_endpoints=("api.youversionapi.com", "events.youversionapi.com"),
            extra_utterances=("say the lords prayer",),
        ),
        _named_skill(
            "Salah Time", cat.RELIGION, "Crescent Apps", 230,
            extra_utterances=("when is salah time",),
        ),
        _named_skill(
            "Single Decade Short Rosary", cat.RELIGION, "Faith Audio Works", 85,
            extra_utterances=("pray a short rosary",),
        ),
        _named_skill(
            "Islamic Prayer Times", cat.RELIGION, "Crescent Apps", 340,
            extra_utterances=("when is the next prayer",),
        ),
        _named_skill(
            "Rain Storm by Healing FM", cat.HEALTH, "Healing FM", 520,
            streaming=True,
            extra_utterances=("play a rain storm",),
        ),
        # ---- Smart Home ------------------------------------------------------
        _named_skill(
            "Sonos", cat.SMART_HOME, "Sonos Inc", 3100,
            extra_utterances=("ask sonos to play in the kitchen",),
        ),
        _named_skill(
            "Harmony", cat.SMART_HOME, "Logitech", 2500,
            extra_utterances=("ask harmony to turn on the tv",),
        ),
        _named_skill(
            "Dyson", cat.SMART_HOME, "Dyson Limited", 760,
            extra_utterances=("ask dyson to set fan speed to five",),
        ),
        _named_skill(
            "SimpliSafe Home Security", cat.SMART_HOME, "SimpliSafe", 1900,
            permissions=("email",),
            extra_utterances=("ask simplisafe to arm my system",),
        ),
        _named_skill(
            "SmartThings", cat.SMART_HOME, "Samsung", 4200,
            extra_utterances=("ask smartthings to turn off the lights",),
        ),
        _named_skill(
            "LG ThinQ", cat.SMART_HOME, "LG", 880,
            extra_utterances=("ask lg to start the washer",),
        ),
        _named_skill(
            "Xbox", cat.SMART_HOME, "Microsoft", 5100,
            extra_utterances=("ask xbox to turn on",),
        ),
        # Requires linking a physical robot vacuum — the paper's example
        # of a skill whose account-linking step the crawler skips (§3.1.1).
        replace(
            _named_skill(
                "iRobot Home", cat.SMART_HOME, "iRobot", 1600,
                extra_utterances=("ask irobot to start cleaning",),
            ),
            requires_account_linking=True,
        ),
        # ---- Health & Fitness -------------------------------------------------
        _named_skill(
            "Air Quality Report", cat.HEALTH, "ICM", 430,
            extra_utterances=("what is the air quality today",),
        ),
        _named_skill(
            "Essential Oil Benefits", cat.HEALTH, "ttm", 260,
            extra_utterances=("tell me about lavender oil",),
        ),
        _named_skill(
            "Relaxing Sounds: Spa Music", cat.HEALTH, "Invoked Apps", 2800,
            other_endpoints=("1432239411.rsc.cdn77.org",),
            streaming=True,
            extra_utterances=("play spa music",),
        ),
        # ---- Navigation -------------------------------------------------------
        _named_skill(
            "AAA Road Service", cat.NAVIGATION, "AAA", 610,
            permissions=("email", "location"),
            extra_utterances=("ask triple a for roadside help",),
        ),
    ]


#: Skills whose policies the paper quotes; used to force policy shapes.
_NAMED_POLICY_OVERRIDES: Dict[str, PolicySpec] = {
    "Sonos": PolicySpec(
        has_link=True,
        downloadable=True,
        mentions_amazon=True,
        links_amazon_policy=True,
        platform_disclosure="clear",
        datatype_disclosures={dt.VOICE_RECORDING: "clear"},
    ),
    "Harmony": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="vague",
        datatype_disclosures={dt.AUDIO_PLAYER_EVENTS: "vague"},
    ),
    "Garmin": PolicySpec(
        has_link=True,
        downloadable=True,
        mentions_amazon=True,
        platform_disclosure="vague",
        endpoint_disclosures={
            "Garmin International": "clear",
            "Chartable Holding Inc": "omitted",
            "Podtrac Inc": "omitted",
            "Triton Digital, Inc.": "omitted",
        },
        datatype_disclosures={dt.CUSTOMER_ID: "clear", dt.VOICE_RECORDING: "vague"},
    ),
    "YouVersion Bible": PolicySpec(
        has_link=True,
        downloadable=True,
        mentions_amazon=True,
        links_amazon_policy=True,
        platform_disclosure="vague",
        endpoint_disclosures={"Life Covenant Church, Inc.": "clear"},
        datatype_disclosures={dt.CUSTOMER_ID: "clear", dt.VOICE_RECORDING: "vague"},
    ),
    "Charles Stanley Radio": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="vague",
        endpoint_disclosures={
            "Triton Digital, Inc.": "vague",
            "Voice Apps LLC": "vague",
        },
        datatype_disclosures={dt.VOICE_RECORDING: "vague"},
    ),
    "VCA Animal Hospitals": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="vague",
        endpoint_disclosures={"Dilli Labs LLC": "vague"},
        datatype_disclosures={dt.OTHER_PREFERENCES: "vague"},
    ),
    "Gwynnie Bee": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="vague",
        endpoint_disclosures={
            "Podtrac Inc": "vague",
            "Liberated Syndication": "omitted",
            "Triton Digital, Inc.": "omitted",
            "DataCamp Limited": "omitted",
        },
        datatype_disclosures={dt.VOICE_RECORDING: "vague"},
    ),
    "Makeup of the Day": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="vague",
        endpoint_disclosures={
            "Spotify AB": "vague",
            "Podtrac Inc": "omitted",
            "Chartable Holding Inc": "omitted",
            "National Public Radio, Inc.": "omitted",
            "DataCamp Limited": "omitted",
        },
        datatype_disclosures={dt.VOICE_RECORDING: "vague"},
    ),
    "Genesis": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="omitted",
        endpoint_disclosures={"Podtrac Inc": "omitted", "Spotify AB": "omitted"},
    ),
    "My Tesla (Unofficial)": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="omitted",
        endpoint_disclosures={"Chartable Holding Inc": "omitted"},
    ),
    "Al's Dog Training Tips": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="omitted",
        endpoint_disclosures={
            "Liberated Syndication": "omitted",
            "Chartable Holding Inc": "omitted",
            "National Public Radio, Inc.": "omitted",
        },
    ),
    "Love Trouble": PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="omitted",
        endpoint_disclosures={"Podtrac Inc": "omitted", "Spotify AB": "omitted"},
    ),
}

#: The ten skills Table 14 shows with *clear* platform disclosures.
_PLATFORM_CLEAR_SKILLS: Tuple[str, ...] = (
    "AAA Road Service",
    "Salah Time",
    "My Dog",
    "My Cat",
    "Outfit Check!",
    "Pet Buddy",
    "Rain Storm by Healing FM",
    "Single Decade Short Rosary",
    "Islamic Prayer Times",
    "Sonos",
)


# --------------------------------------------------------------------- #
# Streaming skills used for the audio-ad study (§3.3) — installed on top
# of the catalog, not part of the 450.
# --------------------------------------------------------------------- #

STREAMING_SKILLS: Tuple[SkillSpec, ...] = (
    SkillSpec(
        skill_id="skill-amazon-music",
        name="Amazon Music",
        category="music",
        vendor="Amazon Technologies, Inc.",
        review_count=82000,
        invocation_name="amazon music",
        sample_utterances=("play top hits on amazon music",),
        is_streaming=True,
        data_types=(dt.VOICE_RECORDING, dt.CUSTOMER_ID, dt.AUDIO_PLAYER_EVENTS),
    ),
    SkillSpec(
        skill_id="skill-spotify",
        name="Spotify",
        category="music",
        vendor="Spotify AB",
        review_count=41000,
        invocation_name="spotify",
        sample_utterances=("play top hits on spotify",),
        other_endpoints=("spclient.wg.spotify.com",),
        is_streaming=True,
        data_types=(dt.VOICE_RECORDING, dt.CUSTOMER_ID, dt.AUDIO_PLAYER_EVENTS),
    ),
    SkillSpec(
        skill_id="skill-pandora",
        name="Pandora",
        category="music",
        vendor="Pandora Media",
        review_count=28000,
        invocation_name="pandora",
        sample_utterances=("play top hits on pandora",),
        is_streaming=True,
        data_types=(dt.VOICE_RECORDING, dt.CUSTOMER_ID, dt.AUDIO_PLAYER_EVENTS),
    ),
)


# --------------------------------------------------------------------- #
# Filler generation + quota assignment
# --------------------------------------------------------------------- #

_FILLER_THEMES: Dict[str, Tuple[str, ...]] = {
    cat.CONNECTED_CAR: ("Car Care", "Road Trip", "EV Charge", "Auto Quiz", "Garage Genie"),
    cat.DATING: ("Date Night", "Match Maker", "Icebreakers", "Romance Radio", "First Date"),
    cat.FASHION: ("Style Guide", "Wardrobe", "Trend Watch", "Runway", "Color Match"),
    cat.PETS: ("Pet Trivia", "Bird Songs", "Aquarium", "Vet Tips", "Puppy Play"),
    cat.RELIGION: ("Daily Verse", "Meditation", "Psalms", "Gospel Hour", "Zen Garden"),
    cat.SMART_HOME: ("Home Hub", "Light Magic", "Thermo Pal", "Plug Smart", "Cam View"),
    cat.WINE: ("Wine Pairings", "Sommelier", "Cocktail Hour", "Brew Guide", "Vineyard"),
    cat.HEALTH: ("Workout", "Sleep Sounds", "Calorie Count", "Yoga Flow", "Hydrate"),
    cat.NAVIGATION: ("Commute", "Transit Times", "Trail Finder", "Gas Finder", "Flight Info"),
}


def _filler_skills(named: Sequence[SkillSpec], seed: Seed) -> List[SkillSpec]:
    """Generate anonymous skills so each category reaches 50."""
    per_category: Dict[str, int] = {c: 0 for c in cat.ALL_CATEGORIES}
    for spec in named:
        per_category[spec.category] += 1
    rng = seed.rng("catalog", "filler")
    fillers: List[SkillSpec] = []
    for category in cat.ALL_CATEGORIES:
        themes = _FILLER_THEMES[category]
        needed = 50 - per_category[category]
        if needed < 0:
            raise ValueError(f"category {category} exceeds 50 named skills")
        for index in range(needed):
            theme = themes[index % len(themes)]
            name = f"{theme} {index // len(themes) + 1}"
            invocation = name.lower()
            slug = f"{category}-{invocation.replace(' ', '-')}"
            fillers.append(
                SkillSpec(
                    skill_id=f"skill-{slug}",
                    name=name,
                    category=category,
                    vendor=f"{theme} Studios",
                    review_count=rng.randint(10, 9000),
                    invocation_name=invocation,
                    sample_utterances=_utterances(invocation, f"ask {invocation} for more"),
                    is_streaming=rng.random() < 0.12,
                )
            )
    return fillers


def _assign_amazon_endpoints(skills: List[SkillSpec], seed: Seed) -> List[SkillSpec]:
    """Give every active skill its Amazon endpoint mix (Table 1 shape)."""
    rng = seed.rng("catalog", "amazon-endpoints")
    out: List[SkillSpec] = []
    for spec in skills:
        if spec.fails_to_load:
            out.append(replace(spec, amazon_endpoints=()))
            continue
        endpoints = list(CORE_AMAZON_ENDPOINTS)
        endpoints.extend(
            domain for domain, p in OPTIONAL_AMAZON_ENDPOINTS if rng.random() < p
        )
        out.append(replace(spec, amazon_endpoints=tuple(endpoints)))
    return out


def _mark_failures(skills: List[SkillSpec], seed: Seed) -> List[SkillSpec]:
    """Mark 4 filler skills (no policy, no third-party role) as failing."""
    rng = seed.rng("catalog", "failures")
    eligible = [
        i
        for i, s in enumerate(skills)
        if not s.other_endpoints and s.name not in _NAMED_POLICY_OVERRIDES
        and s.name not in _PLATFORM_CLEAR_SKILLS
    ]
    chosen = set(rng.sample(eligible, QUOTAS["failed_skills"]))
    return [
        replace(s, fails_to_load=True) if i in chosen else s
        for i, s in enumerate(skills)
    ]


def _assign_policies(skills: List[SkillSpec], seed: Seed) -> List[SkillSpec]:
    """Assign policy shapes honoring §7.1 and Table 13/14 quotas."""
    rng = seed.rng("catalog", "policies")
    by_name = {s.name: i for i, s in enumerate(skills)}
    assigned: Dict[int, PolicySpec] = {}

    # 1. Named overrides first.
    for name, policy in _NAMED_POLICY_OVERRIDES.items():
        assigned[by_name[name]] = policy

    # 2. The ten platform-clear skills (Sonos is already in the overrides).
    for name in _PLATFORM_CLEAR_SKILLS:
        index = by_name[name]
        if index in assigned:
            continue
        assigned[index] = PolicySpec(
            has_link=True,
            downloadable=True,
            mentions_amazon=True,
            links_amazon_policy=False,
            platform_disclosure="clear",
        )

    # 3. Fill the downloadable-policy pool to quota with fillers.
    downloadable_target = QUOTAS["policies_downloadable"]
    remaining = [
        i for i, s in enumerate(skills) if i not in assigned and not s.fails_to_load
    ]
    rng.shuffle(remaining)
    platform_vague_left = QUOTAS["platform_disclosure"]["vague"] - sum(
        1 for p in assigned.values() if p.platform_disclosure == "vague"
    )
    mention_left = QUOTAS["policies_mention_amazon"] - sum(
        1 for p in assigned.values() if p.mentions_amazon
    )
    link_amazon_left = QUOTAS["policies_link_amazon_policy"] - sum(
        1 for p in assigned.values() if p.links_amazon_policy
    )
    while sum(1 for p in assigned.values() if p.downloadable) < downloadable_target:
        index = remaining.pop()
        if platform_vague_left > 0:
            disclosure = "vague"
            platform_vague_left -= 1
        else:
            disclosure = "omitted"
        mentions = mention_left > 0
        if mentions:
            mention_left -= 1
        links = mentions and link_amazon_left > 0
        if links:
            link_amazon_left -= 1
        assigned[index] = PolicySpec(
            has_link=True,
            downloadable=True,
            mentions_amazon=mentions,
            links_amazon_policy=links,
            platform_disclosure=disclosure,
        )

    # 4. Link-only policies (has link, not downloadable).
    link_only = QUOTAS["policy_links"] - downloadable_target
    for _ in range(link_only):
        index = remaining.pop()
        assigned[index] = PolicySpec(has_link=True, downloadable=False)

    return [
        replace(s, policy=assigned.get(i)) if i in assigned else s
        for i, s in enumerate(skills)
    ]


def _assign_data_types(skills: List[SkillSpec], seed: Seed) -> List[SkillSpec]:
    """Assign collected data types + disclosure classes to hit Table 13."""
    rng = seed.rng("catalog", "datatypes")
    has_policy = [
        i for i, s in enumerate(skills)
        if s.active and s.policy is not None and s.policy.downloadable
    ]
    no_policy = [
        i for i, s in enumerate(skills)
        if s.active and (s.policy is None or not s.policy.downloadable)
    ]

    collected: Dict[int, Dict[str, str]] = {i: {} for i in range(len(skills))}

    def draw(pool: List[int], count: int, *, prefer: Optional[List[int]] = None) -> List[int]:
        """Sample ``count`` indices, honoring a preferred subset first."""
        chosen: List[int] = []
        if prefer:
            preferred = [i for i in pool if i in set(prefer)]
            rng.shuffle(preferred)
            chosen.extend(preferred[:count])
        rest = [i for i in pool if i not in set(chosen)]
        rng.shuffle(rest)
        chosen.extend(rest[: count - len(chosen)])
        if len(chosen) < count:
            raise ValueError("quota exceeds available skills")
        return chosen

    # Persistent-ID constraint: customer-id collectors ⊆ skill-id collectors,
    # and third-party-contacting skills preferentially collect skill ids
    # (§4.1: 8.59 % of persistent-ID collectors contact third parties ⇒ 28).
    third_party = [i for i, s in enumerate(skills) if s.active and s.contacts_third_party]
    tp_with_ids = draw(
        [i for i in third_party], min(28, len(third_party))
    )

    quotas = QUOTAS["datatype_disclosure"]

    def assign_type(
        data_type: str,
        restrict_policy: Optional[List[int]] = None,
        restrict_no_policy: Optional[List[int]] = None,
        prefer: Optional[List[int]] = None,
    ) -> None:
        clear_n, vague_n, omitted_n, no_policy_n = quotas[data_type]
        named_done = [
            i for i in has_policy
            if skills[i].policy is not None
            and data_type in skills[i].policy.datatype_disclosures
        ]
        # Honor named-override disclosures before quota sampling.
        counts = {"clear": clear_n, "vague": vague_n, "omitted": omitted_n}
        for i in named_done:
            cls = skills[i].policy.datatype_disclosures[data_type]
            if counts[cls] > 0:
                counts[cls] -= 1
            collected[i][data_type] = cls
        pool = [i for i in has_policy if data_type not in collected[i]]
        if restrict_policy is not None:
            pool = [i for i in pool if i in set(restrict_policy)]
        for cls in ("clear", "vague", "omitted"):
            for i in draw(pool, counts[cls], prefer=prefer):
                collected[i][data_type] = cls
                pool.remove(i)
        np_pool = [i for i in no_policy if data_type not in collected[i]]
        if restrict_no_policy is not None:
            np_pool = [i for i in np_pool if i in set(restrict_no_policy)]
        for i in draw(np_pool, no_policy_n, prefer=prefer):
            collected[i][data_type] = "no policy"

    # Voice is collected by every active skill; classes come from quotas.
    assign_type(dt.VOICE_RECORDING)
    assign_type(dt.SKILL_ID, prefer=tp_with_ids)
    skill_id_collectors = [i for i, c in collected.items() if dt.SKILL_ID in c]
    assign_type(
        dt.CUSTOMER_ID,
        restrict_policy=[i for i in skill_id_collectors if i in set(has_policy)],
        restrict_no_policy=[i for i in skill_id_collectors if i in set(no_policy)],
    )
    assign_type(dt.LANGUAGE)
    # Timezone collectors are the language collectors (same settings bundle).
    lang = [i for i, c in collected.items() if dt.LANGUAGE in c]
    for i in lang:
        collected[i][dt.TIMEZONE] = collected[i][dt.LANGUAGE]
    assign_type(dt.OTHER_PREFERENCES)
    assign_type(dt.AUDIO_PLAYER_EVENTS)

    out: List[SkillSpec] = []
    for i, spec in enumerate(skills):
        types = tuple(t for t in dt.ALL_DATA_TYPES if t in collected[i])
        policy = spec.policy
        if policy is not None and policy.downloadable:
            merged = dict(policy.datatype_disclosures)
            for data_type, cls in collected[i].items():
                if cls in {"clear", "vague", "omitted"}:
                    merged.setdefault(data_type, cls)
            policy = replace(policy, datatype_disclosures=merged)
        out.append(replace(spec, data_types=types, policy=policy))
    return out


# --------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------- #


class SkillCatalog:
    """Queryable view over the generated skill population."""

    def __init__(self, skills: Sequence[SkillSpec]) -> None:
        self.skills: Tuple[SkillSpec, ...] = tuple(skills)
        self._by_id: Dict[str, SkillSpec] = {s.skill_id: s for s in self.skills}
        if len(self._by_id) != len(self.skills):
            raise ValueError("duplicate skill ids in catalog")

    def by_id(self, skill_id: str) -> SkillSpec:
        spec = self._by_id.get(skill_id)
        if spec is None:
            raise KeyError(f"no such skill: {skill_id}")
        return spec

    def by_name(self, name: str) -> SkillSpec:
        for spec in self.skills:
            if spec.name == name:
                return spec
        raise KeyError(f"no such skill: {name}")

    def in_category(self, category: str) -> List[SkillSpec]:
        return [s for s in self.skills if s.category == category]

    def top_skills(self, category: str, count: int = 50) -> List[SkillSpec]:
        """Top-N by review count — the paper's install set per persona."""
        ranked = sorted(
            self.in_category(category), key=lambda s: (-s.review_count, s.skill_id)
        )
        return ranked[:count]

    @property
    def active_skills(self) -> List[SkillSpec]:
        return [s for s in self.skills if s.active]

    def __len__(self) -> int:
        return len(self.skills)

    def __iter__(self):
        return iter(self.skills)


def build_catalog(seed: Seed) -> SkillCatalog:
    """Build the full 450-skill catalog for the given seed."""
    skills = _named_skills()
    skills.extend(_filler_skills(skills, seed))
    skills = _mark_failures(skills, seed)
    skills = _assign_policies(skills, seed)
    skills = _assign_data_types(skills, seed)
    skills = _assign_amazon_endpoints(skills, seed)
    return SkillCatalog(skills)


def churn_catalog(
    catalog: SkillCatalog, seed: Seed, tokens: Sequence[str]
) -> SkillCatalog:
    """Re-rank categories of a built catalog for a timeline epoch.

    Each token is ``"<category>:<salt>"``: every skill in that category
    gets a fresh ``review_count`` drawn from a stream keyed by the salt
    and the skill id, reshuffling the category's ``top_skills`` order.
    This is a post-pass over an already-built catalog, so every other
    seeded assignment (failures, policies, data types, endpoints) is
    frozen into the specs before any churn draw happens — churning
    category X can never perturb category Y, which is what lets the
    timeline layer treat catalog churn as a per-category mutation.
    """
    churned: Dict[str, List[str]] = {}
    for token in tokens:
        category, _, salt = str(token).partition(":")
        churned.setdefault(category, []).append(salt)
    if not churned:
        return catalog
    unknown = sorted(set(churned) - set(cat.ALL_CATEGORIES))
    if unknown:
        raise ValueError(f"catalog_churn names unknown categories: {unknown}")
    skills: List[SkillSpec] = []
    for spec in catalog:
        salts = churned.get(spec.category)
        if salts is None:
            skills.append(spec)
            continue
        rng = seed.rng("catalog-churn", *salts, spec.skill_id)
        skills.append(replace(spec, review_count=rng.randint(10, 9000)))
    return SkillCatalog(skills)
