"""Benchmark fixtures: the full-scale campaign, run once per session.

Every benchmark regenerates one of the paper's tables or figures from the
shared dataset, times the analysis, prints the rows the paper reports,
and asserts the qualitative shape (who wins, rough factors, which
personas are significant).
"""

import json
from pathlib import Path

import pytest

from repro.core.campaign import run_campaign
from repro.core.personas import interest_personas

#: Measurements recorded via the ``bench_record`` fixture, keyed by
#: benchmark name.  Written to ``--bench-json`` at session end.
_BENCH_RESULTS = {}


def pytest_addoption(parser):
    group = parser.getgroup("repro", "campaign execution")
    group.addoption(
        "--parallel",
        action="store_true",
        default=False,
        help="build the session dataset with the persona-sharded parallel "
        "runner (export-identical to the serial run)",
    )
    group.addoption(
        "--workers",
        action="store",
        type=int,
        default=4,
        help="worker count when --parallel is set",
    )
    group.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write measurements recorded via the bench_record fixture "
        "to PATH as JSON (see benchmarks/BENCH_pipeline.json for the "
        "committed baseline and benchmarks/check_bench_regression.py "
        "for the CI comparison)",
    )


@pytest.fixture(scope="session")
def bench_record():
    """Record named measurements for the ``--bench-json`` report.

    Benchmarks call ``bench_record(name, **fields)`` with whatever
    scalar measurements they want persisted (seconds, ratios, counts).
    Repeated calls with the same name merge their fields.
    """

    def record(name, **fields):
        _BENCH_RESULTS.setdefault(name, {}).update(fields)

    return record


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    if path and _BENCH_RESULTS:
        payload = json.dumps(_BENCH_RESULTS, indent=2, sort_keys=True)
        Path(path).write_text(payload + "\n")


@pytest.fixture(scope="session")
def dataset(request):
    """The paper-scale campaign (450 skills, 31 crawl iterations, 13
    personas) under the default seed.

    Served from the on-disk dataset cache when warm, *without* the
    deep-copy on read (``cache_copy=False``): the fixture is already
    session-shared and the benchmarks only read it, so the copy would
    buy nothing and cost more than loading the pickle.  With
    ``--parallel`` a cold build uses the sharded runner instead of the
    serial one — the two produce export-identical datasets, so every
    benchmark sees the same artifacts either way.
    """
    if request.config.getoption("--parallel"):
        return run_campaign(
            seed=42,
            parallel=True,
            workers=request.config.getoption("--workers"),
        )
    return run_campaign(seed=42, cache=True, cache_copy=False)


@pytest.fixture(scope="session")
def segment_store(dataset, tmp_path_factory):
    """The session dataset materialized as an on-disk segment store.

    Stream-variant benchmarks run the same analyses off the k-way-merged
    segment streams instead of the in-memory artifact bundle; writing
    the store once per session keeps the comparison apples-to-apples.
    """
    from repro.core.cache import config_fingerprint
    from repro.core.experiment import ExperimentConfig
    from repro.core.segments import SegmentStore, write_dataset_segments

    store = SegmentStore(
        tmp_path_factory.mktemp("segments"),
        42,
        config_fingerprint(ExperimentConfig()),
        tuple(dataset.personas),
    )
    write_dataset_segments(store, dataset)
    return store


@pytest.fixture(scope="session")
def world(dataset):
    return dataset.world


@pytest.fixture(scope="session")
def vendor_by_skill(world):
    """Skill id -> vendor name, as scraped from store listings."""
    return {s.skill_id: s.vendor for s in world.catalog}


@pytest.fixture(scope="session")
def vendors_by_persona(world):
    return {
        p.name: {s.vendor for s in world.catalog.top_skills(p.category, 50)}
        for p in interest_personas()
    }


@pytest.fixture(scope="session")
def skill_names_by_persona(world):
    return {
        p.name: [s.name for s in world.catalog.top_skills(p.category, 50)]
        for p in interest_personas()
    }
