"""Table 14: endpoint organizations observed in Echo traffic, with
per-skill disclosure classes (the color coding of the paper's table)."""

from repro.core.compliance import analyze_compliance
from repro.core.report import render_table

AMAZON = "Amazon Technologies, Inc."

#: Disclosure expectations for the paper's named rows.
PAPER_ROWS = {
    "Garmin International": {"clear": ["Garmin"]},
    "Life Covenant Church, Inc.": {"clear": ["YouVersion Bible"]},
    "Triton Digital, Inc.": {"vague": ["Charles Stanley Radio"]},
    "Dilli Labs LLC": {"vague": ["VCA Animal Hospitals"]},
}


def bench_table14_endpoints(benchmark, dataset, world):
    analysis = benchmark.pedantic(
        analyze_compliance,
        args=(dataset, world.corpus, world.org_resolver(), world.org_categories()),
        rounds=2,
        iterations=1,
    )

    rows = []
    for org, classes in sorted(analysis.endpoint_table.items()):
        rows.append(
            (
                org,
                len(classes.get("clear", [])),
                len(classes.get("vague", [])),
                len(classes.get("omitted", [])),
                len(classes.get("no policy", [])),
            )
        )
    print()
    print(
        render_table(
            ["organization", "clear", "vague", "omitted", "no policy"],
            rows,
            title="Table 14 (skills per disclosure class)",
        )
    )

    # 13 endpoint organizations plus Amazon mediation everywhere.
    assert len(analysis.endpoint_table) == 13
    assert AMAZON in analysis.endpoint_table

    # Platform-party disclosure: ~10 clear, ~136 vague, rest omitted or
    # without policy (paper's Amazon row).
    amazon = analysis.platform_disclosure_counts()
    assert 8 <= amazon.get("clear", 0) <= 13
    assert 120 <= amazon.get("vague", 0) <= 150
    assert amazon.get("no policy", 0) == 258

    # Named rows keep their paper colors.
    catalog = world.catalog
    for org, expectations in PAPER_ROWS.items():
        classes = analysis.endpoint_table[org]
        for klass, names in expectations.items():
            classified = {catalog.by_id(s).name for s in classes.get(klass, [])}
            for name in names:
                assert name in classified, (org, klass, name)

    # Only 32 skills exhibit non-Amazon endpoints (Table 14 caption).
    non_amazon_skills = set()
    for org, classes in analysis.endpoint_table.items():
        if org == AMAZON:
            continue
        for skills in classes.values():
            non_amazon_skills.update(skills)
    assert len(non_amazon_skills) == 32
