"""World assembly: everything the lab stands up before auditing begins.

One :func:`build_world` call constructs the simulated Internet (endpoint
registry + router), the Amazon side (catalog, cloud, marketplace, DSAR
portal, audio ads), the browser-side web (universe, ad-tech world,
toplist), the policy corpus, and the auditor's own knowledge bases
(entity DB, WHOIS, filter list) — all derived from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.adtech.audio import AudioAdServer
from repro.adtech.exchange import AdTechWorld
from repro.alexa.cloud import AlexaCloud
from repro.alexa.dsar import DataRequestPortal
from repro.alexa.marketplace import Marketplace
from repro.data.domains import (
    ORG_ENTITIES,
    PIHOLE_FILTER_TEXT,
    build_endpoint_registry,
    build_entity_database,
)
from repro.data.skill_catalog import SkillCatalog, build_catalog, churn_catalog
from repro.data.websites import WebsiteSpec, build_toplist
from repro.netsim.endpoints import EndpointRegistry
from repro.netsim.faults import FaultPlan, FaultProfile
from repro.netsim.router import Router
from repro.orgmap.entity_db import EntityDatabase
from repro.orgmap.filterlists import FilterList
from repro.orgmap.resolver import OrgResolver
from repro.orgmap.whois import WhoisService
from repro.policies.corpus import PolicyCorpus, build_corpus
from repro.util.clock import PAPER_EPOCH, SimClock
from repro.util.rng import Seed
from repro.web.browser import WebUniverse

__all__ = ["World", "build_world", "build_config_world"]


@dataclass
class World:
    """Handles to every subsystem of the simulated lab."""

    seed: Seed
    clock: SimClock
    # Home-network side
    registry: EndpointRegistry
    router: Router
    # Amazon side
    catalog: SkillCatalog
    cloud: AlexaCloud
    marketplace: Marketplace
    dsar: DataRequestPortal
    audio_server: AudioAdServer
    # Web side
    universe: WebUniverse
    adtech: AdTechWorld
    toplist: List[WebsiteSpec]
    # Policies
    corpus: PolicyCorpus
    # Auditor-side knowledge
    entity_db: EntityDatabase
    whois: WhoisService
    filter_list: FilterList
    #: Seeded fault schedule shared by the router and the browsers;
    #: ``None`` means a perfectly healthy network.
    fault_plan: Optional[FaultPlan] = None

    def org_resolver(self) -> OrgResolver:
        return OrgResolver(self.entity_db, self.whois)

    def org_categories(self) -> dict:
        """Ontology categories per org (for PoliCheck endpoint analysis)."""
        return {entity.name: entity.categories for entity in ORG_ENTITIES}


def build_world(
    seed: Seed,
    catalog: SkillCatalog = None,
    faults: Optional[Union[str, FaultProfile]] = None,
    *,
    epoch_offset_days: int = 0,
    bidders_entered: int = 0,
    bidders_exited: int = 0,
    catalog_churn: tuple = (),
) -> World:
    """Stand up the whole simulated lab for one seed.

    Pass a custom ``catalog`` to audit your own skills: any
    :class:`~repro.data.skill_catalog.SkillSpec` whose endpoints exist in
    the domain catalog can be installed, exercised, captured, and checked
    against its policy exactly like the built-in 450.

    ``faults`` — a fault profile name (``"none"``/``"mild"``/``"harsh"``),
    a float-rate string, or a :class:`~repro.netsim.faults.FaultProfile` —
    installs a seeded :class:`~repro.netsim.faults.FaultPlan` on the
    router and exposes it as :attr:`World.fault_plan` for the browsers.

    The keyword-only knobs are the timeline-epoch mutations
    (:mod:`repro.core.timeline`): ``epoch_offset_days`` shifts the world
    clock's calendar epoch (the simulation still starts at elapsed 0, so
    the day-relative crawl schedule is unchanged — only the dates, and
    therefore the Table-6 holiday seasonality, move);
    ``bidders_entered``/``bidders_exited`` churn the DSP roster; and
    ``catalog_churn`` re-ranks skill categories
    (:func:`~repro.data.skill_catalog.churn_catalog`).  Use
    :func:`build_config_world` to thread them from an
    :class:`~repro.core.experiment.ExperimentConfig`.
    """
    from datetime import timedelta

    clock = SimClock(epoch=PAPER_EPOCH + timedelta(days=epoch_offset_days))
    registry = build_endpoint_registry()
    fault_plan: Optional[FaultPlan] = None
    if faults is not None:
        profile = FaultProfile.parse(faults)
        if profile.enabled:
            fault_plan = FaultPlan(seed, profile)
    router = Router(registry, clock, faults=fault_plan)
    if catalog is None:
        catalog = build_catalog(seed)
    if catalog_churn:
        catalog = churn_catalog(catalog, seed, catalog_churn)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    dsar = DataRequestPortal(cloud)
    audio_server = AudioAdServer(seed.derive("audio"))
    universe = WebUniverse()
    adtech = AdTechWorld(
        seed,
        universe,
        bidders_entered=bidders_entered,
        bidders_exited=bidders_exited,
    )
    toplist = build_toplist(seed)
    corpus = build_corpus(catalog, seed)
    entity_db = build_entity_database()
    whois = WhoisService(registry, seed)
    filter_list = FilterList.from_text(PIHOLE_FILTER_TEXT)
    return World(
        seed=seed,
        clock=clock,
        registry=registry,
        router=router,
        catalog=catalog,
        cloud=cloud,
        marketplace=marketplace,
        dsar=dsar,
        audio_server=audio_server,
        universe=universe,
        adtech=adtech,
        toplist=toplist,
        corpus=corpus,
        entity_db=entity_db,
        whois=whois,
        filter_list=filter_list,
        fault_plan=fault_plan,
    )


def build_config_world(seed: Seed, config) -> World:
    """:func:`build_world` with every world-shaping field of an
    :class:`~repro.core.experiment.ExperimentConfig` threaded through.

    The single world-construction path for campaign engines (serial,
    parallel shards, segment batches, cache loads): going through it is
    what guarantees that two engines given the same ``(seed, config)``
    audit the same world — the root of every byte-identical-exports pin.
    """
    return build_world(
        seed,
        faults=config.fault_profile,
        epoch_offset_days=config.epoch_offset_days,
        bidders_entered=config.bidders_entered,
        bidders_exited=config.bidders_exited,
        catalog_churn=config.catalog_churn,
    )
