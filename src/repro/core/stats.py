"""Statistical machinery for the bid analyses (§5.2, §5.6).

Implements the Mann-Whitney U test with the tie-corrected normal
approximation and the rank-biserial effect size the paper reports.
A from-scratch implementation (cross-checked against SciPy in the test
suite) keeps the math auditable; SciPy's exact method is used for tiny
samples where the normal approximation is poor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "MannWhitneyResult",
    "mann_whitney_u",
    "rank_biserial",
    "effect_size_label",
    "summarize",
    "bootstrap_ci",
]


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of one Mann-Whitney U comparison."""

    u_statistic: float
    p_value: float
    effect_size: float  # rank-biserial, in [-1, 1]
    n_treatment: int
    n_control: int
    alternative: str

    @property
    def significant(self) -> bool:
        """The paper's significance criterion: p < 0.05."""
        return self.p_value < 0.05


def _rank_with_ties(values: np.ndarray) -> Tuple[np.ndarray, float]:
    """Midranks plus the tie-correction term Σ(t³ - t)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    tie_term = 0.0
    i = 0
    sorted_values = values[order]
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        count = j - i + 1
        midrank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = midrank
        if count > 1:
            tie_term += count**3 - count
        i = j + 1
    return ranks, tie_term


def mann_whitney_u(
    treatment: Sequence[float],
    control: Sequence[float],
    alternative: str = "greater",
) -> MannWhitneyResult:
    """Mann-Whitney U test of ``treatment`` vs ``control``.

    ``alternative="greater"`` tests the paper's hypothesis that the
    interest persona's bids are stochastically larger than the control's
    (§5.2); ``"two-sided"`` is used for the Echo-vs-web comparison
    (§5.6).
    """
    if alternative not in {"greater", "less", "two-sided"}:
        raise ValueError(f"invalid alternative: {alternative}")
    x = np.asarray(list(treatment), dtype=float)
    y = np.asarray(list(control), dtype=float)
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")

    combined = np.concatenate([x, y])
    ranks, tie_term = _rank_with_ties(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0  # U for the treatment sample

    if min(n1, n2) < 8 and tie_term == 0:
        # Tiny samples: defer to SciPy's exact distribution.
        res = _scipy_stats.mannwhitneyu(x, y, alternative=alternative, method="exact")
        p_value = float(res.pvalue)
    else:
        mean_u = n1 * n2 / 2.0
        n = n1 + n2
        variance = (n1 * n2 / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
        if variance <= 0:
            p_value = 1.0
        else:
            # Continuity correction, matching scipy's use_continuity.
            if alternative == "greater":
                z = (u1 - mean_u - 0.5) / math.sqrt(variance)
                p_value = float(_scipy_stats.norm.sf(z))
            elif alternative == "less":
                z = (u1 - mean_u + 0.5) / math.sqrt(variance)
                p_value = float(_scipy_stats.norm.cdf(z))
            else:
                # Correct toward the null by 0.5 on |U - mean|, as scipy
                # does.  The former ``copysign(0.5, u1 - mean_u)`` form
                # returned +0.5 at ``u1 == mean_u`` (sign of +0.0), which
                # over-corrected exactly at the null center: p came out
                # < 1 where scipy reports 1.0.  With midrank ties,
                # ``|u1 - mean_u|`` can also be < 0.5, where the old form
                # flipped the sign of z; ``sf`` of the (possibly negative)
                # corrected statistic handles both regimes like scipy.
                z = (abs(u1 - mean_u) - 0.5) / math.sqrt(variance)
                p_value = float(min(1.0, 2.0 * _scipy_stats.norm.sf(z)))

    return MannWhitneyResult(
        u_statistic=u1,
        p_value=p_value,
        effect_size=rank_biserial(u1, n1, n2),
        n_treatment=n1,
        n_control=n2,
        alternative=alternative,
    )


def rank_biserial(u_treatment: float, n1: int, n2: int) -> float:
    """Rank-biserial correlation: 2U/(n1·n2) − 1.

    −1, 0, and 1 indicate stochastic subservience, equality, and
    dominance of the treatment over the control (§5.2).
    """
    if n1 <= 0 or n2 <= 0:
        raise ValueError("sample sizes must be positive")
    return 2.0 * u_treatment / (n1 * n2) - 1.0


def effect_size_label(effect: float) -> str:
    """The paper's small/medium/large banding for rank-biserial values."""
    magnitude = abs(effect)
    if magnitude >= 0.43:
        return "large"
    if magnitude >= 0.28:
        return "medium"
    if magnitude >= 0.11:
        return "small"
    return "negligible"


@dataclass(frozen=True)
class DistributionSummary:
    """Median/mean pair as reported throughout §5."""

    median: float
    mean: float
    n: int
    maximum: float


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.median,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Used to put uncertainty bands on the per-persona medians/means of
    Table 5 — bid distributions are heavy-tailed, so parametric intervals
    would be misleading.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    indexes = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.asarray([statistic(arr[idx]) for idx in indexes])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Median, mean, count, and max of a bid sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return DistributionSummary(
        median=float(np.median(arr)),
        mean=float(arr.mean()),
        n=int(arr.size),
        maximum=float(arr.max()),
    )
