"""Tests for the Alexa cloud, skill backends, devices, and marketplace."""

import pytest

from repro.alexa.account import AmazonAccount
from repro.alexa.cloud import AlexaCloud
from repro.alexa.device import AVSEcho, EchoDevice
from repro.alexa.marketplace import Marketplace
from repro.alexa.skill_backend import Directive, SkillBackend
from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed


@pytest.fixture(scope="module")
def rig():
    """A cloud + router + marketplace rig shared by this module."""
    seed = Seed(11)
    clock = SimClock()
    registry = build_endpoint_registry()
    router = Router(registry, clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    return seed, router, catalog, cloud, marketplace


def make_device(rig, name, persona="tester", device_cls=EchoDevice):
    seed, router, catalog, cloud, marketplace = rig
    account = AmazonAccount(email=f"{name}@example.com", persona=persona)
    device = device_cls(f"dev-{name}", account, router, cloud, seed)
    return device, account


class TestSkillBackend:
    def test_invoke_produces_speak_and_upload(self, rig):
        seed, _, catalog, *_ = rig
        spec = catalog.by_name("Sonos")
        backend = SkillBackend(spec, seed)
        backend.REDIRECT_RATE = 0.0
        result = backend.invoke("turn on the kitchen speaker", "CUST1")
        kinds = [d.kind for d in result.directives]
        assert "speak" in kinds
        assert "upload" in kinds

    def test_fetch_directives_for_third_party_skills(self, rig):
        seed, _, catalog, *_ = rig
        spec = catalog.by_name("Garmin")
        backend = SkillBackend(spec, seed)
        backend.REDIRECT_RATE = 0.0
        result = backend.invoke("driving podcast", "CUST1")
        fetched = {d.url.split("/")[2] for d in result.directives if d.kind == "fetch"}
        assert "chtbl.com" in fetched

    def test_collected_data_matches_spec(self, rig):
        seed, _, catalog, *_ = rig
        spec = catalog.by_name("Garmin")
        backend = SkillBackend(spec, seed)
        backend.REDIRECT_RATE = 0.0
        result = backend.invoke("hello", "CUST9")
        uploads = [d for d in result.directives if d.kind == "upload"]
        assert uploads
        data = uploads[0].data
        assert set(data) == set(spec.data_types)
        if dt.CUSTOMER_ID in data:
            assert data[dt.CUSTOMER_ID] == "CUST9"
        if dt.VOICE_RECORDING in data:
            assert data[dt.VOICE_RECORDING] == "hello"

    def test_redirects_to_alexa_at_rate(self, rig):
        seed, _, catalog, *_ = rig
        spec = catalog.by_name("Sonos")
        backend = SkillBackend(spec, seed)
        backend.REDIRECT_RATE = 1.0
        result = backend.invoke("anything", "C")
        assert result.redirected_to_alexa
        assert not result.handled

    def test_invalid_directive_kind_rejected(self):
        with pytest.raises(ValueError):
            Directive(kind="teleport")


class TestCloudRouting:
    def test_routes_to_installed_skill(self, rig):
        _, _, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "route1")
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        reply = device.say("alexa, ask sonos to play in the kitchen")
        assert reply is not None and "Sonos" in reply

    def test_unknown_command_handled_by_alexa(self, rig):
        device, account = make_device(rig, "route2")
        reply = device.say("alexa, what time is it")
        assert reply is None  # Alexa default: no skill speech

    def test_uninstalled_skill_not_routed(self, rig):
        _, _, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "route3")
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        marketplace.uninstall(account, spec.skill_id)
        assert device.say("alexa, ask sonos to play in the kitchen") is None

    def test_interactions_logged_with_epoch(self, rig):
        _, _, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "route4")
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        device.say("alexa, ask sonos to play in the kitchen")
        cloud.advance_epoch(account.customer_id)
        device.say("alexa, ask sonos to play in the kitchen")
        state = cloud.account_state(account.customer_id)
        epochs = [r.epoch for r in state.interactions]
        assert 0 in epochs and 1 in epochs

    def test_streaming_trio_routed_without_install(self, rig):
        device, account = make_device(rig, "route5")
        # Streaming skills resolve without marketplace installation.
        reply = device.say("alexa, play top hits on spotify")
        assert reply is not None

    def test_unknown_customer_rejected(self, rig):
        seed, router, catalog, cloud, _ = rig
        from repro.netsim.http import HttpRequest

        router.attach_device("ghost-dev")
        response = router.send(
            "ghost-dev",
            HttpRequest(
                "POST",
                "https://avs-alexa-16-na.amazon.com/v1/events",
                body={"event": "recognize", "customer_id": "NOBODY", "voice_recording": "x"},
            ),
        )
        assert response.status == 403


class TestDevices:
    def test_echo_traffic_encrypted_on_router(self, rig):
        _, router, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "enc1")
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        capture = router.start_capture("t", device_filter=device.device_id)
        device.run_skill_session(spec)
        router.stop_capture(capture)
        non_dns = [p for p in capture if p.protocol.value != "dns"]
        assert non_dns
        assert all(p.payload is None for p in non_dns)

    def test_avs_echo_logs_plaintext(self, rig):
        _, router, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "avs1", device_cls=AVSEcho)
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        device.run_skill_session(spec)
        assert device.plaintext_log
        events = {r.payload["body"].get("event") for r in device.plaintext_log}
        assert "recognize" in events

    def test_avs_echo_never_contacts_non_amazon(self, rig):
        _, router, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "avs2", device_cls=AVSEcho)
        spec = catalog.by_name("Garmin")  # contacts chtbl.com on an Echo
        marketplace.install(account, spec.skill_id)
        device.run_skill_session(spec)
        hosts = {r.host for r in device.plaintext_log}
        assert all(
            h.endswith(("amazon.com", "amazonalexa.com", "amcs-tachyon.com"))
            or "amazonaws" in h
            or "cloudfront" in h
            or "captiveportal" in h
            or "a2z.com" in h
            or "amazon-dss" in h
            for h in hosts
        )

    def test_echo_contacts_third_party_endpoints(self, rig):
        _, router, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "tp1")
        spec = catalog.by_name("Garmin")
        marketplace.install(account, spec.skill_id)
        capture = router.start_capture("tp", device_filter=device.device_id)
        device.run_skill_session(spec)
        router.stop_capture(capture)
        hosts = {p.sni for p in capture if p.sni}
        assert "chtbl.com" in hosts

    def test_background_sync_repeats_metrics(self, rig):
        _, router, catalog, cloud, marketplace = rig
        device, account = make_device(rig, "sync1")
        capture = router.start_capture("s", device_filter=device.device_id)
        device.background_sync(["device-metrics-us-2.amazon.com", "api.amazon.com"])
        router.stop_capture(capture)
        metrics = [p for p in capture if p.sni == "device-metrics-us-2.amazon.com"]
        api = [p for p in capture if p.sni == "api.amazon.com"]
        assert len(metrics) > len(api)


class TestMarketplace:
    def test_top_skills_listing(self, rig):
        *_, marketplace = rig
        listings = marketplace.top_skills(cat.FASHION, 10)
        assert len(listings) == 10
        reviews = [l.review_count for l in listings]
        assert reviews == sorted(reviews, reverse=True)

    def test_install_grants_permissions(self, rig):
        _, _, catalog, cloud, marketplace = rig
        account = AmazonAccount(email="perm@example.com", persona="p")
        spec = catalog.by_name("FordPass")
        receipt = marketplace.install(account, spec.skill_id)
        assert receipt.installed
        assert "email" in receipt.granted_permissions

    def test_failed_skill_install_refused(self, rig):
        _, _, catalog, cloud, marketplace = rig
        account = AmazonAccount(email="fail@example.com", persona="p")
        failed = next(s for s in catalog if s.fails_to_load)
        receipt = marketplace.install(account, failed.skill_id)
        assert not receipt.installed
        assert "failed" in receipt.failure_reason

    def test_policy_url_only_when_linked(self, rig):
        _, _, catalog, cloud, marketplace = rig
        linked = next(s for s in catalog if s.policy and s.policy.has_link)
        unlinked = next(s for s in catalog if s.policy is None)
        assert marketplace.privacy_policy_url(linked.skill_id)
        assert marketplace.privacy_policy_url(unlinked.skill_id) is None
