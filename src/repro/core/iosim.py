"""Deterministic storage fault injection and the hardened I/O seam.

The campaign's durability story (the checkpoint journal, the
content-addressed segment store, the service job tree) was built against
crash faults — a worker dying between a temp write and a rename.  Weeks
of continuous auditing add a different failure domain: disks fill up
(``ENOSPC``), writes and fsyncs fail transiently (``EIO``), renames
race remounts, appends tear, and cold storage rots bits.  This module
injects exactly those faults, deterministically, so every hardened
recovery path is exercised in tests and chaos CI instead of for the
first time in production — the same contract :mod:`repro.netsim.faults`
established for network faults and
:class:`~repro.core.parallel.WorkerFaultPlan` for worker faults:

* a :class:`StorageFaultProfile` names the failure mix as per-operation
  rates, with the same ``none`` / ``mild`` / ``harsh`` registry and
  ``parse`` contract as :class:`~repro.netsim.faults.FaultProfile`;
* a :class:`StorageFaultPlan` turns the profile into concrete
  :class:`StorageFaultDecision`\\ s drawn from
  :class:`~repro.util.rng.StreamFamily` substreams derived from
  ``Seed.derive("storage")`` and keyed per ``(component, op)`` — the
  Nth write of a component/op pair gets the same decision in every run
  of the same seed, independent of what other components are doing;
* the seam itself is :func:`repro.core.checkpoint.atomic_write_bytes`
  plus the :func:`read_bytes` / :func:`read_text` helpers used by the
  self-healing read paths (digest cache, sidecar indexes, checkpoint
  shards, dataset cache).

**Fault semantics.**  ``slow`` sleeps on the host wall clock (storage
latency is real-world latency — it must never touch the simulated
clock, or fault profiles would change sim-time traces).  ``eio`` /
``fsync`` / ``rename`` / ``torn`` are *transient*: the seam retries
them under :data:`DEFAULT_STORAGE_RETRY` (capped exponential backoff on
the host clock), so a campaign under any profile where writes
eventually succeed exports byte-identical files to a no-fault run.
``enospc`` is *persistent-by-meaning*: a full disk does not heal on
retry, so it propagates immediately and the campaign degrades cleanly
(serial segment runs return the uncovered personas as missing; the
shard supervisor falls back to ``on_shard_failure="degrade"`` partial
semantics; the service parks the job as ``failed`` with
``reason="storage_exhausted"``).  ``corrupt_read`` flips one bit in
the first bytes of the returned payload — injected **only** at read
sites whose consumers fully re-validate (schema envelope, content
digest, pickle load) and recover without changing outputs, which is
what keeps the determinism bar honest.

**Counters.**  Every plan accumulates ``storage.*`` counters
(thread-safe, process-local): ``storage.retries``,
``storage.retry_exhausted``, ``storage.enospc``,
``storage.quarantined``, and ``storage.faults.injected.<kind>``.
Campaign runs fold a non-empty snapshot into ``dataset.obs`` (memory
store) or the store manifest's ``storage`` block (segment store).

**Installation.**  A plan is a property of the harness, never of a
:class:`~repro.core.campaign.CampaignSpec`: :func:`install_storage_faults`
activates one process-globally (and, with ``propagate=True``, exports
``REPRO_STORAGE_FAULTS`` so spawned worker processes bootstrap the same
plan), the :func:`storage_faults` context manager scopes one to a test,
and the CLI's ``--storage-faults`` flag installs one for a run.
"""

from __future__ import annotations

import errno
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import sleep as _host_sleep
from typing import Dict, Optional, Tuple, Union

from repro.util.rng import Seed, StreamFamily

__all__ = [
    "STORAGE_FAULT_KINDS",
    "STORAGE_FAULT_PROFILES",
    "DEFAULT_STORAGE_RETRY",
    "StorageFaultDecision",
    "StorageFaultPlan",
    "StorageFaultProfile",
    "StorageRetryPolicy",
    "current_storage_faults",
    "install_storage_faults",
    "is_enospc",
    "read_bytes",
    "read_text",
    "storage_faults",
    "uninstall_storage_faults",
]

#: The injectable failure modes, in the order the decision draw checks
#: them (the order is part of the deterministic contract — reordering
#: would reshuffle every seeded fault schedule).
STORAGE_FAULT_KINDS = (
    "enospc",
    "eio",
    "fsync",
    "rename",
    "torn",
    "slow",
    "corrupt_read",
)

#: Kinds the write seam can act on (``corrupt_read`` is read-only) and
#: kinds the read seam can act on.  A decision whose kind is outside the
#: site's set is a healthy operation — the draw is still consumed, so
#: schedules stay deterministic across sites.
_WRITE_KINDS = frozenset(("enospc", "eio", "fsync", "rename", "torn", "slow"))
_READ_KINDS = frozenset(("eio", "slow", "corrupt_read"))

#: Environment variable carrying an installed plan to spawned worker
#: processes: ``"<profile>:<seed_root>"``.
_ENV_VAR = "REPRO_STORAGE_FAULTS"


@dataclass(frozen=True)
class StorageFaultProfile:
    """A named mix of per-operation storage fault rates.

    Rates are independent probabilities partitioning each operation
    draw: their sum must stay ≤ 1 and the remainder is a healthy
    operation.  ``slow_seconds`` bounds the host-clock sleep a ``slow``
    decision injects; ``torn_fraction`` bounds how much of a torn
    write's payload lands before the failure.
    """

    name: str
    enospc_rate: float = 0.0
    eio_rate: float = 0.0
    fsync_rate: float = 0.0
    rename_rate: float = 0.0
    torn_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_read_rate: float = 0.0
    slow_seconds: Tuple[float, float] = (0.0005, 0.003)
    torn_fraction: Tuple[float, float] = (0.1, 0.9)

    def __post_init__(self) -> None:
        for kind in STORAGE_FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.total_rate > 1.0:
            raise ValueError(
                f"fault rates must sum to <= 1, got {self.total_rate}"
            )
        for field_name in ("slow_seconds", "torn_fraction"):
            lo, hi = getattr(self, field_name)
            if lo < 0 or hi < lo:
                raise ValueError(
                    f"{field_name} must be a (lo, hi) range, got "
                    f"{getattr(self, field_name)}"
                )

    @property
    def total_rate(self) -> float:
        return sum(
            getattr(self, f"{kind}_rate") for kind in STORAGE_FAULT_KINDS
        )

    @property
    def enabled(self) -> bool:
        """Whether this profile can ever inject a fault."""
        return self.total_rate > 0.0

    @classmethod
    def from_rate(cls, rate: float) -> "StorageFaultProfile":
        """A custom profile from one overall fault rate.

        The rate is split across the *transient* kinds only (2:1:1:1:3:2
        for eio : fsync : rename : torn : slow : corrupt_read) — a disk
        that is deterministically full at some rate would make "writes
        eventually succeed" a coin flip, so ``enospc`` is opt-in via an
        explicit profile or :meth:`StorageFaultPlan.exhaust`.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        return cls(
            name=f"rate:{rate:g}",
            eio_rate=rate * 0.2,
            fsync_rate=rate * 0.1,
            rename_rate=rate * 0.1,
            torn_rate=rate * 0.1,
            slow_rate=rate * 0.3,
            corrupt_read_rate=rate * 0.2,
        )

    @classmethod
    def parse(cls, text: Union[str, "StorageFaultProfile"]) -> "StorageFaultProfile":
        """Resolve a ``--storage-faults`` value: a profile name or rate."""
        if isinstance(text, StorageFaultProfile):
            return text
        key = str(text).strip().lower()
        profile = STORAGE_FAULT_PROFILES.get(key)
        if profile is not None:
            return profile
        if key.startswith("rate:"):
            key = key[len("rate:"):]
        try:
            rate = float(key)
        except ValueError:
            raise ValueError(
                f"unknown storage fault profile {text!r}: expected one of "
                f"{sorted(STORAGE_FAULT_PROFILES)} or a float rate in [0, 1]"
            ) from None
        return cls.from_rate(rate)


#: The named profiles the CLI exposes.  ``mild`` keeps a small campaign
#: comfortably completable under the default retry budget; ``harsh`` is
#: the stress setting.  Neither injects ``enospc`` — disk exhaustion is
#: a scenario (see :meth:`StorageFaultPlan.exhaust`), not a rate.
STORAGE_FAULT_PROFILES: Dict[str, StorageFaultProfile] = {
    "none": StorageFaultProfile(name="none"),
    "mild": StorageFaultProfile(
        name="mild",
        eio_rate=0.01,
        fsync_rate=0.008,
        rename_rate=0.006,
        torn_rate=0.008,
        slow_rate=0.01,
        corrupt_read_rate=0.01,
    ),
    "harsh": StorageFaultProfile(
        name="harsh",
        eio_rate=0.03,
        fsync_rate=0.02,
        rename_rate=0.015,
        torn_rate=0.025,
        slow_rate=0.03,
        corrupt_read_rate=0.04,
    ),
}


@dataclass(frozen=True)
class StorageFaultDecision:
    """One injected storage fault.

    ``seconds`` is the host-clock sleep of a ``slow`` decision;
    ``fraction`` parameterizes the payload-dependent kinds (how much of
    a torn write lands; where in the first bytes a corrupt read flips).
    """

    kind: str  # one of STORAGE_FAULT_KINDS
    seconds: float = 0.0
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise ValueError(f"unknown storage fault kind: {self.kind!r}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"fault fraction must be in [0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class StorageRetryPolicy:
    """Capped exponential backoff for transient storage faults.

    Unlike the network :class:`~repro.netsim.faults.RetryPolicy`, this
    backs off on the **host** clock — storage latency is harness
    latency, and must never advance the simulated world.  Deterministic
    (no jitter) and deliberately tiny: the point is to survive
    transient faults, not to model disk recovery times.
    """

    max_attempts: int = 4
    base_backoff: float = 0.002
    multiplier: float = 2.0
    max_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def backoff(self, retry_number: int) -> float:
        """Host seconds to wait before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ValueError(f"retry_number is 1-based, got {retry_number}")
        return min(
            self.base_backoff * self.multiplier ** (retry_number - 1),
            self.max_backoff,
        )


#: The seam-wide policy: every atomic write and seam read retries
#: transient faults under this budget before giving up.
DEFAULT_STORAGE_RETRY = StorageRetryPolicy()


class StorageFaultPlan:
    """Seeded per-``(component, op)`` storage fault schedule.

    Every seam operation draws one decision from the stream named by
    its component (``"checkpoint"``, ``"segments"``, ``"cache"``,
    ``"jobs"``) and operation (``"shard"``, ``"segment"``, ``"marker"``,
    ``"index"``, ``"digest-cache"``, ``"manifest"``, ``"state"``, …).
    Because each pair owns an independent substream, a component's Nth
    operation of a kind gets the same decision in every run of the same
    seed — regardless of what other components interleave with it.

    Thread-safe: worker threads of a parallel campaign share one plan.
    Counters (:meth:`snapshot`) are process-local — faults injected
    inside process-backend workers are counted in the worker, not here.
    """

    def __init__(self, seed: Seed, profile: StorageFaultProfile) -> None:
        self.seed = seed
        self.profile = profile
        self._streams = StreamFamily(seed.derive("storage"), profile.name)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        #: ``(component, op) -> threshold``: operations beyond the
        #: threshold fail with ENOSPC (op ``None`` matches every op of
        #: the component).  See :meth:`exhaust`.
        self._exhaust: Dict[Tuple[str, Optional[str]], int] = {}
        self._calls: Dict[Tuple[str, str], int] = {}

    @classmethod
    def from_profile(
        cls, profile: Union[str, StorageFaultProfile], seed: Union[int, Seed]
    ) -> "StorageFaultPlan":
        """Build a plan from a profile name/rate and a root seed."""
        resolved = StorageFaultProfile.parse(profile)
        root = seed if isinstance(seed, Seed) else Seed(seed)
        return cls(root, resolved)

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def decide(self, component: str, op: str) -> Optional[StorageFaultDecision]:
        """The fault (if any) for this component's next ``op``."""
        with self._lock:
            key = (component, op)
            self._calls[key] = self._calls.get(key, 0) + 1
            threshold = self._exhaust.get((component, op))
            if threshold is None:
                threshold = self._exhaust.get((component, None))
            if threshold is not None and self._calls[key] > threshold:
                return StorageFaultDecision("enospc")
            profile = self.profile
            if not profile.enabled:
                return None
            stream = self._streams.stream(component, op)
            draw = stream.random()
            edge = 0.0
            for kind in STORAGE_FAULT_KINDS:
                edge += getattr(profile, f"{kind}_rate")
                if draw < edge:
                    if kind == "slow":
                        lo, hi = profile.slow_seconds
                        return StorageFaultDecision(
                            "slow", seconds=stream.uniform(lo, hi)
                        )
                    if kind == "torn":
                        lo, hi = profile.torn_fraction
                        return StorageFaultDecision(
                            "torn", fraction=stream.uniform(lo, hi)
                        )
                    if kind == "corrupt_read":
                        return StorageFaultDecision(
                            "corrupt_read", fraction=stream.random()
                        )
                    return StorageFaultDecision(kind)
            return None

    def exhaust(
        self, component: str, op: Optional[str] = None, *, after: int = 0
    ) -> "StorageFaultPlan":
        """Model a filling disk: ``(component, op)`` operations beyond
        the first ``after`` fail with ``ENOSPC``, persistently.

        ``op=None`` exhausts every operation of the component.  Returns
        ``self`` so tests can chain it off the constructor.
        """
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        with self._lock:
            self._exhaust[(component, op)] = after
        return self

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #

    def record(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a ``storage.*`` counter (thread-safe)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def snapshot(self) -> Dict[str, int]:
        """A sorted copy of the non-zero ``storage.*`` counters."""
        with self._lock:
            return {
                name: count
                for name, count in sorted(self._counters.items())
                if count
            }

    def summary(self) -> Dict[str, object]:
        """The manifest ``storage`` block: profile plus counters."""
        return {"profile": self.profile.name, "counters": self.snapshot()}


# ---------------------------------------------------------------------- #
# Plan installation (harness-global, never spec-carried)
# ---------------------------------------------------------------------- #

_active_plan: Optional[StorageFaultPlan] = None
_install_lock = threading.Lock()


def install_storage_faults(
    plan: Union[str, StorageFaultProfile, StorageFaultPlan],
    *,
    seed: Union[int, Seed] = 42,
    propagate: bool = False,
) -> StorageFaultPlan:
    """Activate a storage fault plan for this process.

    ``plan`` may be a ready :class:`StorageFaultPlan`, or a profile
    name/rate (resolved with ``seed``).  With ``propagate=True`` the
    profile and seed are exported via ``REPRO_STORAGE_FAULTS`` so
    spawned worker processes bootstrap an equivalent plan (fork-started
    workers inherit the installed plan either way).  Returns the
    installed plan.
    """
    global _active_plan
    if not isinstance(plan, StorageFaultPlan):
        plan = StorageFaultPlan.from_profile(plan, seed)
    with _install_lock:
        _active_plan = plan
        if propagate:
            os.environ[_ENV_VAR] = f"{plan.profile.name}:{plan.seed.root}"
    return plan


def uninstall_storage_faults() -> None:
    """Deactivate the installed plan (and its env propagation)."""
    global _active_plan
    with _install_lock:
        _active_plan = None
        os.environ.pop(_ENV_VAR, None)


def current_storage_faults() -> Optional[StorageFaultPlan]:
    """The active plan: installed in-process, or bootstrapped from the
    ``REPRO_STORAGE_FAULTS`` environment (spawned worker processes)."""
    global _active_plan
    if _active_plan is not None:
        return _active_plan
    env = os.environ.get(_ENV_VAR)
    if not env:
        return None
    profile_text, _, seed_text = env.rpartition(":")
    try:
        plan = StorageFaultPlan.from_profile(profile_text, int(seed_text))
    except (ValueError, TypeError):
        return None
    with _install_lock:
        if _active_plan is None:
            _active_plan = plan
        return _active_plan


@contextmanager
def storage_faults(
    plan: Union[str, StorageFaultProfile, StorageFaultPlan],
    *,
    seed: Union[int, Seed] = 42,
    propagate: bool = False,
):
    """Scope a plan to a ``with`` block (tests); restores the previous
    plan and environment on exit, even on error."""
    global _active_plan
    previous_plan = _active_plan
    previous_env = os.environ.get(_ENV_VAR)
    installed = install_storage_faults(plan, seed=seed, propagate=propagate)
    try:
        yield installed
    finally:
        with _install_lock:
            _active_plan = previous_plan
            if previous_env is None:
                os.environ.pop(_ENV_VAR, None)
            else:
                os.environ[_ENV_VAR] = previous_env


# ---------------------------------------------------------------------- #
# Error classification
# ---------------------------------------------------------------------- #

#: Errnos the seam treats as transient (worth a bounded retry).  ENOSPC
#: is deliberately absent: a full disk does not heal on retry.
_TRANSIENT_ERRNOS = frozenset(
    code
    for code in (
        errno.EIO,
        errno.EAGAIN,
        errno.EINTR,
        errno.EBUSY,
    )
    if code is not None
)

_ENOSPC_MARKERS = ("ENOSPC", "Errno 28", "No space left on device")


def transient_storage_error(exc: BaseException) -> bool:
    """Whether the seam should retry this error."""
    return isinstance(exc, OSError) and exc.errno in _TRANSIENT_ERRNOS


def is_enospc(exc: BaseException) -> bool:
    """Whether an exception (or its cause chain / message) is disk
    exhaustion — matches raw ``OSError``\\ s, wrapped ones, and
    supervisor failure summaries that embed a worker traceback."""
    seen = 0
    current: Optional[BaseException] = exc
    while current is not None and seen < 8:
        if isinstance(current, OSError) and current.errno == errno.ENOSPC:
            return True
        seen += 1
        current = current.__cause__ or current.__context__
    return is_enospc_text(str(exc))


def is_enospc_text(text: str) -> bool:
    """ENOSPC detection for error *records* (journal error files, job
    failure messages) where only the formatted text survives."""
    return any(marker in text for marker in _ENOSPC_MARKERS)


# ---------------------------------------------------------------------- #
# The read seam
# ---------------------------------------------------------------------- #


def _corrupt(data: bytes, fraction: float) -> bytes:
    """Flip one bit in the first bytes of ``data``.

    The flip lands inside the first 16 bytes — always inside a JSON
    document's structural prefix or a pickle's header — so every
    consumer's envelope/schema validation deterministically rejects the
    payload and takes its recovery path, rather than silently absorbing
    an altered value.
    """
    if not data:
        return data
    offset = min(int(fraction * min(len(data), 16)), len(data) - 1)
    corrupted = bytearray(data)
    corrupted[offset] ^= 0x01
    return bytes(corrupted)


def read_bytes(
    path: Union[str, Path],
    *,
    component: str,
    op: str = "read",
    corruptible: bool = False,
    retry: StorageRetryPolicy = DEFAULT_STORAGE_RETRY,
) -> bytes:
    """Read a file through the storage fault seam.

    Injects ``eio`` (transient, retried), ``slow`` (host-clock sleep),
    and — only when the caller marks the site ``corruptible`` —
    ``corrupt_read`` bit flips.  A site is corruptible only when its
    consumer fully re-validates the payload and recovers from rejection
    without changing campaign outputs (digest cache, sidecar index,
    checkpoint shard, dataset cache).  ``FileNotFoundError`` and other
    non-transient errors propagate immediately: absence is a semantic
    result, not a fault.
    """
    target = Path(path)
    plan = current_storage_faults()
    last: Optional[OSError] = None
    for attempt in range(1, retry.max_attempts + 1):
        decision = plan.decide(component, op) if plan is not None else None
        if decision is not None and decision.kind not in _READ_KINDS:
            decision = None
        try:
            if decision is not None:
                if decision.kind == "slow":
                    plan.record("storage.faults.injected.slow")
                    _host_sleep(decision.seconds)
                elif decision.kind == "eio":
                    plan.record("storage.faults.injected.eio")
                    raise OSError(
                        errno.EIO, f"injected: read I/O error ({target.name})"
                    )
            data = target.read_bytes()
            if (
                decision is not None
                and decision.kind == "corrupt_read"
                and corruptible
            ):
                plan.record("storage.faults.injected.corrupt_read")
                data = _corrupt(data, decision.fraction)
            return data
        except OSError as exc:
            if not transient_storage_error(exc):
                raise
            last = exc
            if attempt >= retry.max_attempts:
                if plan is not None:
                    plan.record("storage.retry_exhausted")
                raise
            if plan is not None:
                plan.record("storage.retries")
            _host_sleep(retry.backoff(attempt))
    raise last  # pragma: no cover - loop always returns or raises


def read_text(
    path: Union[str, Path],
    *,
    component: str,
    op: str = "read",
    corruptible: bool = False,
    encoding: str = "utf-8",
) -> str:
    """:func:`read_bytes`, decoded."""
    return read_bytes(
        path, component=component, op=op, corruptible=corruptible
    ).decode(encoding)
