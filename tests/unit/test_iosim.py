"""Unit tests for the storage fault injector (repro.core.iosim) and the
hardened atomic-write seam it drives (repro.core.checkpoint)."""

import errno
import json

import pytest

from repro.core.checkpoint import atomic_write_bytes, quarantine_path
from repro.core.iosim import (
    DEFAULT_STORAGE_RETRY,
    STORAGE_FAULT_KINDS,
    STORAGE_FAULT_PROFILES,
    StorageFaultDecision,
    StorageFaultPlan,
    StorageFaultProfile,
    StorageRetryPolicy,
    current_storage_faults,
    install_storage_faults,
    is_enospc,
    is_enospc_text,
    read_bytes,
    storage_faults,
    transient_storage_error,
    uninstall_storage_faults,
)
from repro.util.rng import Seed


class TestProfiles:
    def test_registry_shapes(self):
        assert set(STORAGE_FAULT_PROFILES) == {"none", "mild", "harsh"}
        assert not STORAGE_FAULT_PROFILES["none"].enabled
        for name in ("mild", "harsh"):
            profile = STORAGE_FAULT_PROFILES[name]
            assert profile.enabled
            assert profile.total_rate <= 1.0
            # Disk exhaustion is a scenario (exhaust()), never a rate.
            assert profile.enospc_rate == 0.0

    def test_parse_names_rates_and_passthrough(self):
        assert StorageFaultProfile.parse("mild") is STORAGE_FAULT_PROFILES["mild"]
        assert StorageFaultProfile.parse(" HARSH ").name == "harsh"
        custom = StorageFaultProfile.parse("0.2")
        assert custom.name == "rate:0.2"
        assert custom.total_rate == pytest.approx(0.2)
        assert StorageFaultProfile.parse("rate:0.1").total_rate == pytest.approx(0.1)
        direct = StorageFaultProfile(name="x", eio_rate=0.5)
        assert StorageFaultProfile.parse(direct) is direct

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown storage fault profile"):
            StorageFaultProfile.parse("chaotic")

    def test_validation(self):
        with pytest.raises(ValueError, match="eio_rate"):
            StorageFaultProfile(name="bad", eio_rate=1.5)
        with pytest.raises(ValueError, match="sum to <= 1"):
            StorageFaultProfile(name="bad", eio_rate=0.6, slow_rate=0.6)
        with pytest.raises(ValueError, match="torn_fraction"):
            StorageFaultProfile(name="bad", torn_fraction=(0.9, 0.1))
        with pytest.raises(ValueError, match="unknown storage fault kind"):
            StorageFaultDecision("gremlin")

    def test_from_rate_splits_across_transient_kinds_only(self):
        profile = StorageFaultProfile.from_rate(0.5)
        assert profile.enospc_rate == 0.0
        assert profile.total_rate == pytest.approx(0.5)


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = StorageRetryPolicy(
            max_attempts=5, base_backoff=0.002, multiplier=2.0, max_backoff=0.005
        )
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == [
            0.002,
            0.004,
            0.005,
            0.005,
        ]
        with pytest.raises(ValueError, match="1-based"):
            policy.backoff(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            StorageRetryPolicy(multiplier=0.5)


class TestPlanDecisions:
    def test_same_seed_same_schedule(self):
        draws = []
        for _ in range(2):
            plan = StorageFaultPlan.from_profile("harsh", 9)
            draws.append(
                [plan.decide("segments", "segment") for _ in range(200)]
            )
        assert draws[0] == draws[1]
        assert any(d is not None for d in draws[0])

    def test_streams_are_independent_per_component_op(self):
        # Interleaving other components' draws must not shift a
        # component's own schedule — each (component, op) pair owns an
        # independent substream.
        alone = StorageFaultPlan.from_profile("harsh", 9)
        noisy = StorageFaultPlan.from_profile("harsh", 9)
        expected = [alone.decide("checkpoint", "shard") for _ in range(100)]
        observed = []
        for _ in range(100):
            noisy.decide("segments", "segment")
            observed.append(noisy.decide("checkpoint", "shard"))
            noisy.decide("cache", "dataset")
        assert observed == expected

    def test_decision_mix_covers_every_kind(self):
        plan = StorageFaultPlan.from_profile("harsh", 7)
        kinds = {
            d.kind
            for _ in range(4000)
            for d in [plan.decide("segments", "segment")]
            if d is not None
        }
        assert kinds == set(STORAGE_FAULT_KINDS) - {"enospc"}

    def test_none_profile_never_faults(self):
        plan = StorageFaultPlan.from_profile("none", 3)
        assert all(
            plan.decide("segments", "segment") is None for _ in range(100)
        )

    def test_exhaust_turns_persistent_enospc(self):
        plan = StorageFaultPlan.from_profile("none", 3).exhaust(
            "segments", "segment", after=2
        )
        decisions = [plan.decide("segments", "segment") for _ in range(4)]
        assert decisions[0] is None and decisions[1] is None
        assert decisions[2].kind == "enospc"
        assert decisions[3].kind == "enospc"  # a full disk stays full
        assert plan.decide("segments", "marker") is None  # other ops fine

    def test_exhaust_component_wide(self):
        plan = StorageFaultPlan.from_profile("none", 3).exhaust("jobs")
        assert plan.decide("jobs", "state").kind == "enospc"
        assert plan.decide("jobs", "spec").kind == "enospc"

    def test_counters(self):
        plan = StorageFaultPlan.from_profile("none", 3)
        plan.record("storage.retries")
        plan.record("storage.retries", 2)
        plan.record("storage.zero", 0)
        assert plan.snapshot() == {"storage.retries": 3}
        assert plan.summary() == {
            "profile": "none",
            "counters": {"storage.retries": 3},
        }


class TestErrorClassification:
    def test_transient(self):
        assert transient_storage_error(OSError(errno.EIO, "io"))
        assert not transient_storage_error(OSError(errno.ENOSPC, "full"))
        assert not transient_storage_error(ValueError("nope"))

    def test_is_enospc_direct_wrapped_and_textual(self):
        assert is_enospc(OSError(errno.ENOSPC, "no space"))
        try:
            try:
                raise OSError(errno.ENOSPC, "no space")
            except OSError as inner:
                raise RuntimeError("campaign failed") from inner
        except RuntimeError as wrapped:
            assert is_enospc(wrapped)
        assert is_enospc(RuntimeError("worker: [Errno 28] write failed"))
        assert not is_enospc(OSError(errno.EIO, "io"))
        assert is_enospc_text("No space left on device")
        assert not is_enospc_text("connection reset")


class TestInstallation:
    def test_context_manager_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE_FAULTS", raising=False)
        uninstall_storage_faults()
        assert current_storage_faults() is None
        with storage_faults("mild", seed=7, propagate=True) as plan:
            assert current_storage_faults() is plan
            assert plan.profile.name == "mild"
            assert plan.seed.root == 7
            import os

            assert os.environ["REPRO_STORAGE_FAULTS"] == "mild:7"
            with storage_faults("harsh", seed=8) as inner:
                assert current_storage_faults() is inner
            assert current_storage_faults() is plan
        assert current_storage_faults() is None
        import os

        assert "REPRO_STORAGE_FAULTS" not in os.environ

    def test_env_bootstrap_for_spawned_workers(self, monkeypatch):
        uninstall_storage_faults()
        monkeypatch.setenv("REPRO_STORAGE_FAULTS", "rate:0.1:99")
        try:
            plan = current_storage_faults()
            assert plan is not None
            assert plan.profile.total_rate == pytest.approx(0.1)
        finally:
            uninstall_storage_faults()

    def test_install_accepts_plan_profile_and_name(self):
        try:
            ready = StorageFaultPlan.from_profile("harsh", 1)
            assert install_storage_faults(ready) is ready
            installed = install_storage_faults(
                STORAGE_FAULT_PROFILES["mild"], seed=2
            )
            assert installed.profile.name == "mild"
        finally:
            uninstall_storage_faults()


class TestAtomicWriteSeam:
    def test_faulted_writes_converge_to_exact_bytes(self, tmp_path):
        with storage_faults("harsh", seed=7) as plan:
            for index in range(150):
                payload = json.dumps({"k": index}).encode()
                atomic_write_bytes(
                    tmp_path / "data.json",
                    payload,
                    component="segments",
                    op="segment",
                )
                assert (tmp_path / "data.json").read_bytes() == payload
            counters = plan.snapshot()
        assert counters["storage.retries"] > 0
        # No torn bytes ever reach the live name, and no temp litter.
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]

    def test_enospc_propagates_immediately(self, tmp_path):
        plan = StorageFaultPlan.from_profile("none", 3).exhaust("jobs", "state")
        with storage_faults(plan):
            with pytest.raises(OSError) as excinfo:
                atomic_write_bytes(
                    tmp_path / "state.json", b"{}", component="jobs", op="state"
                )
        assert is_enospc(excinfo.value)
        assert plan.snapshot()["storage.enospc"] == 1
        assert "storage.retries" not in plan.snapshot()  # no retry burn
        assert not (tmp_path / "state.json").exists()
        assert list(tmp_path.iterdir()) == []  # temp cleaned up

    def test_permanent_transient_fault_exhausts_retry_budget(self, tmp_path):
        profile = StorageFaultProfile(name="always-torn", torn_rate=1.0)
        with storage_faults(StorageFaultPlan(Seed(3), profile)) as plan:
            with pytest.raises(OSError):
                atomic_write_bytes(
                    tmp_path / "x.bin", b"payload", component="segments", op="segment"
                )
        counters = plan.snapshot()
        assert counters["storage.retry_exhausted"] == 1
        assert (
            counters["storage.retries"]
            == DEFAULT_STORAGE_RETRY.max_attempts - 1
        )
        # The torn temp file never reached the live name.
        assert not (tmp_path / "x.bin").exists()
        assert list(tmp_path.iterdir()) == []

    def test_write_without_plan_is_plain_atomic_write(self, tmp_path):
        uninstall_storage_faults()
        atomic_write_bytes(tmp_path / "plain.txt", b"ok", component="cache")
        assert (tmp_path / "plain.txt").read_bytes() == b"ok"


class TestReadSeam:
    def test_corruptible_read_flips_one_early_bit(self, tmp_path):
        path = tmp_path / "cache.json"
        payload = b'{"schema": 1, "files": {}}'
        path.write_bytes(payload)
        profile = StorageFaultProfile(name="rot", corrupt_read_rate=1.0)
        with storage_faults(StorageFaultPlan(Seed(5), profile)) as plan:
            corrupted = read_bytes(
                path, component="segments", op="digest-cache", corruptible=True
            )
            assert corrupted != payload
            assert len(corrupted) == len(payload)
            diff = [i for i, (a, b) in enumerate(zip(payload, corrupted)) if a != b]
            assert len(diff) == 1 and diff[0] < 16
            # Non-corruptible sites consume the draw but return honest
            # bytes — corruption only lands where consumers re-validate.
            assert (
                read_bytes(path, component="segments", op="marker") == payload
            )
            assert plan.snapshot()["storage.faults.injected.corrupt_read"] == 1

    def test_transient_read_error_is_retried(self, tmp_path):
        path = tmp_path / "shard.pkl"
        path.write_bytes(b"data")
        profile = StorageFaultProfile(name="flaky", eio_rate=0.2)
        with storage_faults(StorageFaultPlan(Seed(11), profile)) as plan:
            for _ in range(40):
                assert (
                    read_bytes(path, component="checkpoint", op="shard") == b"data"
                )
            assert plan.snapshot()["storage.retries"] > 0

    def test_absence_is_semantic_not_a_fault(self, tmp_path):
        with storage_faults("harsh", seed=2):
            with pytest.raises(FileNotFoundError):
                read_bytes(tmp_path / "missing", component="cache")


class TestQuarantine:
    def test_quarantine_moves_and_counts(self, tmp_path):
        victim = tmp_path / "bad.json"
        victim.write_text("{corrupt")
        with storage_faults("none", seed=1) as plan:
            moved = quarantine_path(victim)
        assert moved == tmp_path / "bad.json.corrupt"
        assert moved.exists() and not victim.exists()
        assert plan.snapshot()["storage.quarantined"] == 1

    def test_quarantine_missing_file_returns_none(self, tmp_path):
        assert quarantine_path(tmp_path / "ghost") is None
