"""Bidders (DSPs) and their interest-conditioned bid models.

Each bidder draws bids from a lognormal whose parameters depend on what
it knows about the user:

* **no interest signal** → the vanilla (baseline) distribution;
* **interest signal present** → the persona's calibrated distribution.

The signal is available only after the persona has interacted with
skills, and only probabilistically per auction: with probability
``q = INFORMED_FRACTION[persona]`` for Amazon's cookie-sync partners and
``q * NON_PARTNER_SIGNAL_FACTOR`` for non-partners (§5.5 / Table 10).
Web-control personas carry conventional web-tracking history instead,
visible to partners and non-partners alike.

A seasonal multiplier (``holiday_factor``) scales every bid, producing
the pre-Christmas inflation of Table 6 / Figure 3a.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from repro.data import categories as cat
from repro.data.calibration import (
    INFORMED_FRACTION,
    NON_PARTNER_SIGNAL_FACTOR,
    bid_params,
    holiday_factor,
)
from repro.util.rng import Seed

__all__ = ["Bidder", "AuctionContext", "WEB_SIGNAL_FRACTION"]

#: Probability any bidder holds a *web* persona's browsing signal —
#: standard web tracking, not gated on Amazon partnership (§5.6).
WEB_SIGNAL_FRACTION = 0.90


@dataclass(frozen=True)
class AuctionContext:
    """Everything a bid depends on for one (slot, user, time) auction."""

    persona: str
    interacted: bool
    when: _dt.datetime
    slot_id: str
    iteration: int


class Bidder:
    """One demand-side platform."""

    def __init__(
        self,
        code: str,
        domain: str,
        is_partner: bool,
        seed: Seed,
    ) -> None:
        self.code = code
        self.domain = domain
        self.is_partner = is_partner
        self._seed = seed

    def __repr__(self) -> str:
        kind = "partner" if self.is_partner else "non-partner"
        return f"Bidder({self.code}, {kind})"

    def compute_bid(self, context: AuctionContext) -> float:
        """CPM bid for this auction (deterministic per seed+context)."""
        rng = self._seed.rng(
            "bid", self.code, context.persona, context.iteration, context.slot_id
        )
        params = self._params_for(context, rng)
        cpm = rng.lognormvariate(params.mu, params.sigma)
        return round(cpm * holiday_factor(context.when), 4)

    def _params_for(self, context, rng):
        # Replicated personas ("fashion-and-style-r2") share their base
        # category's calibration; the bid rng stays keyed by the full
        # name, so replicas draw independently from the same model.
        persona = cat.base_category(context.persona)
        if persona == cat.VANILLA or not context.interacted:
            return bid_params(cat.VANILLA)
        if persona in cat.WEB_CATEGORIES:
            if rng.random() < WEB_SIGNAL_FRACTION:
                return bid_params(persona)
            return bid_params(cat.VANILLA)
        q = INFORMED_FRACTION[persona]
        if not self.is_partner:
            q *= NON_PARTNER_SIGNAL_FACTOR
        if rng.random() < q:
            return bid_params(persona)
        return bid_params(cat.VANILLA)
