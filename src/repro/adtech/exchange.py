"""The advertising exchange world: bidders, DMP state, cookie syncing.

This module wires the server side of header bidding into the browser's
:class:`~repro.web.browser.WebUniverse`:

* **Bidder endpoints** answer bid requests.  A bid response carries
  prebid-style ``user_syncs`` pixel URLs; fetching them produces the
  cookie-sync traffic of §5.5.
* **Amazon's sync endpoint** (``s.amazon-adsystem.com``) records the
  partner-uid ↔ Amazon-session match and 302s back to the partner — the
  one-sided sync the paper observes (Amazon never pushes its own cookie
  out).
* **Downstream third parties** (247 of them) receive further syncs from
  the partners.

The DMP lets bidders resolve a uid to persona state server-side; that
resolution is what :class:`~repro.adtech.bidder.Bidder` conditions its
bid on.  None of the server-side state is visible to the auditor — only
the sync URLs in the browser's request log are, exactly as in the paper.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.adtech.ads import AdCreative, AdServer
from repro.adtech.bidder import AuctionContext, Bidder
from repro.data.calibration import (
    N_DOWNSTREAM_THIRD_PARTIES,
    N_NON_PARTNERS,
    N_PARTNERS,
)
from repro.data.domains import AMAZON_ADS_DOMAIN
from repro.netsim.endpoints import registrable_domain
from repro.netsim.http import HttpRequest, HttpResponse
from repro.obs import NULL_OBS
from repro.util.ids import stable_hash
from repro.util.rng import Seed

if TYPE_CHECKING:  # avoid a runtime cycle with repro.web
    from repro.web.browser import BrowserProfile, WebUniverse

__all__ = ["AdTechWorld", "PersonaState", "BIDDERS_PER_SLOT", "SLOT_FAILURE_RATE"]

#: Demand partners responding per ad slot.
BIDDERS_PER_SLOT = 8

#: Per-(slot, persona) probability the slot fails to load — the source of
#: the "common ad slots" filtering in §3.3.  At 5% across 13 crawling
#: personas, ~51% of slots survive the common-slot filter, giving the
#: ~40-sample Mann-Whitney tests their paper-scale p-values.
SLOT_FAILURE_RATE = 0.05

#: The web-tracking pixel host embedded on priming sites (§3.1.2).
TRACKER_DOMAIN = "px.webtrack-dmp.com"

#: Pages with tracking observed before a web persona's browsing history
#: counts as an exploitable interest profile.
WEB_EVIDENCE_THRESHOLD = 10


@dataclass
class PersonaState:
    """Server-side knowledge about one browser profile."""

    profile_id: str
    persona: str
    interacted: bool = False
    amazon_session: Optional[str] = None
    #: Web-tracking evidence: category -> pages observed (built up by the
    #: tracker pixel on priming sites, §3.1.2).
    web_evidence: Dict[str, int] = field(default_factory=dict)


class AdTechWorld:
    """All server-side ad-tech state plus endpoint handlers."""

    def __init__(
        self,
        seed: Seed,
        universe: "WebUniverse",
        *,
        bidders_entered: int = 0,
        bidders_exited: int = 0,
    ) -> None:
        self._seed = seed
        self.universe = universe
        self.ad_server = AdServer(seed.derive("ads"))
        self.bidders: List[Bidder] = self._make_bidders(
            seed, entered=bidders_entered, exited=bidders_exited
        )
        self.partner_codes: Tuple[str, ...] = tuple(
            b.code for b in self.bidders if b.is_partner
        )
        self.downstream_domains: Tuple[str, ...] = tuple(
            f"sync{i:03d}.thirdparty-dmp.net" for i in range(N_DOWNSTREAM_THIRD_PARTIES)
        )
        self._downstream_by_partner = self._assign_downstream(seed)
        #: uid cookie value -> persona state (the tracking database).
        self._uid_index: Dict[str, PersonaState] = {}
        #: (bidder code, uid) pairs already cookie-matched with Amazon.
        self._matches: Set[Tuple[str, str]] = set()
        #: (partner code, downstream domain, uid) completed syncs.
        self._downstream_done: Set[Tuple[str, str, str]] = set()
        self._profiles: Dict[str, PersonaState] = {}
        #: Observability sink; the experiment runner swaps in its
        #: collector so exchange counters land in the campaign trace.
        self.obs = NULL_OBS
        self._register_endpoints()

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #

    @staticmethod
    def _make_bidders(
        seed: Seed, *, entered: int = 0, exited: int = 0
    ) -> List[Bidder]:
        """The DSP roster, optionally churned for a timeline epoch.

        ``exited`` drops the last that many original partners (the most
        recently joined leave first); ``entered`` appends fresh partner
        DSPs under the ``edsp`` code prefix.  Per-slot bidder subsets
        are sampled from the whole roster, so any churn reshapes every
        slot's demand — a global mutation by construction.
        """
        if exited >= N_PARTNERS:
            raise ValueError(
                f"bidders_exited must be < {N_PARTNERS}, got {exited}: "
                "at least one original Amazon partner must remain"
            )
        bidders = []
        for i in range(N_PARTNERS - exited):
            code = f"dsp{i:02d}"
            bidders.append(
                Bidder(code, f"ib.{code}.bid-exchange.com", is_partner=True, seed=seed)
            )
        for i in range(entered):
            code = f"edsp{i:02d}"
            bidders.append(
                Bidder(code, f"ib.{code}.bid-exchange.com", is_partner=True, seed=seed)
            )
        for i in range(N_NON_PARTNERS):
            code = f"ndsp{i:02d}"
            bidders.append(
                Bidder(code, f"ib.{code}.bid-exchange.com", is_partner=False, seed=seed)
            )
        return bidders

    def _assign_downstream(self, seed: Seed) -> Dict[str, Tuple[str, ...]]:
        """Partition + oversample the 247 downstream parties among partners
        so every downstream domain is reachable from at least one partner."""
        rng = seed.rng("adtech", "downstream")
        partners = [b for b in self.bidders if b.is_partner]
        assignment: Dict[str, List[str]] = {b.code: [] for b in partners}
        for i, domain in enumerate(self.downstream_domains):
            assignment[partners[i % len(partners)].code].append(domain)
        # A little cross-linking: some downstream parties sync with several
        # partners, as in the wild.
        for b in partners:
            extras = rng.sample(self.downstream_domains, 2)
            for domain in extras:
                if domain not in assignment[b.code]:
                    assignment[b.code].append(domain)
        return {code: tuple(domains) for code, domains in assignment.items()}

    # ------------------------------------------------------------------ #
    # Profile registration (server-side tracking database)
    # ------------------------------------------------------------------ #

    def register_profile(self, profile: "BrowserProfile") -> PersonaState:
        """Index a browser profile's deterministic uid cookies.

        The browser mints ``uid = H(profile, registrable domain)`` on first
        contact with each party; indexing the same derivation here is the
        simulation's stand-in for the tracking those parties perform.
        """
        state = self._profiles.get(profile.profile_id)
        if state is None:
            state = PersonaState(
                profile_id=profile.profile_id,
                persona=profile.persona,
                amazon_session=(
                    profile.account.session_cookie if profile.account else None
                ),
            )
            self._profiles[profile.profile_id] = state
        for bidder in self.bidders:
            uid = stable_hash("uid", profile.profile_id, registrable_domain(bidder.domain))
            self._uid_index[uid] = state
        tracker_uid = stable_hash(
            "uid", profile.profile_id, registrable_domain(TRACKER_DOMAIN)
        )
        self._uid_index[tracker_uid] = state
        return state

    def set_interacted(self, profile_id: str, interacted: bool = True) -> None:
        """Flip the smart-speaker-interaction flag (the treatment)."""
        self._profiles[profile_id].interacted = interacted

    def is_interacted(self, profile_id: str) -> bool:
        return self._profiles[profile_id].interacted

    # ------------------------------------------------------------------ #
    # Slot topology
    # ------------------------------------------------------------------ #

    def bidders_for_slot(self, slot_id: str) -> List[Bidder]:
        """The stable demand-partner subset for one ad slot."""
        rng = self._seed.rng("adtech", "slot-bidders", slot_id)
        return rng.sample(self.bidders, BIDDERS_PER_SLOT)

    def slot_loads(self, slot_id: str, persona: str) -> bool:
        """Whether this slot renders for this persona (stable per pair)."""
        rng = self._seed.rng("adtech", "slot-load", slot_id, persona)
        return rng.random() >= SLOT_FAILURE_RATE

    # ------------------------------------------------------------------ #
    # Endpoint handlers
    # ------------------------------------------------------------------ #

    def _register_endpoints(self) -> None:
        for bidder in self.bidders:
            self.universe.register(bidder.domain, self._make_bid_handler(bidder))
        self.universe.register(AMAZON_ADS_DOMAIN, self._handle_amazon_sync)
        self.universe.register(TRACKER_DOMAIN, self._handle_tracker_pixel)
        for domain in self.downstream_domains:
            self.universe.register(domain, _handle_downstream_sync)

    def _handle_tracker_pixel(self, request: HttpRequest) -> HttpResponse:
        """Conventional web tracking: a pixel on content pages accumulates
        per-category browsing evidence.  Once a profile's history crosses
        the threshold, its interest segment becomes available to bidders —
        how the web control personas (§3.1.2) get targeted without ever
        touching an Echo."""
        self.obs.inc("adtech.tracker_hits")
        uid = request.cookies.get("uid", "")
        state = self._uid_index.get(uid)
        category = request.query.get("cat", "")
        if state is not None and category:
            state.web_evidence[category] = state.web_evidence.get(category, 0) + 1
            if (
                state.persona == category
                and state.web_evidence[category] >= WEB_EVIDENCE_THRESHOLD
            ):
                state.interacted = True
        return HttpResponse(status=200, body={"pixel": "1x1"})

    def _make_bid_handler(self, bidder: Bidder):
        def handler(request: HttpRequest) -> HttpResponse:
            if request.path != "/bid":
                # Sync confirmations and other pixels.
                return HttpResponse(status=200, body={"ok": True})
            self.obs.inc("adtech.bid_requests")
            uid = request.cookies.get("uid", "")
            state = self._uid_index.get(uid)
            if state is None:
                return HttpResponse(status=204, body={"nobid": True})
            query = request.query
            context = AuctionContext(
                persona=state.persona,
                interacted=state.interacted,
                when=_dt.datetime.fromisoformat(query["when"]),
                slot_id=query["slot"],
                iteration=int(query["iteration"]),
            )
            cpm = bidder.compute_bid(context)
            return HttpResponse(
                status=200,
                body={
                    "bidder": bidder.code,
                    "cpm": cpm,
                    "currency": "USD",
                    "user_syncs": self._sync_urls(bidder, uid),
                },
            )

        return handler

    def _sync_urls(self, bidder: Bidder, uid: str) -> List[str]:
        """Prebid-style userSync pixels to fire after this bid response."""
        urls: List[str] = []
        if not bidder.is_partner:
            return urls
        if (bidder.code, uid) not in self._matches:
            urls.append(
                f"https://{AMAZON_ADS_DOMAIN}/x/cm?bidder={bidder.code}&uid={uid}"
            )
        for domain in self._downstream_by_partner.get(bidder.code, ()):
            if (bidder.code, domain, uid) not in self._downstream_done:
                self._downstream_done.add((bidder.code, domain, uid))
                self.obs.inc("adtech.downstream_syncs")
                urls.append(f"https://{domain}/setuid?partner={bidder.code}&uid={uid}")
        return urls

    def _handle_amazon_sync(self, request: HttpRequest) -> HttpResponse:
        """Amazon's cookie-match endpoint: records the match, 302s back to
        the partner, and never discloses Amazon's own identifier."""
        query = request.query
        bidder_code = query.get("bidder", "")
        uid = query.get("uid", "")
        if bidder_code and uid:
            self._matches.add((bidder_code, uid))
            self.obs.inc("adtech.cookie_syncs")
        return HttpResponse(
            status=302,
            redirect_url=(
                f"https://ib.{bidder_code}.bid-exchange.com/cm-confirm?status=ok"
            ),
        )

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render_creative(
        self,
        persona: str,
        iteration: int,
        slot_id: str,
        slot_index: int,
        interacted: bool,
    ) -> AdCreative:
        return self.ad_server.select(persona, iteration, slot_id, slot_index, interacted)

    # Introspection used by the world-level tests (not by the auditor).
    @property
    def match_count(self) -> int:
        return len(self._matches)


def _handle_downstream_sync(request: HttpRequest) -> HttpResponse:
    return HttpResponse(status=200, body={"sync": "ok"})
