"""Deterministic random-stream derivation.

The whole simulation is reproducible from a single integer seed.  Rather
than threading one shared ``random.Random`` through every component (which
makes results depend on call order), each component derives an *independent*
substream keyed by a human-readable path, e.g.::

    seed = Seed(42)
    rng = seed.rng("adtech", "auction", "fashion-and-style", 17)

Two substreams with different paths are statistically independent; the same
path always yields the same stream.  This is the property that lets a bid
auction in iteration 17 produce identical bids whether or not the audio-ad
experiment ran first.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = ["Seed", "StreamFamily", "derive_seed_int"]

_PATH_SEPARATOR = "\x1f"  # unit separator: cannot collide with str(part)


def derive_seed_int(root: int, parts: Iterable[object]) -> int:
    """Derive a 64-bit integer seed from a root seed and a key path.

    The derivation is a SHA-256 over the root and the stringified parts,
    which makes it stable across Python versions and platforms (unlike
    ``hash()``, which is salted per process).
    """
    material = _PATH_SEPARATOR.join([str(root), *[str(p) for p in parts]])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Seed:
    """Root of the deterministic randomness tree.

    Parameters
    ----------
    root:
        Any integer.  The same root reproduces the entire simulation.
    """

    def __init__(self, root: int = 0) -> None:
        if not isinstance(root, int):
            raise TypeError(f"seed root must be an int, got {type(root).__name__}")
        self.root = root

    def derive(self, *parts: object) -> "Seed":
        """Return a child :class:`Seed` namespaced by ``parts``."""
        return Seed(derive_seed_int(self.root, parts))

    def rng(self, *parts: object) -> random.Random:
        """Return a ``random.Random`` for the substream named by ``parts``."""
        return random.Random(derive_seed_int(self.root, parts))

    def numpy_rng(self, *parts: object) -> np.random.Generator:
        """Return a NumPy ``Generator`` for the substream named by ``parts``."""
        return np.random.default_rng(derive_seed_int(self.root, parts))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Seed) and other.root == self.root

    def __hash__(self) -> int:
        return hash(("repro.Seed", self.root))

    def __repr__(self) -> str:
        return f"Seed({self.root})"


class StreamFamily:
    """Lazily-derived sequential substreams, one per actor key.

    A component serving many actors (the cloud ASR serving every device,
    a skill backend serving several accounts) must not draw from one
    shared sequential stream: which draws an actor sees would then depend
    on which *other* actors are present and in what order they call in.
    A ``StreamFamily`` gives each actor key its own deterministic stream,
    making per-actor results invariant to co-resident actors — the
    property the persona-sharded parallel runner relies on to merge
    shard artifacts back into the serial result.
    """

    def __init__(self, seed: Seed, *namespace: object) -> None:
        self._seed = seed
        self._namespace = tuple(namespace)
        self._streams: Dict[Tuple[str, ...], random.Random] = {}

    def stream(self, *key: object) -> random.Random:
        """The sequential stream for ``key``, created on first use."""
        parts = tuple(str(p) for p in key)
        stream = self._streams.get(parts)
        if stream is None:
            stream = self._seed.rng(*self._namespace, *parts)
            self._streams[parts] = stream
        return stream
