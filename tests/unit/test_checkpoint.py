"""Unit tests for the crash-safe shard journal (repro.core.checkpoint)."""

import os
import pickle

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CorruptShardError,
    ShardJournal,
    atomic_write_bytes,
    shard_plan_digest,
)

PLAN = [["a", "b"], ["c"], ["d", "e"]]


def _journal(root, **overrides):
    kwargs = dict(
        root=root, seed_root=2026, config_fingerprint="abc123", shard_plan=PLAN
    )
    kwargs.update(overrides)
    return ShardJournal(**kwargs)


class TestAtomicWriteBytes:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "payload.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "payload.bin"
        atomic_write_bytes(target, b"x")
        assert target.read_bytes() == b"x"

    def test_overwrites_previous_content_atomically(self, tmp_path):
        target = tmp_path / "payload.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "payload.bin"
        atomic_write_bytes(target, b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["payload.bin"]

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        target = tmp_path / "payload.bin"
        atomic_write_bytes(target, b"original")

        def explode(fd):
            raise OSError("simulated disk failure")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError, match="simulated"):
            atomic_write_bytes(target, b"partial")
        assert target.read_bytes() == b"original"
        assert [p.name for p in tmp_path.iterdir()] == ["payload.bin"]


class TestShardPlanDigest:
    def test_stable(self):
        assert shard_plan_digest(PLAN) == shard_plan_digest(
            [list(names) for names in PLAN]
        )

    def test_sensitive_to_membership_and_order(self):
        base = shard_plan_digest(PLAN)
        assert shard_plan_digest([["b", "a"], ["c"], ["d", "e"]]) != base
        assert shard_plan_digest([["a", "b"], ["c"]]) != base


class TestShardEntries:
    def test_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_shard(1, {"payload": list(range(10))})
        assert journal.load_shard(1) == {"payload": list(range(10))}

    def test_absent_entry_is_none(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.load_shard(0) is None
        assert not journal.has_entry(0)

    def test_out_of_plan_index_rejected(self, tmp_path):
        journal = _journal(tmp_path)
        with pytest.raises(ValueError, match="outside plan"):
            journal.write_shard(7, "x")
        with pytest.raises(ValueError, match="outside plan"):
            journal.load_shard(-1)

    def test_unreadable_entry_raises_corrupt(self, tmp_path):
        journal = _journal(tmp_path)
        journal.shard_path(0).parent.mkdir(parents=True, exist_ok=True)
        journal.shard_path(0).write_bytes(b"garbage, not a pickle")
        with pytest.raises(CorruptShardError, match="unreadable"):
            journal.load_shard(0)

    def test_truncated_entry_raises_corrupt(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_shard(0, {"big": "x" * 4096})
        path = journal.shard_path(0)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CorruptShardError):
            journal.load_shard(0)

    def test_schema_stamp_invalidates(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_shard(0, "result")
        payload = pickle.loads(journal.shard_path(0).read_bytes())
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        journal.shard_path(0).write_bytes(pickle.dumps(payload))
        with pytest.raises(CorruptShardError, match="schema"):
            journal.load_shard(0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed_root": 9999},
            {"config_fingerprint": "other-config"},
            {"shard_plan": [["a", "b"], ["c"], ["d"]]},
        ],
        ids=["seed", "config", "plan"],
    )
    def test_foreign_campaign_entry_never_loads(self, tmp_path, overrides):
        _journal(tmp_path).write_shard(0, "foreign result")
        with pytest.raises(CorruptShardError, match="fails validation"):
            _journal(tmp_path, **overrides).load_shard(0)

    def test_quarantine_moves_entry_aside(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_shard(0, "result")
        target = journal.quarantine(0)
        assert target is not None and target.name.endswith(".corrupt")
        assert not journal.has_entry(0)
        assert journal.load_shard(0) is None  # key free for a retry

    def test_quarantine_of_absent_entry_is_noop(self, tmp_path):
        assert _journal(tmp_path).quarantine(0) is None

    def test_load_completed_skips_and_quarantines_corrupt(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_shard(0, "r0")
        journal.write_shard(2, "r2")
        journal.shard_path(1).parent.mkdir(parents=True, exist_ok=True)
        journal.shard_path(1).write_bytes(b"junk")
        completed = journal.load_completed()
        assert completed == {0: "r0", 2: "r2"}
        assert journal.shard_path(1).with_name(
            journal.shard_path(1).name + ".corrupt"
        ).is_file()

    def test_reset_drops_entries_errors_and_quarantine(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_shard(0, "r0")
        journal.write_error(1, "boom")
        journal.write_shard(2, "r2")
        journal.quarantine(2)
        journal.reset()
        assert journal.load_completed() == {}
        assert journal.read_error(1) is None
        assert not list(tmp_path.glob("shard-*"))

    def test_error_records_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.read_error(0) is None
        journal.write_error(0, "Traceback: worker exploded")
        assert "exploded" in journal.read_error(0)


class TestJournalManifest:
    def test_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_manifest(
            status="partial",
            attempts={0: ["ok"], 1: ["crash", "ok"], 2: ["hang", "crash"]},
            missing_personas=["d", "e"],
            package_version="1.4.0",
        )
        manifest = journal.read_manifest()
        assert manifest["status"] == "partial"
        assert manifest["attempts"] == {
            "0": ["ok"],
            "1": ["crash", "ok"],
            "2": ["hang", "crash"],
        }
        assert manifest["missing_personas"] == ["d", "e"]
        assert manifest["shard_plan"] == PLAN
        assert manifest["schema"] == CHECKPOINT_SCHEMA_VERSION

    def test_invalid_status_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="status"):
            _journal(tmp_path).write_manifest(status="exploded")

    def test_missing_manifest_reads_none(self, tmp_path):
        assert _journal(tmp_path).read_manifest() is None

    def test_corrupt_manifest_raises(self, tmp_path):
        journal = _journal(tmp_path)
        journal.manifest_path.parent.mkdir(parents=True, exist_ok=True)
        journal.manifest_path.write_text("{not json")
        with pytest.raises(CorruptShardError, match="unreadable"):
            journal.read_manifest()

    def test_validate_for_resume_accepts_matching_key(self, tmp_path):
        journal = _journal(tmp_path)
        journal.write_manifest(status="running")
        assert journal.validate_for_resume()["status"] == "running"

    def test_validate_for_resume_requires_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no journal manifest"):
            _journal(tmp_path).validate_for_resume()

    @pytest.mark.parametrize(
        "overrides,field",
        [
            ({"seed_root": 9999}, "seed_root"),
            ({"config_fingerprint": "zzz"}, "config_fingerprint"),
            ({"shard_plan": [["a"], ["b", "c"], ["d", "e"]]}, "plan_digest"),
        ],
        ids=["seed", "config", "plan"],
    )
    def test_validate_for_resume_rejects_foreign_journal(
        self, tmp_path, overrides, field
    ):
        _journal(tmp_path).write_manifest(status="running")
        with pytest.raises(CheckpointError, match=field):
            _journal(tmp_path, **overrides).validate_for_resume()


class TestJournalConstruction:
    def test_empty_plan_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            _journal(tmp_path, shard_plan=[])

    def test_plan_normalised_to_tuples(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.shard_plan == (("a", "b"), ("c",), ("d", "e"))
