"""Data and entity ontologies for the PoliCheck-style analyzer.

Following PoliCheck [53] and its OVRseen/voice-assistant adaptations
[84], [71], the ontologies map policy-text terms to either an *exact*
data type / entity (supporting a **clear** disclosure) or to a broader
category subsuming it (supporting a **vague** disclosure).  The data
ontology was rebuilt for voice assistants — notably adding *voice
recording* — per §7.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.data import datatypes as dt

__all__ = [
    "TermMatch",
    "DataOntology",
    "EntityOntology",
    "default_data_ontology",
    "default_entity_ontology",
]


@dataclass(frozen=True)
class TermMatch:
    """A policy term matched to an ontology node."""

    term: str
    target: str  # data type or entity name
    specificity: str  # "exact" | "broad"


class DataOntology:
    """Term → data-type mapping with exact/broad specificity."""

    def __init__(
        self,
        exact_terms: Mapping[str, str],
        broad_terms: Mapping[str, Tuple[str, ...]],
    ) -> None:
        self._exact = {term.lower(): target for term, target in exact_terms.items()}
        self._broad = {
            term.lower(): tuple(targets) for term, targets in broad_terms.items()
        }

    def matches(self, text: str) -> List[TermMatch]:
        """All ontology terms appearing in ``text`` (case-insensitive)."""
        lowered = text.lower()
        found: List[TermMatch] = []
        for term, target in self._exact.items():
            if term in lowered:
                found.append(TermMatch(term=term, target=target, specificity="exact"))
        for term, targets in self._broad.items():
            if term in lowered:
                for target in targets:
                    found.append(
                        TermMatch(term=term, target=target, specificity="broad")
                    )
        return found

    @property
    def exact_terms(self) -> Dict[str, str]:
        return dict(self._exact)

    @property
    def broad_terms(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self._broad)


class EntityOntology:
    """Term → organization mapping with exact/broad specificity."""

    def __init__(
        self,
        org_aliases: Mapping[str, Tuple[str, ...]],
        category_terms: Mapping[str, Tuple[str, ...]],
    ) -> None:
        #: org name -> aliases found in policy text
        self._aliases = {
            org: tuple(a.lower() for a in aliases)
            for org, aliases in org_aliases.items()
        }
        #: broad term -> org categories it covers
        self._categories = {
            term.lower(): tuple(cats) for term, cats in category_terms.items()
        }

    def exact_match(self, text: str, org: str) -> Optional[str]:
        """The alias naming ``org`` in ``text``, if present."""
        lowered = text.lower()
        for alias in self._aliases.get(org, ()):
            if alias in lowered:
                return alias
        return None

    def broad_match(self, text: str, org_categories: Tuple[str, ...]) -> Optional[str]:
        """A category/blanket term in ``text`` covering an org with the
        given ontology categories."""
        lowered = text.lower()
        for term, covered in self._categories.items():
            if term not in lowered:
                continue
            if "any" in covered or any(c in covered for c in org_categories):
                return term
        return None

    def add_org(self, org: str, aliases: Tuple[str, ...]) -> None:
        self._aliases[org] = tuple(a.lower() for a in aliases)

    @property
    def known_orgs(self) -> List[str]:
        return sorted(self._aliases)


def default_data_ontology() -> DataOntology:
    """The rebuilt voice-assistant data ontology (§7.2.2)."""
    exact_terms = {
        # voice inputs
        "voice recording": dt.VOICE_RECORDING,
        "audio recording": dt.VOICE_RECORDING,
        "voice command": dt.VOICE_RECORDING,
        # persistent identifiers
        "customer id": dt.CUSTOMER_ID,
        "unique identifier": dt.CUSTOMER_ID,
        "anonymized id": dt.CUSTOMER_ID,
        "uuid": dt.CUSTOMER_ID,
        "skill id": dt.SKILL_ID,
        "application identifier": dt.SKILL_ID,
        "cookie": dt.SKILL_ID,
        # preferences
        "language setting": dt.LANGUAGE,
        "regional and language settings": dt.LANGUAGE,
        "time zone": dt.TIMEZONE,
        "time zone setting": dt.TIMEZONE,
        "settings preferences": dt.OTHER_PREFERENCES,
        "app settings": dt.OTHER_PREFERENCES,
        # device events
        "audio player events": dt.AUDIO_PLAYER_EVENTS,
        "playback events": dt.AUDIO_PLAYER_EVENTS,
        "device metrics": dt.AUDIO_PLAYER_EVENTS,
    }
    broad_terms = {
        "sensory information": (dt.VOICE_RECORDING,),
        "recordings of your interactions": (dt.VOICE_RECORDING,),
        "identifiers": (dt.CUSTOMER_ID,),
        "application data": (dt.SKILL_ID,),
        "usage data": (dt.AUDIO_PLAYER_EVENTS,),
        "interaction data": (dt.AUDIO_PLAYER_EVENTS,),
        "device information": (dt.LANGUAGE, dt.TIMEZONE),
        "configuration settings": (dt.OTHER_PREFERENCES,),
        "amazon services metrics": (dt.AUDIO_PLAYER_EVENTS,),
    }
    return DataOntology(exact_terms, broad_terms)


def default_entity_ontology() -> EntityOntology:
    """Entity ontology covering the 13 observed endpoint orgs (§7.2.1)."""
    org_aliases = {
        "Amazon Technologies, Inc.": ("amazon", "alexa"),
        "Chartable Holding Inc": ("chartable",),
        "DataCamp Limited": ("datacamp", "cdn77"),
        "Dilli Labs LLC": ("dilli labs",),
        "Garmin International": ("garmin",),
        "Liberated Syndication": ("liberated syndication", "libsyn"),
        "National Public Radio, Inc.": ("national public radio", "npr"),
        "Philips International B.V.": ("philips",),
        "Podtrac Inc": ("podtrac",),
        "Spotify AB": ("spotify", "megaphone"),
        "Triton Digital, Inc.": ("triton digital", "streamtheworld"),
        "Voice Apps LLC": ("voice apps",),
        "Life Covenant Church, Inc.": ("life covenant", "youversion"),
    }
    category_terms = {
        "third party": ("any",),
        "third parties": ("any",),
        "third-parties": ("any",),
        "external service providers": ("any",),
        "service providers": ("any",),
        "analytics tool": ("analytic provider",),
        "analytics providers": ("analytic provider",),
        "advertising networks": ("advertising network",),
        "advertising partners": ("advertising network",),
        "content delivery partners": ("content provider",),
        "voice partner": ("voice assistant service", "platform provider"),
        "platform provider": ("platform provider",),
    }
    return EntityOntology(org_aliases, category_terms)
