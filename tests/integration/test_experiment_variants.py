"""Integration tests for experiment configuration variants."""

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.profiling import analyze_profiling
from repro.data import categories as cat
from repro.util.rng import Seed

TINY = dict(
    skills_per_persona=3,
    pre_iterations=1,
    post_iterations=2,
    crawl_sites=3,
    prebid_discovery_target=10,
    audio_hours=0.5,
)


class TestConfigVariants:
    def test_without_avs_echo(self):
        dataset = run_campaign(ExperimentConfig(run_avs_echo=False, **TINY), Seed(31))
        for artifacts in dataset.interest_personas:
            assert artifacts.avs_plaintext == []
            assert artifacts.skill_captures  # Echo captures unaffected

    def test_without_second_wave(self):
        dataset = run_campaign(
            ExperimentConfig(second_interaction_wave=False, **TINY), Seed(31)
        )
        for artifacts in dataset.personas.values():
            if artifacts.persona.uses_echo:
                assert len(artifacts.dsar_exports) == 2  # install + wave 1
        profiling = analyze_profiling(dataset)
        # No interaction-2 observations exist without the second wave.
        assert all(
            obs.request_label != "interaction-2" for obs in profiling.observations
        )

    def test_custom_audio_personas(self):
        dataset = run_campaign(
            ExperimentConfig(audio_personas=(cat.VANILLA,), **TINY), Seed(31)
        )
        assert dataset.artifacts(cat.VANILLA).audio_sessions
        assert not dataset.artifacts(cat.FASHION).audio_sessions

    def test_fewer_skills_fewer_captures(self):
        dataset = run_campaign(ExperimentConfig(**TINY), Seed(31))
        for artifacts in dataset.interest_personas:
            assert len(artifacts.skill_captures) <= 3

    def test_pre_iterations_zero(self):
        config = ExperimentConfig(**{**TINY, "pre_iterations": 0})
        dataset = run_campaign(config, Seed(31))
        for artifacts in dataset.personas.values():
            assert all(b.iteration >= 0 for b in artifacts.bids)


class TestClockSchedule:
    def test_campaign_spans_december_to_january(self):
        dataset = run_campaign(ExperimentConfig(**TINY), Seed(32))
        # The campaign starts Dec 10 2021 and post crawls run into January.
        final = dataset.world.clock.datetime()
        assert final.year == 2021 and final.month == 12 or final.year == 2022

    def test_pre_bids_carry_holiday_premium(self):
        config = ExperimentConfig(
            **{**TINY, "pre_iterations": 3, "post_iterations": 6}
        )
        dataset = run_campaign(config, Seed(33))
        vanilla = dataset.vanilla
        import statistics

        pre = [b.cpm for b in vanilla.bids if b.iteration < 0]
        post = [b.cpm for b in vanilla.bids if b.iteration >= 2]
        assert statistics.median(pre) > statistics.median(post)
