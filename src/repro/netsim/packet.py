"""Packet and flow primitives.

A :class:`Packet` models what a passive observer at a given vantage point
can see.  The crucial distinction for the auditing framework is between

* packets captured on the router from a real Echo: TLS-encrypted, so only
  the 5-tuple, SNI, and sizes are visible (``payload is None``); and
* packets tapped pre-encryption on the instrumented AVS Echo: the full
  application payload is visible.

Payloads are plain dictionaries (parsed application messages) rather than
byte strings — the paper's analysis operates on parsed fields, and keeping
them structured avoids a redundant serialize/parse round trip while still
modelling visibility correctly via the ``payload``/``None`` distinction.

Hot-path design
---------------

A production-scale campaign emits millions of packets, and the analysis
layer used to pay for that twice: once to capture, then again to re-scan
every capture into flows post-hoc.  Three choices keep this layer cheap:

* ``slots=True`` dataclasses — no per-instance ``__dict__``, which cuts
  both memory and attribute-access cost on the two most-allocated types
  in the simulator;
* pooled identity strings — ``device_id``/``src_ip``/``dst_ip``/``sni``
  repeat across millions of packets, so a module-level pool dedups them
  and makes the flow-key dict lookups pointer-compare fast.  A private
  pool rather than :func:`sys.intern`: resizing it costs kilobytes
  (proportional to the few thousand distinct identities), whereas
  pushing the process-wide intern table past a threshold forces a
  multi-megabyte rehash into whatever campaign happens to be running —
  visible as a spurious peak-memory spike in flat-memory monitoring;
* **sealed flows** — a :class:`Flow` produced by a :class:`FlowTable`
  maintains its aggregates (``total_bytes``, ``sni``,
  ``first_timestamp``) incrementally as packets arrive and freezes them
  at :meth:`Flow.seal`, so property access is O(1) instead of an O(n)
  scan per read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Direction",
    "Protocol",
    "Packet",
    "Flow",
    "FlowKey",
    "FlowTable",
    "flow_key",
    "group_flows",
]


#: Dedup pool for packet identity strings (IPs, device ids, SNIs).
#: Grows with the number of *distinct* identities — a few thousand for
#: any roster — and never touches the global intern table.
_STRING_POOL: Dict[str, str] = {}


def _pooled(value: str) -> str:
    return _STRING_POOL.setdefault(value, value)


class Direction(enum.Enum):
    """Direction of a packet relative to the monitored device."""

    OUTBOUND = "outbound"
    INBOUND = "inbound"


class Protocol(enum.Enum):
    """Application protocol carried by a packet."""

    TLS = "tls"
    HTTP = "http"
    DNS = "dns"


@dataclass(frozen=True, slots=True)
class Packet:
    """A single captured datagram/record.

    Attributes
    ----------
    timestamp:
        Simulated seconds since the experiment epoch.
    src_ip, dst_ip, src_port, dst_port:
        The 5-tuple (protocol being the fifth element).
    protocol:
        Application protocol.
    size:
        Payload size in bytes (modelled, not serialized).
    direction:
        Relative to the monitored device.
    sni:
        TLS Server Name Indication, when the packet opens a TLS session.
        Visible even for encrypted traffic — this is how the paper maps
        encrypted flows to domains when no DNS answer was seen.
    payload:
        Parsed application message.  ``None`` for traffic observed only in
        encrypted form.
    device_id:
        The monitored device that sent/received this packet.
    """

    timestamp: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: Protocol
    size: int
    direction: Direction
    device_id: str
    sni: Optional[str] = None
    payload: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"packet size must be non-negative, got {self.size}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise ValueError(f"port out of range: {port}")
        # Identity strings repeat across millions of packets; pooling
        # dedups the storage and turns downstream dict-key comparisons
        # into pointer checks.
        object.__setattr__(self, "src_ip", _pooled(self.src_ip))
        object.__setattr__(self, "dst_ip", _pooled(self.dst_ip))
        object.__setattr__(self, "device_id", _pooled(self.device_id))
        if self.sni is not None:
            object.__setattr__(self, "sni", _pooled(self.sni))

    def __reduce__(self):
        # Frozen slotted dataclasses have no __dict__ for the default
        # pickle path (and Python 3.10 generates no slots-aware
        # __getstate__), so rebuild through __init__ — which also
        # re-pools the identity strings on load.
        return (
            self.__class__,
            (
                self.timestamp,
                self.src_ip,
                self.dst_ip,
                self.src_port,
                self.dst_port,
                self.protocol,
                self.size,
                self.direction,
                self.device_id,
                self.sni,
                self.payload,
            ),
        )

    @property
    def is_encrypted(self) -> bool:
        """True when the application payload is not observable."""
        return self.payload is None

    @property
    def remote_ip(self) -> str:
        """IP of the non-device end of the packet."""
        return self.dst_ip if self.direction is Direction.OUTBOUND else self.src_ip

    @property
    def remote_port(self) -> int:
        """Port of the non-device end of the packet."""
        return (
            self.dst_port if self.direction is Direction.OUTBOUND else self.src_port
        )


FlowKey = Tuple[str, str, int, str]
"""(device_id, remote_ip, remote_port, protocol value)"""


def flow_key(packet: Packet) -> FlowKey:
    """The flow a packet belongs to: (device, remote ip/port, protocol)."""
    return (
        packet.device_id,
        packet.remote_ip,
        packet.remote_port,
        packet.protocol.value,
    )


@dataclass(slots=True)
class Flow:
    """All packets between one device and one remote endpoint/port.

    Flows produced by a :class:`FlowTable` (which includes
    :func:`group_flows` and every :class:`~repro.netsim.pcap.CaptureSession`)
    are *sealed*: their aggregates were accumulated incrementally as
    packets arrived and are served in O(1).  A hand-built ``Flow`` whose
    ``packets`` list is mutated directly stays unsealed and computes the
    same aggregates by scanning, preserving the legacy semantics.
    """

    key: FlowKey
    packets: List[Packet] = field(default_factory=list)
    # Incrementally-maintained aggregates, frozen by seal().  Excluded
    # from equality: a sealed and an unsealed flow with the same packets
    # are the same flow.
    _total_bytes: int = field(default=0, repr=False, compare=False)
    _sni: Optional[str] = field(default=None, repr=False, compare=False)
    _first_timestamp: Optional[float] = field(
        default=None, repr=False, compare=False
    )
    _sealed: bool = field(default=False, repr=False, compare=False)

    @property
    def device_id(self) -> str:
        return self.key[0]

    @property
    def remote_ip(self) -> str:
        return self.key[1]

    @property
    def remote_port(self) -> int:
        return self.key[2]

    @property
    def sealed(self) -> bool:
        """Whether the aggregates are frozen (O(1) property access)."""
        return self._sealed

    def _observe(self, packet: Packet) -> None:
        """Append ``packet``, maintaining the running aggregates."""
        if self._sealed:
            raise ValueError(f"cannot add packets to sealed flow {self.key}")
        self.packets.append(packet)
        self._total_bytes += packet.size
        if self._sni is None:
            self._sni = packet.sni
        if self._first_timestamp is None or packet.timestamp < self._first_timestamp:
            self._first_timestamp = packet.timestamp

    def seal(self) -> "Flow":
        """Freeze the aggregates; sealed flows must be non-empty.

        :class:`FlowTable` only creates a flow when its first packet
        arrives, so an empty flow can never reach this point through the
        capture path — sealing one is a caller bug, reported eagerly
        instead of surfacing later as a confusing ``min()`` failure.
        """
        if not self.packets:
            raise ValueError(f"cannot seal empty flow {self.key}")
        if not self._sealed:
            # Hand-built flows may have bypassed _observe; recompute so
            # sealing is always safe, not only on the FlowTable path.
            self._total_bytes = sum(p.size for p in self.packets)
            self._sni = next(
                (p.sni for p in self.packets if p.sni is not None), None
            )
            self._first_timestamp = min(p.timestamp for p in self.packets)
            self._sealed = True
        return self

    @property
    def total_bytes(self) -> int:
        if self._sealed:
            return self._total_bytes
        return sum(p.size for p in self.packets)

    @property
    def sni(self) -> Optional[str]:
        """First SNI observed on the flow, if any."""
        if self._sealed:
            return self._sni
        for packet in self.packets:
            if packet.sni is not None:
                return packet.sni
        return None

    @property
    def first_timestamp(self) -> float:
        if self._sealed:
            # seal() guarantees non-emptiness, so the cached value exists.
            assert self._first_timestamp is not None
            return self._first_timestamp
        if not self.packets:
            raise ValueError(
                "flow has no packets; sealed flows are non-empty by "
                "construction — only a hand-built empty Flow can get here"
            )
        return min(p.timestamp for p in self.packets)


class FlowTable:
    """Incremental flow aggregation over a packet stream.

    Packets are grouped as they arrive — the capture path feeds every
    observed packet straight in — so downstream analyses get pre-grouped,
    sealed flows without the post-hoc O(n) re-scan the legacy
    :func:`group_flows` pass performed.

    Invariant: a flow exists in the table only once its first packet has
    been added, so every flow holds ≥ 1 packet and every sealed flow's
    ``first_timestamp`` is defined.  Flow order is first-packet arrival
    order, matching the legacy grouping exactly.
    """

    __slots__ = ("_flows", "_sealed")

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, Flow] = {}
        self._sealed = False

    def add(self, packet: Packet) -> Flow:
        """Route ``packet`` into its flow (creating it on first sight)."""
        if self._sealed:
            raise ValueError("cannot add packets to a sealed FlowTable")
        key = flow_key(packet)
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key=key)
            self._flows[key] = flow
        flow._observe(packet)
        return flow

    def seal(self) -> List[Flow]:
        """Freeze every flow's aggregates and return them in order."""
        if not self._sealed:
            for flow in self._flows.values():
                flow.seal()
            self._sealed = True
        return list(self._flows.values())

    @property
    def sealed(self) -> bool:
        return self._sealed

    def flows(self) -> List[Flow]:
        """Current flows in first-packet order (sealed only after seal())."""
        return list(self._flows.values())

    def get(self, key: FlowKey) -> Optional[Flow]:
        return self._flows.get(key)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    # Plain-slots pickling (no __dict__) works by default on every
    # supported Python; nothing extra needed here.


def group_flows(packets: Iterable[Packet]) -> List[Flow]:
    """Group packets into flows by (device, remote ip, remote port, proto).

    Compatibility wrapper over :class:`FlowTable` for callers holding a
    loose packet list.  Capture sessions group incrementally instead —
    prefer :meth:`~repro.netsim.pcap.CaptureSession.flows`, which returns
    the already-sealed table without re-scanning.
    """
    table = FlowTable()
    for packet in packets:
        table.add(packet)
    return table.seal()
