"""Amazon's advertising-interest profiler.

Infers advertising interests from Alexa activity — the behavior the paper
surfaces through DSAR data requests (§6.1, Table 12) and which appears
inconsistent with Amazon's public statement that it does "not use voice
recordings to target ads": the profiler consumes *processed transcripts
and skill activity*, not raw audio, yet the resulting interests are used
for ad targeting.

The inference is mechanistic: skill installs and voice interactions
accumulate evidence per skill category; the category's exposure level
("installation", "interaction-1", "interaction-2") selects the interest
set from the calibrated rule table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.alexa.cloud import AccountState
from repro.data.calibration import INTEREST_RULES
from repro.data.skill_catalog import SkillCatalog

__all__ = ["InterestProfiler", "InterestProfile"]


@dataclass(frozen=True)
class InterestProfile:
    """Inferred advertising interests for one customer."""

    customer_id: str
    #: Interest labels, e.g. "Home & Garden: DIY & Tools".
    interests: Tuple[str, ...]
    #: Exposure level used per skill category.
    evidence: Dict[str, str]


class InterestProfiler:
    """Derives interest profiles from account activity.

    This is *platform-side* code: unlike the auditing framework, it may
    read the skill catalog directly (Amazon knows its own marketplace).
    """

    #: Minimum installed skills in a category before install-only evidence
    #: counts (a whole top-50 install wave easily clears this).
    MIN_INSTALLS = 25
    #: Minimum logged skill interactions per category per epoch.
    MIN_INTERACTIONS = 20

    def __init__(self, catalog: SkillCatalog) -> None:
        self._catalog = catalog

    def profile(self, state: AccountState) -> InterestProfile:
        """Compute the current interest profile for an account."""
        exposure = self._exposure_levels(state)
        interests: List[str] = []
        for category, level in sorted(exposure.items()):
            for interest in INTEREST_RULES.get((category, level), ()):
                if interest not in interests:
                    interests.append(interest)
        return InterestProfile(
            customer_id=state.account.customer_id,
            interests=tuple(interests),
            evidence=exposure,
        )

    def _exposure_levels(self, state: AccountState) -> Dict[str, str]:
        """Exposure level per skill category from installs + interactions."""
        install_counts: Dict[str, int] = {}
        for skill_id in state.ever_installed:
            category = self._catalog.by_id(skill_id).category
            install_counts[category] = install_counts.get(category, 0) + 1

        interaction_counts: Dict[Tuple[str, int], int] = {}
        for record in state.interactions:
            if record.skill_category is None:
                continue
            key = (record.skill_category, record.epoch)
            interaction_counts[key] = interaction_counts.get(key, 0) + 1

        levels: Dict[str, str] = {}
        for category, count in install_counts.items():
            if count >= self.MIN_INSTALLS:
                levels[category] = "installation"
        per_category_epochs: Dict[str, int] = {}
        for (category, epoch), count in interaction_counts.items():
            if count >= self.MIN_INTERACTIONS:
                per_category_epochs[category] = max(
                    per_category_epochs.get(category, 0), epoch + 1
                )
        for category, epochs in per_category_epochs.items():
            levels[category] = f"interaction-{min(epochs, 2)}"
        return levels
