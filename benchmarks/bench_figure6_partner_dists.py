"""Figure 6: bid distributions from Amazon's advertising partners across
personas on common ad slots."""

import numpy as np

from repro.core.bids import bids_on_slots, common_slots
from repro.core.report import render_distribution
from repro.core.syncing import detect_cookie_syncing
from repro.data import categories as cat


def bench_figure6_partner_dists(benchmark, dataset):
    sync = detect_cookie_syncing(dataset)
    slots = common_slots(dataset)

    def partner_series():
        series = {}
        for artifacts in dataset.personas.values():
            if artifacts.persona.kind == "web":
                continue
            series[artifacts.persona.name] = [
                b.cpm
                for b in bids_on_slots(artifacts, slots, "post")
                if b.bidder in sync.amazon_partners
            ]
        return series

    series = benchmark(partner_series)
    print()
    print(render_distribution(series, title="Figure 6 (partner bids)"))

    medians = {p: float(np.median(v)) for p, v in series.items() if v}
    vanilla = medians[cat.VANILLA]
    # Partner bids on interest personas dominate vanilla across the board.
    above = sum(1 for p in cat.ALL_CATEGORIES if medians[p] > vanilla)
    assert above == len(cat.ALL_CATEGORIES)
    # And the strongest personas exceed 3x vanilla (paper: up to 3x
    # partner-vs-non-partner and far more vs vanilla).
    assert max(medians[p] for p in cat.ALL_CATEGORIES) > 2.5 * vanilla
