"""The Alexa skill marketplace and the web companion app.

The paper's crawler visits the marketplace through a fresh browser
profile per persona, sorts each category by review count, and installs
the top 50 skills, accepting any requested permissions (§3.1.1).  This
module models the store plus the programmatic install flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.alexa.account import AmazonAccount
from repro.alexa.cloud import AlexaCloud
from repro.data.skill_catalog import SkillCatalog, SkillSpec

__all__ = ["Marketplace", "InstallReceipt", "SkillListing"]


@dataclass(frozen=True)
class SkillListing:
    """What the store page shows for one skill."""

    skill_id: str
    name: str
    category: str
    review_count: int
    sample_utterances: Tuple[str, ...]
    permissions: Tuple[str, ...]
    requires_account_linking: bool
    privacy_policy_url: Optional[str]


@dataclass(frozen=True)
class InstallReceipt:
    """Result of one install attempt."""

    skill_id: str
    installed: bool
    granted_permissions: Tuple[str, ...] = ()
    failure_reason: str = ""
    #: Whether the skill's external account was linked.  The paper's
    #: crawler never links accounts (§3.1.1, the iRobot example), so this
    #: stays False for linking skills and their full functionality is
    #: gated off.
    account_linked: bool = False


class Marketplace:
    """Store front + companion-app install API."""

    def __init__(self, catalog: SkillCatalog, cloud: AlexaCloud) -> None:
        self.catalog = catalog
        self.cloud = cloud

    def listing(self, skill_id: str) -> SkillListing:
        """Render the store page for a skill."""
        spec = self.catalog.by_id(skill_id)
        return _listing_from_spec(spec)

    def top_skills(self, category: str, count: int = 50) -> List[SkillListing]:
        """Category page sorted by review count (the paper's install set)."""
        return [_listing_from_spec(s) for s in self.catalog.top_skills(category, count)]

    def install(
        self,
        account: AmazonAccount,
        skill_id: str,
        grant_all_permissions: bool = True,
        link_account: bool = False,
    ) -> InstallReceipt:
        """Install and enable a skill for an account.

        Mirrors the crawler behavior: grant every requested permission,
        but never link external accounts (§3.1.1) — skills that require
        linking are installed *unlinked* and their linked-only features
        stay unavailable.
        """
        spec = self.catalog.by_id(skill_id)
        if spec.fails_to_load:
            return InstallReceipt(
                skill_id=skill_id, installed=False, failure_reason="skill failed to load"
            )
        self.cloud.register_account(account)
        functional = link_account or not spec.requires_account_linking
        self.cloud.install_skill(account.customer_id, skill_id, linked=functional)
        granted = spec.permissions if grant_all_permissions else ()
        return InstallReceipt(
            skill_id=skill_id,
            installed=True,
            granted_permissions=tuple(granted),
            account_linked=spec.requires_account_linking and link_account,
        )

    def uninstall(self, account: AmazonAccount, skill_id: str) -> None:
        self.cloud.uninstall_skill(account.customer_id, skill_id)

    def privacy_policy_url(self, skill_id: str) -> Optional[str]:
        """Privacy policy link shown on the store page, if the developer
        provided one (§7.1)."""
        spec = self.catalog.by_id(skill_id)
        if spec.policy is None or not spec.policy.has_link:
            return None
        return f"https://policies.example-skills.com/{spec.skill_id}.html"


def _listing_from_spec(spec: SkillSpec) -> SkillListing:
    policy_url = (
        f"https://policies.example-skills.com/{spec.skill_id}.html"
        if spec.policy is not None and spec.policy.has_link
        else None
    )
    return SkillListing(
        skill_id=spec.skill_id,
        name=spec.name,
        category=spec.category,
        review_count=spec.review_count,
        sample_utterances=spec.sample_utterances,
        permissions=spec.permissions,
        requires_account_linking=spec.requires_account_linking,
        privacy_policy_url=policy_url,
    )
