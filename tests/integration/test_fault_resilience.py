"""Campaign behaviour under injected network faults.

Two contracts ride on the fault subsystem:

* **Graceful degradation** — a faulted campaign still completes and
  yields a valid (partial) dataset, with every failure accounted for in
  the observability counters rather than lost in a traceback.
* **Determinism** — fault schedules derive from the root seed, keyed per
  ``(actor, domain)``, so the persona-sharded parallel runner stays
  byte-identical to the serial runner under every profile, and a
  different seed faults different requests.
"""

import dataclasses
import hashlib

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES, export_dataset
from repro.core.personas import all_personas
from repro.util.rng import Seed

SEED_ROOT = 2026

TINY_MILD = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
    fault_profile="mild",
)


def _export_digests(dataset, out_dir):
    export_dataset(dataset, out_dir)
    return {
        name: hashlib.sha256((out_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


def _counters(dataset):
    return dataset.obs.metrics.as_dict()["counters"]


@pytest.fixture(scope="module")
def mild_serial(tmp_path_factory):
    dataset = run_campaign(TINY_MILD, Seed(SEED_ROOT))
    out = tmp_path_factory.mktemp("mild-serial")
    return dataset, _export_digests(dataset, out)


class TestGracefulDegradation:
    def test_faulted_campaign_completes(self, mild_serial):
        dataset, _ = mild_serial
        assert list(dataset.personas) == [p.name for p in all_personas()]
        assert dataset.world.fault_plan is not None
        assert dataset.world.fault_plan.profile.name == "mild"

    def test_faults_actually_fired(self, mild_serial):
        dataset, _ = mild_serial
        counters = _counters(dataset)
        injected = sum(
            v for k, v in counters.items() if k.startswith("net.faults.")
        )
        assert injected > 0, f"no faults injected; counters: {counters}"

    def test_clients_retried(self, mild_serial):
        dataset, _ = mild_serial
        counters = _counters(dataset)
        retries = sum(v for k, v in counters.items() if k.endswith(".retries"))
        assert retries > 0

    def test_manifest_records_profile(self, mild_serial):
        dataset, _ = mild_serial
        assert dataset.obs.manifest.fault_profile == "mild"
        assert dataset.obs.manifest.to_dict()["fault_profile"] == "mild"

    def test_mild_exports_differ_from_healthy(self, mild_serial, tmp_path):
        _, mild_digests = mild_serial
        healthy = run_campaign(
            dataclasses.replace(TINY_MILD, fault_profile="none"), Seed(SEED_ROOT)
        )
        assert _export_digests(healthy, tmp_path) != mild_digests


class TestFaultDeterminism:
    def test_parallel_byte_identical_under_faults(self, mild_serial, tmp_path):
        _, serial_digests = mild_serial
        dataset = run_campaign(
            TINY_MILD, Seed(SEED_ROOT), parallel=True, workers=4, backend="thread"
        )
        assert _export_digests(dataset, tmp_path) == serial_digests

    def test_parallel_merge_keeps_fault_counters(self):
        dataset = run_campaign(
            TINY_MILD, Seed(SEED_ROOT), parallel=True, workers=2, backend="thread"
        )
        counters = _counters(dataset)
        assert sum(
            v for k, v in counters.items() if k.startswith("net.faults.")
        ) > 0
        assert dataset.obs.manifest.fault_profile == "mild"

    def test_different_seed_faults_different_requests(self, mild_serial, tmp_path):
        _, serial_digests = mild_serial
        other = run_campaign(TINY_MILD, Seed(SEED_ROOT + 1))
        assert _export_digests(other, tmp_path) != serial_digests
