"""Text rendering of the paper's tables and figure series.

Every renderer takes analysis results and returns the table as a string,
so benchmarks can ``print`` exactly the rows the paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

__all__ = ["render_table", "render_kv", "format_float", "render_distribution"]


def format_float(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_kv(pairs: Mapping[str, object], title: str = "") -> str:
    """Render key/value findings (headline counts etc.)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{key.ljust(width)} : {value}" for key, value in pairs.items())
    return "\n".join(lines)


def render_distribution(
    series: Mapping[str, Sequence[float]], title: str = ""
) -> str:
    """Render per-key distribution summaries (stand-in for box plots)."""
    import numpy as np

    rows: List[Tuple[str, str, str, str, str]] = []
    for key, values in series.items():
        if not values:
            continue
        arr = np.asarray(list(values), dtype=float)
        rows.append(
            (
                key,
                format_float(float(np.percentile(arr, 25))),
                format_float(float(np.median(arr))),
                format_float(float(arr.mean())),
                format_float(float(np.percentile(arr, 75))),
            )
        )
    return render_table(
        ["series", "p25", "median", "mean", "p75"], rows, title=title
    )
