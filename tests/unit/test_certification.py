"""Tests for the certification review and the §4.2 violation audit."""

import pytest

from repro.alexa.certification import (
    CertificationChecker,
    audit_certified_skills,
)
from repro.data.domains import PIHOLE_FILTER_TEXT
from repro.data.skill_catalog import build_catalog
from repro.orgmap.filterlists import FilterList
from repro.util.rng import Seed


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(Seed(42))


@pytest.fixture(scope="module")
def filter_list():
    return FilterList.from_text(PIHOLE_FILTER_TEXT)


@pytest.fixture(scope="module")
def certifications(catalog):
    return CertificationChecker().review_catalog(catalog)


class TestCertificationReview:
    def test_most_skills_certify(self, certifications):
        certified = sum(1 for r in certifications.values() if r.certified)
        assert certified / len(certifications) > 0.9

    def test_permissions_without_policy_flagged(self, catalog):
        checker = CertificationChecker()
        offenders = [
            s
            for s in catalog.active_skills
            if s.permissions and (s.policy is None or not s.policy.has_link)
        ]
        for spec in offenders:
            result = checker.review(spec)
            assert not result.certified
            assert result.notes

    def test_ad_network_contacts_invisible_to_review(self, catalog, certifications):
        """The certification blind spot: runtime ad traffic passes review."""
        genesis = catalog.by_name("Genesis")
        assert certifications[genesis.skill_id].certified


class TestViolationAudit:
    def test_paper_six_violators_found(self, catalog, filter_list, certifications):
        observed = {
            s.skill_id: list(s.other_endpoints) for s in catalog.active_skills
        }
        violations = audit_certified_skills(
            catalog.active_skills, observed, filter_list, certifications
        )
        names = {catalog.by_id(v.skill_id).name for v in violations}
        # §4.2: six certified non-streaming skills include A&T services.
        assert len(names) == 6
        assert {"Genesis", "Men's Finest Daily Fashion Tip"} <= names

    def test_streaming_skills_exempt(self, catalog, filter_list, certifications):
        observed = {
            s.skill_id: list(s.other_endpoints) for s in catalog.active_skills
        }
        violations = audit_certified_skills(
            catalog.active_skills, observed, filter_list, certifications
        )
        for violation in violations:
            assert not catalog.by_id(violation.skill_id).is_streaming

    def test_violations_carry_evidence(self, catalog, filter_list, certifications):
        observed = {
            s.skill_id: list(s.other_endpoints) for s in catalog.active_skills
        }
        for violation in audit_certified_skills(
            catalog.active_skills, observed, filter_list, certifications
        ):
            assert violation.evidence
            assert all(filter_list.is_blocked(d) for d in violation.evidence)

    def test_no_observed_traffic_no_violation(self, catalog, filter_list, certifications):
        violations = audit_certified_skills(
            catalog.active_skills, {}, filter_list, certifications
        )
        assert violations == []
