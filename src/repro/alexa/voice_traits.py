"""Voice-derived speaker traits (the paper's motivating patent [69]).

Amazon holds a patent on "voice-based determination of physical and
emotional characteristics of users" — e.g. targeting cough-drop ads at
users whose voice indicates a cold.  The paper cites it as a key threat
(§1, §2.2) and argues the local-voice defense (§8.1) forecloses it:
text-only upload carries no voice signal to infer from.

This module models both sides:

* :class:`SpeakerProfile` — ground-truth characteristics the raw audio of
  one speaker carries (age band, mood, health markers, accent);
* :class:`TraitInference` — the patented platform-side inference, run
  over voice uploads; it recovers traits only when the upload actually
  contains audio characteristics;
* :func:`traits_exposed` — the auditor's view: which traits left the
  home, measured from a device's plaintext log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.alexa.device import PlaintextRecord
from repro.util.rng import Seed

__all__ = [
    "SpeakerProfile",
    "TraitInference",
    "traits_exposed",
    "AGE_BANDS",
    "MOODS",
    "HEALTH_MARKERS",
]

AGE_BANDS: Tuple[str, ...] = ("child", "young-adult", "adult", "senior")
MOODS: Tuple[str, ...] = ("neutral", "cheerful", "tired", "stressed")
HEALTH_MARKERS: Tuple[str, ...] = ("none", "cough", "congestion", "hoarseness")
_ACCENTS: Tuple[str, ...] = ("midwest", "southern", "new-england", "west-coast")


@dataclass(frozen=True)
class SpeakerProfile:
    """What a speaker's raw voice signal gives away."""

    age_band: str
    mood: str
    health_marker: str
    accent: str

    @classmethod
    def derive(cls, seed: Seed, speaker_id: str) -> "SpeakerProfile":
        """Deterministic per-speaker characteristics."""
        rng = seed.rng("speaker-profile", speaker_id)
        return cls(
            age_band=rng.choice(AGE_BANDS),
            mood=rng.choice(MOODS),
            health_marker=rng.choices(
                HEALTH_MARKERS, weights=(0.7, 0.12, 0.10, 0.08)
            )[0],
            accent=rng.choice(_ACCENTS),
        )

    def as_signal(self) -> Dict[str, str]:
        """The characteristics embedded in an audio upload."""
        return {
            "age_band": self.age_band,
            "mood": self.mood,
            "health_marker": self.health_marker,
            "accent": self.accent,
        }


#: Patent example: trait -> products an advertiser would target with it.
_TRAIT_PRODUCT_MAP: Mapping[Tuple[str, str], str] = {
    ("health_marker", "cough"): "Cough drops",
    ("health_marker", "congestion"): "Decongestant",
    ("health_marker", "hoarseness"): "Throat lozenges",
    ("mood", "tired"): "Energy drinks",
    ("mood", "stressed"): "Meditation app subscription",
    ("age_band", "senior"): "Hearing aids",
}


@dataclass
class TraitInference:
    """The patented platform-side inference over voice uploads.

    Confidence grows with corroborating uploads; a trait is *inferred*
    once it has been heard in at least ``min_observations`` recordings —
    the platform never infers anything from text-only commands.
    """

    min_observations: int = 3
    _observations: Dict[str, Dict[Tuple[str, str], int]] = field(default_factory=dict)

    def observe(self, customer_id: str, characteristics: Mapping[str, str]) -> None:
        """Ingest the characteristics carried by one voice upload."""
        per_customer = self._observations.setdefault(customer_id, {})
        for trait, value in characteristics.items():
            if trait == "health_marker" and value == "none":
                continue
            key = (trait, value)
            per_customer[key] = per_customer.get(key, 0) + 1

    def inferred_traits(self, customer_id: str) -> Dict[str, str]:
        """Traits inferred with enough corroboration."""
        inferred: Dict[str, str] = {}
        for (trait, value), count in self._observations.get(customer_id, {}).items():
            if count >= self.min_observations:
                inferred[trait] = value
        return inferred

    def targetable_products(self, customer_id: str) -> List[str]:
        """The patent's payoff: products targetable from voice traits."""
        traits = self.inferred_traits(customer_id)
        return sorted(
            product
            for (trait, value), product in _TRAIT_PRODUCT_MAP.items()
            if traits.get(trait) == value
        )


def traits_exposed(plaintext_log: Iterable[PlaintextRecord]) -> Dict[str, int]:
    """Auditor-side count of trait-bearing uploads in a device's tap.

    Returns trait-name → number of uploads carrying it.  Zero across the
    board is what the local-voice defense must achieve.
    """
    counts: Dict[str, int] = {}
    for record in plaintext_log:
        body = record.payload.get("body", {})
        characteristics = body.get("voice_characteristics")
        if not characteristics:
            continue
        for trait in characteristics:
            counts[trait] = counts.get(trait, 0) + 1
    return counts
