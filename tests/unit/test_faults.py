"""Tests for seeded fault injection and the client retry policy."""

import pytest

from repro.netsim.endpoints import EndpointRegistry
from repro.netsim.faults import (
    DEFAULT_RETRY_POLICY,
    DNS_FAILURE_SECONDS,
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultDecision,
    FaultPlan,
    FaultProfile,
    RetryPolicy,
)
from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.packet import Protocol
from repro.netsim.router import (
    BASE_LATENCY_SECONDS,
    NetworkError,
    Router,
)
from repro.obs import ObsCollector
from repro.util.clock import SimClock
from repro.util.rng import Seed


def _single_kind_profile(kind: str, **extra) -> FaultProfile:
    """A profile that injects ``kind`` on every request."""
    return FaultProfile(name=f"always-{kind}", **{f"{kind}_rate": 1.0}, **extra)


class TestFaultProfile:
    def test_named_profiles_parse(self):
        for name in ("none", "mild", "harsh"):
            assert FaultProfile.parse(name) is FAULT_PROFILES[name]

    def test_parse_is_case_insensitive(self):
        assert FaultProfile.parse(" MILD ") is FAULT_PROFILES["mild"]

    def test_parse_float_rate(self):
        profile = FaultProfile.parse("0.1")
        assert profile.name == "rate:0.1"
        assert profile.total_rate == pytest.approx(0.1)

    def test_parse_profile_passthrough(self):
        profile = FAULT_PROFILES["harsh"]
        assert FaultProfile.parse(profile) is profile

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultProfile.parse("catastrophic")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="slow_rate"):
            FaultProfile(name="bad", slow_rate=1.5)
        with pytest.raises(ValueError, match="fault rate must be in"):
            FaultProfile.parse("1.5")

    def test_rates_must_sum_below_one(self):
        with pytest.raises(ValueError, match="sum to <= 1"):
            FaultProfile(name="bad", timeout_rate=0.6, slow_rate=0.6)

    def test_enabled(self):
        assert not FAULT_PROFILES["none"].enabled
        assert FAULT_PROFILES["mild"].enabled

    def test_from_rate_split_preserves_total(self):
        profile = FaultProfile.from_rate(0.2)
        assert profile.total_rate == pytest.approx(0.2)

    def test_decision_validates_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultDecision("meltdown")
        for kind in FAULT_KINDS:
            assert FaultDecision(kind).kind == kind


class TestFaultPlan:
    def _sequence(self, seed, actor, domain, n=64):
        plan = FaultPlan(Seed(seed), FAULT_PROFILES["harsh"])
        return [plan.decide(actor, domain) for _ in range(n)]

    def test_same_seed_same_schedule(self):
        assert self._sequence(7, "echo-a", "x.com") == self._sequence(
            7, "echo-a", "x.com"
        )

    def test_different_seed_different_schedule(self):
        assert self._sequence(7, "echo-a", "x.com") != self._sequence(
            8, "echo-a", "x.com"
        )

    def test_schedule_invariant_to_other_actors(self):
        # The property the parallel-equivalence contract rests on: an
        # actor's draws are untouched by interleaved draws from others.
        alone = self._sequence(7, "echo-a", "x.com", n=16)
        plan = FaultPlan(Seed(7), FAULT_PROFILES["harsh"])
        interleaved = []
        for _ in range(16):
            plan.decide("echo-b", "x.com")
            plan.decide("echo-a", "y.com")
            interleaved.append(plan.decide("echo-a", "x.com"))
        assert interleaved == alone

    def test_disabled_profile_never_decides(self):
        plan = FaultPlan(Seed(7), FAULT_PROFILES["none"])
        assert all(
            plan.decide("echo-a", "x.com") is None for _ in range(100)
        )

    def test_rates_roughly_respected(self):
        plan = FaultPlan(Seed(7), FAULT_PROFILES["harsh"])
        draws = [plan.decide("echo-a", "x.com") for _ in range(2000)]
        faulted = sum(1 for d in draws if d is not None)
        # harsh totals 0.25; allow generous sampling slack.
        assert 0.15 < faulted / len(draws) < 0.35
        kinds = {d.kind for d in draws if d is not None}
        assert kinds == set(FAULT_KINDS)


class TestRetryPolicy:
    def test_backoff_caps(self):
        policy = RetryPolicy(base_backoff=0.5, multiplier=2.0, max_backoff=4.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 5)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            4.0,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.backoff(0)

    def test_retries_network_error_then_succeeds(self):
        clock = SimClock()
        calls = []

        def attempt():
            calls.append(1)
            if len(calls) < 3:
                raise NetworkError("flaky")
            return HttpResponse(status=200)

        obs = ObsCollector()
        response = RetryPolicy().call(clock, attempt, obs=obs, scope="t")
        assert response.ok and len(calls) == 3
        # Two retries back off 0.5s then 1.0s of simulated time.
        assert clock.now == pytest.approx(1.5)
        assert obs.metrics.as_dict()["counters"]["t.retries"] == 2

    def test_exhausted_network_error_reraises(self):
        obs = ObsCollector()

        def attempt():
            raise NetworkError("down")

        with pytest.raises(NetworkError, match="down"):
            RetryPolicy(max_attempts=2).call(SimClock(), attempt, obs=obs)
        counters = obs.metrics.as_dict()["counters"]
        assert counters["net.retry_exhausted"] == 1

    def test_exhausted_5xx_returns_last_response(self):
        response = RetryPolicy(max_attempts=2).call(
            SimClock(), lambda: HttpResponse(status=503)
        )
        assert response.status == 503 and not response.ok

    def test_non_retryable_status_returned_immediately(self):
        calls = []

        def attempt():
            calls.append(1)
            return HttpResponse(status=404)

        assert RetryPolicy().call(SimClock(), attempt).status == 404
        assert len(calls) == 1

    def test_never_sleeps_on_wall_clock(self, monkeypatch):
        import time as time_module

        def forbidden(_seconds):  # pragma: no cover - fails the test
            raise AssertionError("RetryPolicy must not wall-clock sleep")

        monkeypatch.setattr(time_module, "sleep", forbidden)
        clock = SimClock()
        attempts = iter([NetworkError("x"), HttpResponse(status=200)])

        def attempt():
            item = next(attempts)
            if isinstance(item, Exception):
                raise item
            return item

        assert RetryPolicy().call(clock, attempt).ok


@pytest.fixture
def faulty_rig():
    def build(profile):
        registry = EndpointRegistry()
        registry.register("svc.example.com", organization="Example")
        clock = SimClock()
        router = Router(registry, clock, faults=FaultPlan(Seed(3), profile))
        router.register_service(
            "svc.example.com", lambda req: HttpResponse(status=200, body={"ok": 1})
        )
        router.attach_device("echo-1")
        return router, clock

    return build


class TestRouterFaultInjection:
    REQUEST = HttpRequest("GET", "https://svc.example.com/ping")

    def test_nxdomain_emits_dns_and_burns_time(self, faulty_rig):
        router, clock = faulty_rig(_single_kind_profile("nxdomain"))
        obs = ObsCollector()
        router.obs = obs
        cap = router.start_capture("f")
        with pytest.raises(NetworkError, match=r"NXDOMAIN.*injected fault"):
            router.send("echo-1", self.REQUEST)
        dns = [p for p in cap if p.protocol is Protocol.DNS]
        assert len(dns) == 2  # query + empty answer, even on failure
        assert dns[1].payload["answers"] == []
        assert clock.now == pytest.approx(DNS_FAILURE_SECONDS)
        assert obs.metrics.as_dict()["counters"]["net.faults.nxdomain"] == 1

    def test_timeout_request_packet_still_on_wire(self, faulty_rig):
        profile = _single_kind_profile("timeout", timeout_seconds=2.0)
        router, clock = faulty_rig(profile)
        cap = router.start_capture("f")
        with pytest.raises(NetworkError, match="timed out"):
            router.send("echo-1", self.REQUEST)
        tls = [p for p in cap if p.protocol is Protocol.TLS]
        assert len(tls) == 1  # the request left; no response ever came
        assert clock.now >= 2.0

    def test_http_5xx_synthesised_without_handler(self, faulty_rig):
        calls = []
        router, clock = faulty_rig(_single_kind_profile("http_5xx"))
        router.register_service(
            "svc.example.com",
            lambda req: calls.append(1) or HttpResponse(status=200),
        )
        response = router.send("echo-1", self.REQUEST)
        assert response.status == 503
        assert response.headers["x-injected-fault"] == "http-5xx"
        assert calls == []  # the origin never saw the request

    def test_slow_inflates_latency_only(self, faulty_rig):
        profile = _single_kind_profile("slow", slow_extra_seconds=(1.0, 1.0))
        router, clock = faulty_rig(profile)
        response = router.send("echo-1", self.REQUEST)
        assert response.ok  # slow is degradation, not failure
        # DNS round trip + base latency + the injected 1s delay.
        assert clock.now == pytest.approx(BASE_LATENCY_SECONDS + 1.0)

    def test_no_plan_means_no_faults(self):
        registry = EndpointRegistry()
        registry.register("svc.example.com", organization="Example")
        router = Router(registry, SimClock())
        router.register_service(
            "svc.example.com", lambda req: HttpResponse(status=200)
        )
        router.attach_device("echo-1")
        assert all(
            router.send("echo-1", self.REQUEST).ok for _ in range(50)
        )


class TestFailureObservability:
    """Failed sends are never free and never invisible (bugfix tests)."""

    def _router(self):
        registry = EndpointRegistry()
        registry.register("known.example.com", organization="Example")
        clock = SimClock()
        router = Router(registry, clock)
        router.attach_device("echo-1")
        return router, clock

    def test_unknown_host_emits_dns_exchange(self):
        router, clock = self._router()
        cap = router.start_capture("f")
        before = router.packets_forwarded
        with pytest.raises(NetworkError, match="NXDOMAIN"):
            router.send(
                "echo-1", HttpRequest("GET", "https://missing.example.net/")
            )
        assert router.packets_forwarded == before + 2
        dns = [p for p in cap if p.protocol is Protocol.DNS]
        assert [p.payload["kind"] for p in dns] == ["dns-query", "dns-response"]
        assert clock.now > 0.0

    def test_connection_refused_burns_time(self):
        router, clock = self._router()
        with pytest.raises(NetworkError, match="refused"):
            router.send(
                "echo-1", HttpRequest("GET", "https://known.example.com/")
            )
        assert clock.now > DNS_FAILURE_SECONDS
