"""Tests for packet/flow primitives."""

import pickle

import pytest

from repro.netsim.packet import (
    Direction,
    Flow,
    FlowTable,
    Packet,
    Protocol,
    flow_key,
    group_flows,
)


def make_packet(**overrides):
    defaults = dict(
        timestamp=1.0,
        src_ip="192.168.7.10",
        dst_ip="54.1.2.3",
        src_port=50000,
        dst_port=443,
        protocol=Protocol.TLS,
        size=512,
        direction=Direction.OUTBOUND,
        device_id="echo-1",
        sni="api.amazon.com",
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestPacket:
    def test_encrypted_when_payload_none(self):
        assert make_packet(payload=None).is_encrypted

    def test_not_encrypted_with_payload(self):
        assert not make_packet(payload={"kind": "http-request"}).is_encrypted

    def test_remote_ip_outbound(self):
        assert make_packet().remote_ip == "54.1.2.3"

    def test_remote_ip_inbound(self):
        pkt = make_packet(
            direction=Direction.INBOUND, src_ip="54.1.2.3", dst_ip="192.168.7.10"
        )
        assert pkt.remote_ip == "54.1.2.3"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(size=-1)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            make_packet(dst_port=70000)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_packet().size = 5  # type: ignore[misc]


class TestGroupFlows:
    def test_bidirectional_packets_share_flow(self):
        out = make_packet()
        back = make_packet(
            direction=Direction.INBOUND,
            src_ip="54.1.2.3",
            dst_ip="192.168.7.10",
            src_port=443,
            dst_port=50000,
        )
        flows = group_flows([out, back])
        assert len(flows) == 1
        assert flows[0].total_bytes == 1024

    def test_different_remotes_different_flows(self):
        flows = group_flows([make_packet(), make_packet(dst_ip="54.9.9.9")])
        assert len(flows) == 2

    def test_different_devices_different_flows(self):
        flows = group_flows([make_packet(), make_packet(device_id="echo-2")])
        assert len(flows) == 2

    def test_flow_sni_first_non_null(self):
        flows = group_flows([make_packet(sni=None), make_packet(sni="x.amazon.com")])
        assert flows[0].sni == "x.amazon.com"

    def test_flow_properties(self):
        flow = group_flows([make_packet(timestamp=5.0), make_packet(timestamp=2.0)])[0]
        assert flow.device_id == "echo-1"
        assert flow.remote_ip == "54.1.2.3"
        assert flow.remote_port == 443
        assert flow.first_timestamp == 2.0

    def test_empty_flow_first_timestamp_raises(self):
        """Regression: only a hand-built empty Flow can hit this — the
        FlowTable invariant (a flow exists only with ≥1 packet) keeps
        every pipeline-produced flow non-empty."""
        with pytest.raises(ValueError, match="no packets"):
            Flow(key=("d", "ip", 443, "tls")).first_timestamp

    def test_empty_input(self):
        assert group_flows([]) == []


class TestFlowSealing:
    def test_seal_freezes_aggregates(self):
        flow = Flow(key=flow_key(make_packet()))
        flow._observe(make_packet(timestamp=5.0, sni=None, size=100))
        flow._observe(make_packet(timestamp=2.0, size=400))
        assert not flow.sealed
        flow.seal()
        assert flow.sealed
        assert flow.total_bytes == 500
        assert flow.first_timestamp == 2.0
        assert flow.sni == "api.amazon.com"

    def test_seal_empty_flow_raises(self):
        with pytest.raises(ValueError, match="empty flow"):
            Flow(key=("d", "ip", 443, "tls")).seal()

    def test_sealed_flow_rejects_new_packets(self):
        flow = Flow(key=flow_key(make_packet()))
        flow._observe(make_packet())
        flow.seal()
        with pytest.raises(ValueError, match="sealed"):
            flow._observe(make_packet())

    def test_hand_built_flow_seals_with_recomputed_aggregates(self):
        packet = make_packet(size=321)
        flow = Flow(key=flow_key(packet), packets=[packet]).seal()
        assert flow.total_bytes == 321
        assert flow.first_timestamp == packet.timestamp


class TestFlowTable:
    def test_matches_group_flows(self):
        stream = [
            make_packet(),
            make_packet(dst_ip="54.9.9.9"),
            make_packet(timestamp=2.0),
            make_packet(device_id="echo-2"),
        ]
        table = FlowTable()
        for packet in stream:
            table.add(packet)
        sealed = table.seal()
        legacy = group_flows(stream)
        assert [f.key for f in sealed] == [f.key for f in legacy]
        assert [f.packets for f in sealed] == [f.packets for f in legacy]
        assert [f.total_bytes for f in sealed] == [f.total_bytes for f in legacy]

    def test_flows_created_only_on_first_packet(self):
        """The invariant that makes sealed flows non-empty by construction."""
        table = FlowTable()
        assert len(table) == 0
        table.add(make_packet())
        assert len(table) == 1
        for flow in table.seal():
            assert flow.packets

    def test_seal_is_idempotent_and_freezes_table(self):
        table = FlowTable()
        table.add(make_packet())
        first = table.seal()
        assert table.seal() == first
        assert all(flow.sealed for flow in first)
        with pytest.raises(ValueError, match="sealed"):
            table.add(make_packet())

    def test_get_and_iteration(self):
        packet = make_packet()
        table = FlowTable()
        table.add(packet)
        assert table.get(flow_key(packet)) is not None
        assert table.get(("missing", "ip", 1, "tls")) is None
        assert [f.key for f in table] == [flow_key(packet)]

    def test_pickle_round_trip_preserves_sealed_aggregates(self):
        table = FlowTable()
        table.add(make_packet(size=100))
        table.add(make_packet(size=200))
        sealed = table.seal()
        restored = pickle.loads(pickle.dumps(table))
        assert [f.key for f in restored.seal()] == [f.key for f in sealed]
        assert restored.seal()[0].total_bytes == 300
        assert restored.seal()[0].sealed
