#!/usr/bin/env python3
"""Regenerate docs/API.md from the package's docstrings."""

import importlib
import inspect
import pathlib
import pkgutil

import repro

PREAMBLE = """\
## Observability

Every campaign run traces itself by default.  `run_campaign` returns its
dataset with an attached `repro.obs.ObsCollector` (`dataset.obs`) holding
four artifacts:

* **Spans** (`dataset.obs.tracer`) — a nested span tree over the campaign
  phases and per-persona work.  Deterministic spans (`det=True`: all
  `persona:*` work plus prebid discovery) carry integer simulated-time
  durations (`sim_us`) derived from the world clock; every span also
  carries wall-clock timings in separate `real_*` fields.  The
  simulated-time tree (`tracer.sim_tree_json()`) is byte-identical
  between serial and parallel runs of the same seed and config.
* **Metrics** (`dataset.obs.metrics`) — typed counters and gauges with
  per-metric merge policies (`sum`, `first`, `max`, `min`) so parallel
  shards combine correctly: persona-partitioned work sums, per-shard
  duplicated work (discovery) deduplicates.
* **Events** (`dataset.obs.events`) — an ordered structured log
  (`schema`, `seq`, `type`, `sim_time`, `fields`) for discrete
  occurrences: phase completions, skill-install failures, DSAR
  re-requests.
* **Manifest** (`dataset.obs.manifest`) — how the run was executed: seed
  root, config fingerprint, entrypoint (`serial`/`parallel`/`cached`),
  worker topology and persona shards, cache hit, package version.

Write everything as one JSONL trace with
`dataset.obs.write_trace(path)`, or from the CLI with
`python -m repro run --trace-out trace.jsonl --metrics-out metrics.json`;
`python -m repro report obs-summary` renders a phase/counter summary.
Pass `obs=False` to `run_campaign` to disable collection entirely
(null-object fast path, <5% overhead budget either way — enforced by
`benchmarks/bench_pipeline_throughput.py::bench_obs_overhead`).

## Migrating to `run_campaign`

The three legacy entrypoints are deprecated shims; `run_campaign` is the
one entrypoint used by the CLI, tests, and benchmarks.

| legacy call | replacement |
|---|---|
| `run_experiment(seed, config)` | `run_campaign(config, seed)` |
| `run_parallel_experiment(seed, config, workers=4, backend="process")` | `run_campaign(config, seed, parallel=True, workers=4, backend="process")` |
| `run_cached_experiment(seed_root, config)` | `run_campaign(config, seed_root, cache=True)` |

Note the argument order change: `run_campaign` takes `(config, seed)` —
config first, matching how call sites are usually parameterized — and
everything else is keyword-only.  The shims emit `DeprecationWarning`
and delegate to `run_campaign`; they do not attach an observability
collector (`dataset.obs is None`).
"""


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0]


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated from the package's docstrings (`python docs/generate_api.py`).",
        "",
        PREAMBLE,
    ]
    for modinfo in sorted(
        pkgutil.walk_packages(repro.__path__, "repro."), key=lambda m: m.name
    ):
        if modinfo.ispkg or modinfo.name.endswith("__main__"):
            continue
        module = importlib.import_module(modinfo.name)
        lines.append(f"## `{modinfo.name}`")
        lines.append("")
        lines.append(first_line(module))
        lines.append("")
        exported = getattr(module, "__all__", None)
        if not exported:
            continue
        rows = []
        for symbol in exported:
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            if inspect.isclass(obj):
                kind = "class"
            elif callable(obj):
                kind = "function"
            else:
                kind = "constant"
            summary = first_line(obj) if kind != "constant" else ""
            rows.append((symbol, kind, summary.replace("|", "\\|")))
        if rows:
            lines.append("| name | kind | summary |")
            lines.append("|---|---|---|")
            lines.extend(
                f"| `{symbol}` | {kind} | {summary} |" for symbol, kind, summary in rows
            )
            lines.append("")
    target = pathlib.Path(__file__).with_name("API.md")
    target.write_text("\n".join(lines) + "\n")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
