"""Dataset and results export.

The paper commits to releasing "all of our code and data".  This module
produces that release: the raw collected artifacts (bids, ads, flows,
sync events, DSAR interests, policy stats) as CSV files, and the analysis
results as a JSON summary — everything needed to re-analyze the campaign
without re-running it.

Two sources feed the same export layout:

* :func:`export_dataset` walks an in-memory
  :class:`~repro.core.experiment.AuditDataset`;
* :func:`export_segment_store` streams a
  :class:`~repro.core.segments.SegmentStore` — CSVs are written row by
  row off the k-way-merged streams and the summary is computed by
  single-pass folds, so memory stays flat in the roster size.

For the same seed and config the two paths produce byte-identical
files: segment records carry exactly the CSV cell values (JSON round
trips them exactly), and the summary folds perform the same float
arithmetic on the same values in the same order.  All text output is
pinned to UTF-8 regardless of locale.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.bids import (
    bid_summary_table,
    common_slots,
    common_slots_from_sets,
    post_cpms_from_rows,
    representative_from_rows,
    significance_vs_vanilla,
)
from repro.core.compliance import fold_policy_availability, policy_availability
from repro.core.experiment import AuditDataset
from repro.core.profiling import analyze_profiling
from repro.core.stats import mann_whitney_u, summarize
from repro.core.syncing import (
    SyncAnalysis,
    SyncEvent,
    detect_cookie_syncing,
    fold_sync_events,
)

__all__ = [
    "export_dataset",
    "export_summary",
    "export_segment_store",
    "summarize_segment_store",
    "EXPORT_FILES",
]

EXPORT_FILES = (
    "bids.csv",
    "ads.csv",
    "skill_flows.csv",
    "sync_events.csv",
    "dsar_interests.csv",
    "audio_ads.csv",
    "summary.json",
)

_BIDS_HEADER = ["persona", "iteration", "site", "slot", "bidder", "cpm", "interacted"]
_ADS_HEADER = ["persona", "iteration", "site", "slot", "advertiser", "product", "source"]
_FLOWS_HEADER = ["persona", "skill_id", "domain", "remote_ip", "port", "packets", "bytes"]
_SYNC_HEADER = ["persona", "source", "destination", "uid"]
_DSAR_HEADER = ["persona", "request", "file_missing", "interests"]
_AUDIO_HEADER = ["persona", "skill", "start_seconds", "brand"]


def _write_csv(path: Path, header: List[str], rows) -> int:
    # encoding is pinned: exports must be identical bytes on any host,
    # and a latin-1 default would crash on non-ASCII creative text.
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        count = 0
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def _write_summary(out: Path, summary: dict) -> None:
    (out / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True), encoding="utf-8"
    )


def export_dataset(dataset: AuditDataset, out_dir: Union[str, Path]) -> Dict[str, int]:
    """Write the raw artifacts to ``out_dir``; returns row counts per file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    counts: Dict[str, int] = {}

    counts["bids.csv"] = _write_csv(
        out / "bids.csv",
        _BIDS_HEADER,
        (
            (b.persona, b.iteration, b.site, b.slot_id, b.bidder, b.cpm, b.interacted)
            for a in dataset.personas.values()
            for b in a.bids
        ),
    )

    counts["ads.csv"] = _write_csv(
        out / "ads.csv",
        _ADS_HEADER,
        (
            (
                ad.persona,
                ad.iteration,
                ad.site,
                ad.slot_id,
                ad.creative.advertiser,
                ad.creative.product,
                ad.creative.source,
            )
            for a in dataset.personas.values()
            for ad in a.ads
        ),
    )

    def flow_rows():
        for artifacts in dataset.interest_personas:
            for skill_id, capture in artifacts.skill_captures.items():
                dns = capture.dns_table()
                for flow in capture.flows():
                    if flow.key[3] == "dns":
                        continue
                    domain = dns.domain_for_ip(flow.remote_ip) or flow.sni or ""
                    yield (
                        artifacts.persona.name,
                        skill_id,
                        domain,
                        flow.remote_ip,
                        flow.remote_port,
                        len(flow.packets),
                        flow.total_bytes,
                    )

    counts["skill_flows.csv"] = _write_csv(
        out / "skill_flows.csv", _FLOWS_HEADER, flow_rows()
    )

    # Computed once here and threaded into export_summary — the summary
    # used to rerun the whole sync scan on its own.
    sync = detect_cookie_syncing(dataset)
    counts["sync_events.csv"] = _write_csv(
        out / "sync_events.csv",
        _SYNC_HEADER,
        ((e.persona, e.source, e.destination_host, e.uid) for e in sync.events),
    )

    profiling = analyze_profiling(dataset)
    counts["dsar_interests.csv"] = _write_csv(
        out / "dsar_interests.csv",
        _DSAR_HEADER,
        (
            (
                obs.persona,
                obs.request_label,
                obs.file_missing,
                "; ".join(obs.interests or ()),
            )
            for obs in profiling.observations
        ),
    )

    counts["audio_ads.csv"] = _write_csv(
        out / "audio_ads.csv",
        _AUDIO_HEADER,
        (
            (s.persona, s.skill_name, seg.start, seg.label)
            for a in dataset.personas.values()
            for s in a.audio_sessions
            for seg in s.ad_segments
        ),
    )

    summary = export_summary(dataset, sync=sync)
    _write_summary(out, summary)
    counts["summary.json"] = 1
    return counts


def export_summary(
    dataset: AuditDataset, *, sync: Optional[SyncAnalysis] = None
) -> dict:
    """Headline analysis results as a JSON-serializable mapping.

    ``sync`` accepts a precomputed cookie-sync analysis so callers that
    already ran the scan (the CSV export) don't pay for it twice.
    """
    if sync is None:
        sync = detect_cookie_syncing(dataset)
    availability = policy_availability(dataset)
    slots = common_slots(dataset)
    significance = {
        persona: _significance_cell(result)
        for persona, result in significance_vs_vanilla(dataset).items()
    }
    bid_summaries = {
        row.persona: _bid_summary_cell(row.summary)
        for row in bid_summary_table(dataset)
    }
    return _assemble_summary(
        personas=sorted(dataset.personas),
        n_slots=len(slots),
        bid_summaries=bid_summaries,
        significance=significance,
        sync=sync,
        availability=availability,
    )


# ---------------------------------------------------------------------- #
# Segment-store path
# ---------------------------------------------------------------------- #


def export_segment_store(store, out_dir: Union[str, Path]) -> Dict[str, int]:
    """Stream a :class:`~repro.core.segments.SegmentStore` to ``out_dir``.

    Produces exactly :data:`EXPORT_FILES`, byte-identical to
    :func:`export_dataset` on the equivalent in-memory dataset.  CSVs
    are written row by row off the merged streams; the summary is
    computed by :func:`summarize_segment_store`'s folds.  Memory is
    bounded by the analysis aggregates, not the roster size.
    """
    from repro.core.segments import SegmentError

    covered = store.covered_positions()
    missing = set(range(len(store.roster))) - covered
    if missing:
        raise SegmentError(
            f"store covers {len(covered)}/{len(store.roster)} personas; "
            f"missing positions {sorted(missing)[:10]}"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    counts: Dict[str, int] = {}

    counts["bids.csv"] = _write_csv(
        out / "bids.csv",
        _BIDS_HEADER,
        (
            (r["persona"], r["iteration"], r["site"], r["slot"], r["bidder"],
             r["cpm"], r["interacted"])
            for r in store.iter_stream("bids")
        ),
    )
    counts["ads.csv"] = _write_csv(
        out / "ads.csv",
        _ADS_HEADER,
        (
            (r["persona"], r["iteration"], r["site"], r["slot"],
             r["advertiser"], r["product"], r["source"])
            for r in store.iter_stream("ads")
        ),
    )
    counts["skill_flows.csv"] = _write_csv(
        out / "skill_flows.csv",
        _FLOWS_HEADER,
        (
            (r["persona"], r["skill"], r["domain"], r["ip"], r["port"],
             r["packets"], r["bytes"])
            for r in store.iter_stream("flows")
        ),
    )
    counts["sync_events.csv"] = _write_csv(
        out / "sync_events.csv",
        _SYNC_HEADER,
        (
            (r["persona"], r["source"], r["destination"], r["uid"])
            for r in store.iter_stream("sync")
        ),
    )
    counts["dsar_interests.csv"] = _write_csv(
        out / "dsar_interests.csv",
        _DSAR_HEADER,
        (
            (
                r["persona"],
                r["request"],
                r["interests"] is None,
                "; ".join(r["interests"] or ()),
            )
            for r in store.iter_stream("dsar")
        ),
    )
    counts["audio_ads.csv"] = _write_csv(
        out / "audio_ads.csv",
        _AUDIO_HEADER,
        (
            (r["persona"], r["skill"], r["start"], r["brand"])
            for r in store.iter_stream("audio")
        ),
    )

    _write_summary(out, summarize_segment_store(store))
    counts["summary.json"] = 1
    return counts


def summarize_segment_store(store) -> dict:
    """:func:`export_summary` recomputed as folds over segment streams.

    Several sequential passes (personas, a point read of the vanilla
    control's bids, bids grouped by roster position, sync, policy),
    each O(aggregates) in memory — identical output to the in-memory
    summary because every fold performs the same arithmetic on the same
    values in the same order.
    """
    # Pass 1: roster metadata + common-slot intersection.
    kinds: Dict[int, tuple] = {}
    slot_sets: List[List[str]] = []
    for record in store.iter_stream("personas"):
        kinds[record["pos"]] = (record["name"], record["kind"])
        slot_sets.append(record["loaded_slots"])
    slots = common_slots_from_sets(slot_sets)

    # Point read: the vanilla control's representative sample, needed
    # before interest personas stream past (vanilla sits after them in
    # roster order).
    vanilla_pos = next(
        (pos for pos, (_, kind) in kinds.items() if kind == "vanilla"), None
    )
    vanilla_sample: List[float] = []
    if vanilla_pos is not None:
        vanilla_sample = representative_from_rows(
            store.stream_records_for("bids", vanilla_pos), slots
        )

    # Pass 2: bids, grouped by persona (contiguous in the merged stream).
    bid_summaries: Dict[str, dict] = {}
    significance: Dict[str, dict] = {}

    def finish_group(pos: int, rows: List[dict]) -> None:
        name, kind = kinds[pos]
        if kind == "web":
            return
        cpms = post_cpms_from_rows(rows, slots)
        if cpms:
            bid_summaries[name] = _bid_summary_cell(summarize(cpms))
        if kind == "interest":
            sample = representative_from_rows(rows, slots)
            if sample and vanilla_sample:
                significance[name] = _significance_cell(
                    mann_whitney_u(sample, vanilla_sample, alternative="greater")
                )

    current_pos: Optional[int] = None
    group: List[dict] = []
    for record in store.iter_stream("bids"):
        if record["pos"] != current_pos:
            if current_pos is not None:
                finish_group(current_pos, group)
            current_pos = record["pos"]
            group = []
        group.append(record)
    if current_pos is not None:
        finish_group(current_pos, group)

    # Pass 3 + 4: sync and policy folds (no event retention).
    sync = fold_sync_events(
        (
            SyncEvent(
                persona=r["persona"],
                source=r["source"],
                destination_host=r["destination"],
                uid=r["uid"],
                url=r["url"],
            )
            for r in store.iter_stream("sync")
        ),
        keep_events=False,
    )
    availability = fold_policy_availability(store.iter_stream("policy"))

    return _assemble_summary(
        personas=sorted(store.roster),
        n_slots=len(slots),
        bid_summaries=bid_summaries,
        significance=significance,
        sync=sync,
        availability=availability,
    )


# ---------------------------------------------------------------------- #
# Shared summary assembly
# ---------------------------------------------------------------------- #


def _bid_summary_cell(summary) -> dict:
    return {
        "median": summary.median,
        "mean": summary.mean,
        "max": summary.maximum,
        "n": summary.n,
    }


def _significance_cell(result) -> dict:
    return {
        "p_value": result.p_value,
        "effect_size": result.effect_size,
        "significant": result.significant,
    }


def _assemble_summary(
    *,
    personas: List[str],
    n_slots: int,
    bid_summaries: Dict[str, dict],
    significance: Dict[str, dict],
    sync: SyncAnalysis,
    availability,
) -> dict:
    return {
        "personas": personas,
        "common_ad_slots": n_slots,
        "bid_summaries": bid_summaries,
        "significance_vs_vanilla": significance,
        "cookie_sync": {
            "partners": sync.partner_count,
            "downstream": sync.downstream_count,
            "amazon_outbound": len(sync.amazon_outbound_targets),
        },
        "policy_availability": {
            "total_skills": availability.total_skills,
            "with_link": availability.with_link,
            "downloadable": availability.downloadable,
            "mention_amazon": availability.mention_amazon,
            "generic": availability.generic,
            "link_amazon_policy": availability.link_amazon_policy,
        },
    }
