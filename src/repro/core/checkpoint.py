"""Crash-safe shard checkpoint journal.

The paper's measurement campaign ran for months against live
infrastructure, where partial failure — a crawler OOM, a hung vantage
point, a killed process — is the normal case.  The reproduction's
parallel runner originally shared that fragility: one lost worker
discarded every completed persona shard.  This module is the durability
layer underneath the shard supervisor (:mod:`repro.core.parallel`): each
completed :class:`~repro.core.parallel.ShardResult` is published to an
on-disk **journal** keyed by seed root, config fingerprint, and the
shard plan, so a campaign killed mid-run resumes from its completed
shards and — because shard artifacts are seed-deterministic — produces
exports byte-identical to an uninterrupted run.

Durability rules:

* **Atomic publish.**  Every journal write goes through
  :func:`atomic_write_bytes` (write temp → flush → ``fsync`` →
  ``os.replace``), so a crash mid-write never leaves a half-written
  payload at a journal key.  The same helper backs the dataset cache
  (:mod:`repro.core.cache`).
* **Schema-stamped entries.**  Each shard payload records the journal
  schema version, the seed root, the config fingerprint, the shard-plan
  digest, and the shard's persona names.  A stale or foreign entry —
  different campaign, different plan, older schema — never resumes; it
  raises :class:`CorruptShardError` and the supervisor quarantines it
  (rename to ``*.corrupt``) and recomputes.
* **Run-level manifest.**  ``journal.json`` records the journal key,
  the shard plan, per-shard attempt history, and the final status
  (``complete`` / ``partial`` / ``failed``), so an operator — or a CI
  chaos job — can audit what a crashed run left behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CorruptShardError",
    "ShardJournal",
    "atomic_write_bytes",
    "shard_plan_digest",
]

#: Bump whenever the journal payload layout changes shape; stale entries
#: fail validation and are recomputed rather than resumed.
CHECKPOINT_SCHEMA_VERSION = 1

_MANIFEST_NAME = "journal.json"


class CheckpointError(RuntimeError):
    """The journal cannot serve this run (missing or mismatched key)."""


class CorruptShardError(CheckpointError):
    """A journal entry exists but is unreadable or fails validation."""


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp → fsync → rename.

    A reader can never observe a partial file at ``path`` — it sees
    either the previous content or the full new content.  The ``fsync``
    before the rename is what makes the journal crash-safe: without it a
    power loss could publish a name pointing at unwritten blocks.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def shard_plan_digest(shard_plan: Sequence[Sequence[str]]) -> str:
    """Stable digest of a shard plan (persona names per shard, in order)."""
    payload = json.dumps([list(names) for names in shard_plan])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ShardJournal:
    """Atomic per-shard result journal for one campaign execution.

    A journal is bound to a **key**: ``(seed_root, config_fingerprint,
    shard_plan)``.  Entries written under a different key never load —
    resuming a journal against the wrong campaign raises instead of
    silently merging foreign artifacts.
    """

    def __init__(
        self,
        root: Union[str, Path],
        seed_root: int,
        config_fingerprint: str,
        shard_plan: Sequence[Sequence[str]],
    ) -> None:
        self.root = Path(root)
        self.seed_root = seed_root
        self.config_fingerprint = config_fingerprint
        self.shard_plan: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(names) for names in shard_plan
        )
        if not self.shard_plan:
            raise ValueError("shard plan must not be empty")
        self.plan_digest = shard_plan_digest(self.shard_plan)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def shard_path(self, shard_index: int) -> Path:
        return self.root / f"shard-{shard_index:04d}.pkl"

    def error_path(self, shard_index: int) -> Path:
        return self.root / f"shard-{shard_index:04d}.error"

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    # ------------------------------------------------------------------ #
    # Shard entries
    # ------------------------------------------------------------------ #

    def write_shard(self, shard_index: int, result) -> Path:
        """Atomically publish one completed shard's ``ShardResult``."""
        self._check_index(shard_index)
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "plan_digest": self.plan_digest,
            "shard_index": shard_index,
            "persona_names": list(self.shard_plan[shard_index]),
            "result": result,
        }
        path = self.shard_path(shard_index)
        atomic_write_bytes(path, pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        return path

    def load_shard(self, shard_index: int):
        """The checkpointed ``ShardResult``, or ``None`` when absent.

        Raises :class:`CorruptShardError` when an entry exists but is
        unreadable or stamped with a different schema version, campaign
        key, or shard plan — the caller quarantines and recomputes.
        """
        self._check_index(shard_index)
        path = self.shard_path(shard_index)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            payload = pickle.loads(raw)
        except Exception as exc:
            raise CorruptShardError(
                f"journal entry {path.name} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CorruptShardError(
                f"journal entry {path.name} has no payload envelope"
            )
        expected = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "plan_digest": self.plan_digest,
            "shard_index": shard_index,
            "persona_names": list(self.shard_plan[shard_index]),
        }
        for field, want in expected.items():
            got = payload.get(field)
            if got != want:
                raise CorruptShardError(
                    f"journal entry {path.name} fails validation: "
                    f"{field}={got!r}, expected {want!r}"
                )
        return payload["result"]

    def has_entry(self, shard_index: int) -> bool:
        return self.shard_path(shard_index).exists()

    def quarantine(self, shard_index: int) -> Optional[Path]:
        """Move a bad entry aside (``*.corrupt``) so a retry can publish."""
        path = self.shard_path(shard_index)
        if not path.exists():
            return None
        target = path.with_name(path.name + ".corrupt")
        os.replace(path, target)
        return target

    def load_completed(self) -> Dict[int, object]:
        """Every valid checkpointed shard, quarantining corrupt entries."""
        completed: Dict[int, object] = {}
        for index in range(len(self.shard_plan)):
            try:
                result = self.load_shard(index)
            except CorruptShardError:
                self.quarantine(index)
                continue
            if result is not None:
                completed[index] = result
        return completed

    def reset(self) -> None:
        """Drop every shard entry and error record (fresh run)."""
        if not self.root.is_dir():
            return
        for pattern in ("shard-*.pkl", "shard-*.error", "shard-*.pkl.corrupt"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Worker error records
    # ------------------------------------------------------------------ #

    def write_error(self, shard_index: int, text: str) -> None:
        atomic_write_bytes(self.error_path(shard_index), text.encode("utf-8"))

    def read_error(self, shard_index: int) -> Optional[str]:
        try:
            return self.error_path(shard_index).read_text()
        except (FileNotFoundError, OSError):
            return None

    # ------------------------------------------------------------------ #
    # Run-level manifest
    # ------------------------------------------------------------------ #

    def write_manifest(
        self,
        *,
        status: str,
        attempts: Optional[Dict[int, List[str]]] = None,
        missing_personas: Sequence[str] = (),
        package_version: str = "",
    ) -> None:
        """Publish the run-level journal manifest (``journal.json``)."""
        if status not in ("running", "complete", "partial", "failed"):
            raise ValueError(f"invalid journal status: {status!r}")
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "plan_digest": self.plan_digest,
            "shard_plan": [list(names) for names in self.shard_plan],
            "status": status,
            "attempts": {
                str(index): list(outcomes)
                for index, outcomes in sorted((attempts or {}).items())
            },
            "missing_personas": list(missing_personas),
            "package_version": package_version,
        }
        atomic_write_bytes(
            self.manifest_path,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )

    def read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptShardError(
                f"journal manifest {self.manifest_path} is unreadable: {exc}"
            ) from exc

    def validate_for_resume(self) -> Dict[str, object]:
        """Check the on-disk manifest matches this run's journal key."""
        manifest = self.read_manifest()
        if manifest is None:
            raise CheckpointError(
                f"cannot resume: no journal manifest at {self.manifest_path}"
            )
        for field, want in (
            ("schema", CHECKPOINT_SCHEMA_VERSION),
            ("seed_root", self.seed_root),
            ("config_fingerprint", self.config_fingerprint),
            ("plan_digest", self.plan_digest),
        ):
            got = manifest.get(field)
            if got != want:
                raise CheckpointError(
                    f"cannot resume: journal {field} is {got!r}, this run "
                    f"expects {want!r} (same seed, config, and worker count "
                    "are required to resume a checkpointed campaign)"
                )
        return manifest

    # ------------------------------------------------------------------ #

    def _check_index(self, shard_index: int) -> None:
        if not 0 <= shard_index < len(self.shard_plan):
            raise ValueError(
                f"shard index {shard_index} outside plan of "
                f"{len(self.shard_plan)} shards"
            )
