#!/usr/bin/env python3
"""Privacy-policy compliance audit (paper §7) standalone.

Runs a skills-only campaign (no web crawls), extracts data flows from the
AVS Echo plaintext and endpoint flows from encrypted captures, and checks
both against each skill's privacy policy with the PoliCheck analyzer.
"""

import argparse

from repro.core.compliance import (
    analyze_compliance,
    policy_availability,
    run_validation_study,
)
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.report import render_kv, render_table
from repro.data import datatypes as dt
from repro.util.rng import Seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--with-amazon-policy",
        action="store_true",
        help="also consult Amazon's platform policy (the §7.2.2 experiment)",
    )
    args = parser.parse_args()

    config = ExperimentConfig(
        pre_iterations=0,
        post_iterations=1,
        crawl_sites=1,
        prebid_discovery_target=2,
        audio_hours=0.1,
    )
    print("running the skills campaign ...")
    dataset = run_campaign(config, Seed(args.seed))
    world = dataset.world

    availability = policy_availability(dataset)
    print()
    print(
        render_kv(
            {
                "skills": availability.total_skills,
                "with policy link": availability.with_link,
                "policy downloadable": availability.downloadable,
                "mention Amazon/Alexa": availability.mention_amazon,
                "generic (no mention)": availability.generic,
                "link Amazon's policy": availability.link_amazon_policy,
            },
            title="§7.1 policy availability",
        )
    )

    compliance = analyze_compliance(
        dataset,
        world.corpus,
        world.org_resolver(),
        world.org_categories(),
        include_platform_policy=args.with_amazon_policy,
    )
    rows = []
    for data_type in dt.ALL_DATA_TYPES:
        counts = compliance.datatype_table.get(data_type, {})
        rows.append(
            (
                data_type,
                counts.get("clear", 0),
                counts.get("vague", 0),
                counts.get("omitted", 0),
                counts.get("no policy", 0),
            )
        )
    print()
    print(
        render_table(
            ["data type", "clear", "vague", "omitted", "no policy"],
            rows,
            title="Table 13 — data-type disclosures"
            + (" (with Amazon's policy)" if args.with_amazon_policy else ""),
        )
    )

    rows = []
    for org, classes in sorted(compliance.endpoint_table.items()):
        rows.append(
            (
                org,
                len(classes.get("clear", [])),
                len(classes.get("vague", [])),
                len(classes.get("omitted", [])),
                len(classes.get("no policy", [])),
            )
        )
    print()
    print(
        render_table(
            ["endpoint organization", "clear", "vague", "omitted", "no policy"],
            rows,
            title="Table 14 — endpoint disclosures",
        )
    )

    report = run_validation_study(compliance, world.corpus, Seed(args.seed))
    print()
    print(
        render_kv(
            {
                "flows validated": report.n_flows,
                "micro P/R/F1": f"{report.micro_f1:.4f}",
                "macro precision": f"{report.macro_precision:.4f}",
                "macro recall": f"{report.macro_recall:.4f}",
                "macro F1": f"{report.macro_f1:.4f}",
            },
            title="§7.2.3 PoliCheck validation vs human coder",
        )
    )


if __name__ == "__main__":
    main()
