"""End-to-end tests of the audit service over real HTTP.

The service's contract is that the transport never touches the data:
a campaign submitted over HTTP must export byte-for-byte what
``execute_spec`` produces in-process for the same spec.  These tests
run a real :class:`AuditService` on an ephemeral port and exercise
submit → schedule → poll → SSE → download, plus the two properties a
multi-tenant durable service must hold: concurrent campaigns do not
contaminate each other, and SIGKILL of the whole service process loses
no submitted work — a restart on the same root resumes and completes
to identical bytes.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.core.campaign import CampaignSpec, execute_spec
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES
from repro.service import AuditService

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)

TERMINAL = ("complete", "partial", "failed", "cancelled")


def _get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _post_json(url, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _get_bytes(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.read()


def _wait_terminal(base_url, job_id, timeout=240.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = _get_json(f"{base_url}/campaigns/{job_id}")
        if record["state"] in TERMINAL:
            return record
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never reached a terminal state")


def _digest_dir(directory):
    return {
        name: hashlib.sha256((directory / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


class TestHttpLifecycle:
    def test_submit_poll_download_matches_in_process(self, tmp_path):
        spec = CampaignSpec(config=TINY, seed=404)
        execute_spec(spec, tmp_path / "direct")
        with AuditService(tmp_path / "service", total_workers=2) as service:
            status, record = _post_json(
                f"{service.url}/campaigns", spec.to_dict()
            )
            assert status == 201
            assert record["state"] == "queued"
            assert record["fingerprint"] == spec.fingerprint()
            job_id = record["id"]

            final = _wait_terminal(service.url, job_id)
            assert final["state"] == "complete"

            listing = _get_json(f"{service.url}/campaigns/{job_id}/results")
            assert listing["files"] == sorted(EXPORT_FILES)
            for name in EXPORT_FILES:
                served = _get_bytes(
                    f"{service.url}/campaigns/{job_id}/results/{name}"
                )
                assert served == (tmp_path / "direct" / name).read_bytes(), (
                    f"{name}: HTTP result differs from in-process export"
                )

            index = _get_json(f"{service.url}/campaigns")
            assert [j["id"] for j in index["jobs"]] == [job_id]

    def test_sse_stream_replays_lifecycle_and_ends(self, tmp_path):
        spec = CampaignSpec(config=TINY, seed=405)
        with AuditService(tmp_path / "service", total_workers=2) as service:
            _, record = _post_json(f"{service.url}/campaigns", spec.to_dict())
            raw = _get_bytes(
                f"{service.url}/campaigns/{record['id']}/events"
            ).decode("utf-8")
        frames = [f for f in raw.split("\n\n") if f]
        assert frames[-1] == "event: end\ndata: complete"
        events = [
            json.loads(frame[len("data: "):])
            for frame in frames[:-1]
        ]
        types = [event["type"] for event in events]
        assert types[0] == "job.submitted"
        assert "job.started" in types
        assert types[-1] == "job.finished"
        # canonical obs event schema: SSE consumers parse trace records
        assert all(
            sorted(event) == ["fields", "schema", "seq", "sim_time", "type"]
            for event in events
        )
        assert [event["seq"] for event in events] == list(range(len(events)))

    def test_bad_specs_rejected_with_400(self, tmp_path):
        with AuditService(tmp_path / "service") as service:
            url = f"{service.url}/campaigns"
            bad_bodies = [
                {"schema": 1, "config": {}, "backend": "gpu", "parallel": True},
                {"schema": 1, "config": {}, "wrokers": 4},
                {"schema": 99, "config": {}},
                {"schema": 1, "config": {}, "cache": "/tmp/c"},  # managed
            ]
            for body in bad_bodies:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post_json(url, body)
                assert excinfo.value.code == 400
                detail = json.loads(excinfo.value.read().decode("utf-8"))
                assert "error" in detail
            # nothing half-created
            assert _get_json(url)["jobs"] == []

    def test_unknown_job_and_file_are_404(self, tmp_path):
        spec = CampaignSpec(config=TINY, seed=406)
        with AuditService(tmp_path / "service") as service:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(f"{service.url}/campaigns/job-000099-deadbeef")
            assert excinfo.value.code == 404
            _, record = _post_json(f"{service.url}/campaigns", spec.to_dict())
            _wait_terminal(service.url, record["id"])
            for name in ("nope.csv", "..%2Fspec.json", "%2e%2e"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get_bytes(
                        f"{service.url}/campaigns/{record['id']}/results/{name}"
                    )
                assert excinfo.value.code == 404


class TestMultiTenant:
    def test_concurrent_campaigns_are_isolated(self, tmp_path):
        """Two tenants, different seeds, scheduled concurrently: each
        gets exactly the bytes its own spec produces in isolation."""
        spec_a = CampaignSpec(config=TINY, seed=1001)
        spec_b = CampaignSpec(config=TINY, seed=2002)
        execute_spec(spec_a, tmp_path / "direct-a")
        execute_spec(spec_b, tmp_path / "direct-b")
        gold = {"a": _digest_dir(tmp_path / "direct-a"),
                "b": _digest_dir(tmp_path / "direct-b")}
        assert gold["a"] != gold["b"]  # seeds genuinely diverge

        with AuditService(tmp_path / "service", total_workers=2) as service:
            _, rec_a = _post_json(f"{service.url}/campaigns", spec_a.to_dict())
            _, rec_b = _post_json(f"{service.url}/campaigns", spec_b.to_dict())
            assert _wait_terminal(service.url, rec_a["id"])["state"] == "complete"
            assert _wait_terminal(service.url, rec_b["id"])["state"] == "complete"
            served = {}
            for key, rec in (("a", rec_a), ("b", rec_b)):
                served[key] = {
                    name: hashlib.sha256(
                        _get_bytes(
                            f"{service.url}/campaigns/{rec['id']}/results/{name}"
                        )
                    ).hexdigest()
                    for name in EXPORT_FILES
                }
            health = _get_json(f"{service.url}/healthz")
        assert served == gold
        assert health["service.jobs_submitted"] == 2
        assert health["service.jobs_completed"] == 2
        assert 1 <= health["service.workers_peak"] <= 2


class TestKillRestartResume:
    def test_sigkill_service_then_restart_completes_identically(self, tmp_path):
        """SIGKILL the whole service mid-campaign; a restart on the same
        root re-queues the job, resumes from its checkpoints, and the
        final exports match an uninterrupted in-process run byte for
        byte."""
        spec = CampaignSpec(
            config=TINY, seed=2026, parallel=True, workers=4, backend="process"
        )
        execute_spec(spec, tmp_path / "direct")
        gold = _digest_dir(tmp_path / "direct")

        root = tmp_path / "service-root"
        script = (
            "import sys, time\n"
            "from repro.service import AuditService\n"
            f"service = AuditService({str(root)!r}, total_workers=4)\n"
            "service.start()\n"
            "print(service.port, flush=True)\n"
            "while True:\n"
            "    time.sleep(0.5)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        victim = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            port = int(victim.stdout.readline().strip())
            _, record = _post_json(
                f"http://127.0.0.1:{port}/campaigns", spec.to_dict()
            )
            job_id = record["id"]
            ckpt = root / "jobs" / job_id / "checkpoint"
            # Kill the moment the first shard checkpoint lands.  If the
            # campaign wins the race and finishes, the restart degenerates
            # to recovery of a complete journal — equality must still hold.
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline and victim.poll() is None:
                if list(ckpt.glob("shard-*.pkl")):
                    break
                time.sleep(0.05)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
            victim.stdout.close()
        assert list(ckpt.glob("shard-*.pkl")), "no shard ever checkpointed"

        # Restart on the same root: recovery must find the orphaned job,
        # re-queue it, and resume from the journal it left behind.
        with AuditService(root, total_workers=4) as service:
            final = _wait_terminal(service.url, job_id)
            assert final["state"] == "complete"
            served = {
                name: hashlib.sha256(
                    _get_bytes(
                        f"{service.url}/campaigns/{job_id}/results/{name}"
                    )
                ).hexdigest()
                for name in EXPORT_FILES
            }
            events = _get_bytes(
                f"{service.url}/campaigns/{job_id}/events?follow=0"
            ).decode("utf-8")
        assert served == gold
        assert "job.recovered" in events
