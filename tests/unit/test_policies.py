"""Tests for policy corpus generation and the PoliCheck analyzer."""

import pytest

from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.data.skill_catalog import build_catalog
from repro.policies.corpus import build_corpus
from repro.policies.policheck.analyzer import PolicheckAnalyzer, _collection_sentences
from repro.policies.policheck.extraction import DataFlow
from repro.policies.policheck.ontology import (
    default_data_ontology,
    default_entity_ontology,
)
from repro.util.rng import Seed

AMAZON = "Amazon Technologies, Inc."


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(Seed(42))


@pytest.fixture(scope="module")
def corpus(catalog):
    return build_corpus(catalog, Seed(42))


@pytest.fixture(scope="module")
def analyzer(corpus):
    return PolicheckAnalyzer(corpus)


class TestCorpus:
    def test_one_document_per_downloadable_policy(self, catalog, corpus):
        downloadable = sum(
            1 for s in catalog if s.policy and s.policy.downloadable
        )
        assert len(corpus) == downloadable

    def test_no_document_for_link_only_policies(self, catalog, corpus):
        link_only = next(
            s
            for s in catalog
            if s.policy and s.policy.has_link and not s.policy.downloadable
        )
        assert corpus.get(link_only.skill_id) is None

    def test_generic_policies_never_mention_amazon(self, corpus):
        generic = [d for d in corpus if not d.mentions_amazon]
        assert generic
        for doc in generic:
            assert "amazon" not in doc.text.lower()
            assert "alexa" not in doc.text.lower()

    def test_amazon_policy_link_included_when_specified(self, corpus):
        linked = [d for d in corpus if d.links_amazon_policy]
        assert linked
        for doc in linked:
            assert "amazon.com/privacy" in doc.text

    def test_deterministic(self, catalog):
        a = build_corpus(catalog, Seed(3))
        b = build_corpus(catalog, Seed(3))
        assert [d.text for d in a] == [d.text for d in b]


class TestSentenceGating:
    def test_collection_sentences_extracted(self):
        text = "We collect your voice recording. We love cats."
        sentences = _collection_sentences(text)
        assert len(sentences) == 1
        assert "voice recording" in sentences[0]

    def test_negated_sentences_skipped(self):
        text = "We do not collect your voice recording."
        assert _collection_sentences(text) == []

    def test_never_negation_skipped(self):
        text = "We never share identifiers with anyone."
        assert _collection_sentences(text) == []


class TestDataOntology:
    def test_exact_terms_map_to_types(self):
        ontology = default_data_ontology()
        matches = ontology.matches("we collect your voice recording")
        assert any(
            m.target == dt.VOICE_RECORDING and m.specificity == "exact"
            for m in matches
        )

    def test_broad_terms_map_to_types(self):
        ontology = default_data_ontology()
        matches = ontology.matches("we collect usage data")
        assert any(
            m.target == dt.AUDIO_PLAYER_EVENTS and m.specificity == "broad"
            for m in matches
        )

    def test_case_insensitive(self):
        ontology = default_data_ontology()
        assert ontology.matches("VOICE RECORDING collected")


class TestEntityOntology:
    def test_exact_org_alias(self):
        ontology = default_entity_ontology()
        assert ontology.exact_match("data is sent to Amazon", AMAZON) == "amazon"

    def test_broad_category_term(self):
        ontology = default_entity_ontology()
        term = ontology.broad_match(
            "we share data with analytics providers", ("analytic provider",)
        )
        assert term == "analytics providers"

    def test_blanket_third_party_covers_everything(self):
        ontology = default_entity_ontology()
        assert ontology.broad_match(
            "shared with third parties", ("content provider",)
        )

    def test_category_mismatch_no_match(self):
        ontology = default_entity_ontology()
        assert (
            ontology.broad_match(
                "we use an analytics tool", ("content provider",)
            )
            is None
        )


class TestAnalyzerClassification:
    def test_no_policy_classification(self, catalog, analyzer):
        no_policy = next(s for s in catalog.active_skills if s.policy is None)
        flow = DataFlow(no_policy.skill_id, dt.VOICE_RECORDING, AMAZON)
        assert analyzer.classify_datatype_flow(flow).classification == "no policy"

    def test_clear_voice_disclosure(self, catalog, analyzer):
        sonos = catalog.by_name("Sonos")
        flow = DataFlow(sonos.skill_id, dt.VOICE_RECORDING, AMAZON)
        disclosure = analyzer.classify_datatype_flow(flow)
        assert disclosure.classification == "clear"
        assert disclosure.evidence_term is not None

    def test_endpoint_clear_for_garmin(self, catalog, corpus):
        analyzer = PolicheckAnalyzer(
            corpus,
            org_categories={"Garmin International": ("content provider",)},
        )
        garmin = catalog.by_name("Garmin")
        flow = DataFlow(garmin.skill_id, None, "Garmin International")
        assert analyzer.classify_endpoint_flow(flow).classification == "clear"

    def test_endpoint_vague_via_category_terms(self, catalog, corpus):
        analyzer = PolicheckAnalyzer(
            corpus,
            org_categories={
                AMAZON: ("platform provider", "analytic provider"),
            },
        )
        harmony = catalog.by_name("Harmony")
        flow = DataFlow(harmony.skill_id, None, AMAZON)
        assert analyzer.classify_endpoint_flow(flow).classification == "vague"

    def test_endpoint_omitted_when_undisclosed(self, catalog, corpus):
        analyzer = PolicheckAnalyzer(
            corpus, org_categories={"Chartable Holding Inc": ("analytic provider",)}
        )
        tesla = catalog.by_name("My Tesla (Unofficial)")
        flow = DataFlow(tesla.skill_id, None, "Chartable Holding Inc")
        assert analyzer.classify_endpoint_flow(flow).classification == "omitted"

    def test_platform_policy_upgrade(self, catalog, corpus):
        """§7.2.2: consulting Amazon's policy removes all omissions."""
        plain = PolicheckAnalyzer(corpus)
        with_amazon = PolicheckAnalyzer(corpus, include_platform_policy=True)
        upgraded = 0
        for spec in catalog.active_skills:
            if spec.policy is None or not spec.policy.downloadable:
                continue
            for data_type in spec.data_types:
                flow = DataFlow(spec.skill_id, data_type, AMAZON)
                before = plain.classify_datatype_flow(flow).classification
                after = with_amazon.classify_datatype_flow(flow).classification
                assert after in {"clear", "vague"}
                if before == "omitted":
                    upgraded += 1
        assert upgraded > 50

    def test_datatype_flow_requires_data_type(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.classify_datatype_flow(DataFlow("skill-x", None, AMAZON))
