"""Tests for the §8.1 defenses: selective blocking and local voice."""

import pytest

from repro.alexa import AVSEcho, AlexaCloud, AmazonAccount, EchoDevice, Marketplace
from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.data.domains import PIHOLE_FILTER_TEXT, build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.defenses import (
    BlockingRouter,
    LocalProcessingEcho,
    evaluate_blocking,
    voice_exposure,
)
from repro.netsim.http import HttpRequest
from repro.netsim.packet import Protocol
from repro.netsim.router import BLACKHOLE_IP, NetworkError, Router
from repro.orgmap.filterlists import FilterList
from repro.util.clock import SimClock
from repro.util.rng import Seed


@pytest.fixture
def rig():
    seed = Seed(23)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    return seed, router, catalog, cloud, marketplace


class TestBlockingRouter:
    def test_blocks_listed_hosts(self, rig):
        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))
        blocking.attach_device("d1")
        with pytest.raises(NetworkError, match="blocked by policy"):
            blocking.send(
                "d1", HttpRequest("GET", "https://chtbl.com/x")
            )
        assert blocking.report.blocked["chtbl.com"] == 1

    def test_allows_functional_hosts(self, rig):
        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))
        blocking.attach_device("d1")
        response = blocking.send(
            "d1", HttpRequest("GET", "https://api.amazon.com/v1/ping")
        )
        assert response.ok
        assert blocking.report.allowed == 1

    def test_allowlist_overrides_block(self, rig):
        seed, router, *_ = rig
        blocking = BlockingRouter(
            router,
            FilterList.from_text(PIHOLE_FILTER_TEXT),
            allowlist={"chtbl.com"},
        )
        blocking.attach_device("d1")
        assert blocking.send("d1", HttpRequest("GET", "https://chtbl.com/x")).ok

    def test_skill_degrades_gracefully_behind_block(self, rig):
        seed, router, catalog, cloud, marketplace = rig
        blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))
        account = AmazonAccount(email="b@example.com", persona="b")
        device = EchoDevice("echo-b", account, blocking, cloud, seed)
        garmin = catalog.by_name("Garmin")
        marketplace.install(account, garmin.skill_id)
        replies = device.run_skill_session(garmin)
        assert any(r is not None for r in replies)  # still functional
        assert blocking.report.blocked_total > 0  # tracking dropped

    def test_evaluate_blocking_zero_breakage(self, rig):
        seed, router, catalog, cloud, marketplace = rig
        blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))
        account = AmazonAccount(email="e@example.com", persona="e")
        device = EchoDevice("echo-e", account, blocking, cloud, seed)
        skills = [s for s in catalog.top_skills(cat.FASHION, 8) if s.active]
        evaluation = evaluate_blocking(device, marketplace, skills, blocking)
        assert evaluation.breakage_rate == 0.0
        assert evaluation.functional_requests_allowed > 0

    def test_blocked_request_still_shows_dns_query(self, rig):
        # A PiHole'd network is not invisible: the resolver still sees the
        # query, it just answers with a blackhole address.
        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_hosts(["x.bad.com"]))
        blocking.attach_device("d1")
        cap = blocking.start_capture("blocked")
        before = blocking.packets_forwarded
        clock_before = blocking.clock.now
        with pytest.raises(NetworkError, match="blocked by policy"):
            blocking.send("d1", HttpRequest("GET", "https://x.bad.com/t"))
        assert blocking.packets_forwarded == before + 2
        dns = [p for p in cap if p.protocol is Protocol.DNS]
        assert dns[0].payload == {"kind": "dns-query", "domain": "x.bad.com"}
        assert dns[1].payload["answers"][0]["ip"] == BLACKHOLE_IP
        assert blocking.clock.now > clock_before  # blocking is not free

    def test_block_rate_property(self, rig):
        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_hosts(["x.bad.com"]))
        blocking.attach_device("d1")
        with pytest.raises(NetworkError):
            blocking.send("d1", HttpRequest("GET", "https://x.bad.com/"))
        assert blocking.report.block_rate == 1.0


class TestFacadeSurface:
    """BlockingRouter must mirror Router's whole public surface.

    This test fails the moment Router grows a public attribute the facade
    lacks, so the two cannot silently drift apart (clients handed a
    BlockingRouter would hit AttributeError deep inside a campaign).
    """

    def test_every_public_router_attribute_exists_on_facade(self, rig):
        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_hosts(["x.bad.com"]))
        missing = [
            name
            for name in dir(router)
            if not name.startswith("_") and not hasattr(blocking, name)
        ]
        assert not missing, (
            f"BlockingRouter is missing Router attributes: {missing}; "
            "extend the facade in repro/defenses/blocking.py"
        )

    def test_facade_forwards_state(self, rig):
        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_hosts(["x.bad.com"]))
        assert blocking.clock is router.clock
        assert blocking.registry is router.registry
        assert blocking.dns is router.dns
        assert blocking.faults is router.faults is None
        assert blocking.packets_forwarded == router.packets_forwarded

    def test_obs_setter_reaches_inner_router(self, rig):
        from repro.obs import ObsCollector

        seed, router, *_ = rig
        blocking = BlockingRouter(router, FilterList.from_hosts(["x.bad.com"]))
        obs = ObsCollector()
        blocking.obs = obs  # how ExperimentRunner binds tracing
        assert router.obs is obs


class TestLocalProcessingEcho:
    def _devices(self, rig):
        seed, router, catalog, cloud, marketplace = rig
        garmin = catalog.by_name("Garmin")
        local_account = AmazonAccount(email="lv@example.com", persona="lv")
        local = LocalProcessingEcho("echo-lv", local_account, router, cloud, seed)
        marketplace.install(local_account, garmin.skill_id)
        stock_account = AmazonAccount(email="st@example.com", persona="st")
        stock = AVSEcho("echo-st", stock_account, router, cloud, seed)
        marketplace.install(stock_account, garmin.skill_id)
        return garmin, local, stock

    def test_no_audio_leaves_device(self, rig):
        garmin, local, _ = self._devices(rig)
        local.run_skill_session(garmin)
        exposure = voice_exposure(local.plaintext_log)
        assert exposure["audio_uploads"] == 0
        assert exposure["text_uploads"] > 0

    def test_skills_never_receive_voice_fields(self, rig):
        garmin, local, _ = self._devices(rig)
        local.run_skill_session(garmin)
        exposure = voice_exposure(local.plaintext_log)
        assert exposure["skill_voice_fields"] == 0
        # Other data types still flow (the defense is targeted).
        uploads = [
            r.payload["body"]["data"]
            for r in local.plaintext_log
            if r.payload["body"].get("event") == "skill-data"
        ]
        assert uploads and dt.SKILL_ID in uploads[0]

    def test_stock_device_leaks_voice(self, rig):
        garmin, _, stock = self._devices(rig)
        stock.run_skill_session(garmin)
        exposure = voice_exposure(stock.plaintext_log)
        assert exposure["audio_uploads"] > 0
        assert exposure["skill_voice_fields"] > 0

    def test_functionality_preserved(self, rig):
        garmin, local, stock = self._devices(rig)
        local_replies = local.run_skill_session(garmin)
        stock_replies = stock.run_skill_session(garmin)
        assert sum(1 for r in local_replies if r) >= sum(
            1 for r in stock_replies if r
        ) - 1

    def test_wake_word_still_required(self, rig):
        garmin, local, _ = self._devices(rig)
        assert local.say("open garmin") is None  # no wake word
        assert local.say("alexa, open garmin") is not None
