"""Table 8 / §5.3: personalized display ads — Amazon house campaigns
exclusive to single personas, and non-exclusive skill-vendor ads."""

from paper_targets import TOTAL_ADS

from repro.core.adcontent import analyze_display_ads
from repro.core.report import render_table
from repro.data import categories as cat

PAPER_CAMPAIGNS = {
    ("health-and-fitness", "Dehumidifier"): (7, 5, True),
    ("health-and-fitness", "Essential oils"): (1, 1, True),
    ("smart-home", "Vacuum cleaner"): (1, 1, True),
    ("smart-home", "Vacuum cleaner accessories"): (1, 1, True),
    ("religion-and-spirituality", "Eero WiFi router"): (12, 8, False),
    ("religion-and-spirituality", "Kindle"): (14, 4, False),
    ("religion-and-spirituality", "Swarovski"): (2, 2, False),
    ("pets-and-animals", "PC files copying/switching software"): (4, 2, False),
}


def bench_table8_personalized(
    benchmark, dataset, vendors_by_persona, skill_names_by_persona
):
    analysis = benchmark.pedantic(
        analyze_display_ads,
        args=(dataset, vendors_by_persona, skill_names_by_persona),
        rounds=2,
        iterations=1,
    )

    rows = [
        (
            ad.persona,
            ad.product,
            f"{ad.impressions}x/{ad.iterations} iters",
            "relevant" if ad.apparent_relevance else "no apparent relevance",
        )
        for ad in analysis.exclusive_amazon_ads
    ]
    print()
    print(render_table(["persona", "product", "frequency", "label"], rows, title="Table 8"))
    print(
        f"\ntotal ads {analysis.total_ads} (paper {TOTAL_ADS}); "
        f"vendor-ad impressions {sum(analysis.vendor_ad_counts.values())} (paper 79)"
    )

    # Every paper campaign appears, exclusive, with exact frequency.
    found = {
        (ad.persona, ad.product): (ad.impressions, ad.iterations, ad.apparent_relevance)
        for ad in analysis.exclusive_amazon_ads
    }
    for key, expected in PAPER_CAMPAIGNS.items():
        assert found.get(key) == expected, key

    # Vendor ads: counted in the persona with the matching skill, but not
    # exclusive to it (paper: "do not reveal obvious personalization").
    assert not analysis.vendor_ads_exclusive
    vendor_total = sum(analysis.vendor_ad_counts.values())
    assert 40 <= vendor_total <= 120  # paper: 79
    assert analysis.vendor_ad_counts.get((cat.SMART_HOME, "Microsoft"), 0) > 20
    # Total ad volume within ~25% of the paper's 20,210.
    assert 0.75 * TOTAL_ADS <= analysis.total_ads <= 1.25 * TOTAL_ADS
