"""The end-to-end auditing experiment (paper §3, Figure 1).

Timeline (simulated dates mirror the paper's December-2021 campaign):

1.  **Setup** — accounts, Echo + AVS Echo per Echo persona, fresh browser
    profile per persona, unique IPs, companion-app login.
2.  **Pre-interaction crawls** — 6 iterations (Dec 10–20) over the
    prebid crawl set, for Figure 3a / Table 6's no-interaction columns.
3.  **Skill installation** — top-50 per interest persona; DSAR #1.
4.  **Interaction wave 1** — per-skill tcpdump-bracketed sessions on the
    Echo (encrypted captures) and AVS Echo (plaintext log); DSAR #2.
5.  **Post-interaction crawls** — 25 iterations (Dec 27 – late Jan),
    collecting bids, rendered ads, and the request log.
6.  **Audio streaming** — 6 h × 3 skills × 3 personas.
7.  **Interaction wave 2 + DSAR #3** (and the re-request that reproduces
    the missing-interest-file quirk).
8.  **Policy collection** — the Puppeteer-style policy crawl.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.adtech.audio import StreamSession
from repro.alexa.account import AmazonAccount
from repro.alexa.device import AVSEcho, EchoDevice, PlaintextRecord
from repro.alexa.dsar import DataExport
from repro.core.personas import Persona, scaled_roster
from repro.core.world import World, build_config_world
from repro.data import categories as cat
from repro.data.skill_catalog import STREAMING_SKILLS
from repro.data.websites import WEB_PRIMING_SITES, WebsiteSpec
from repro.netsim.faults import FaultProfile
from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.pcap import CaptureSession
from repro.netsim.router import NetworkError
from repro.obs import NULL_OBS, ObsCollector
from repro.policies.corpus import PolicyDocument
from repro.util.rng import Seed
from repro.web.browser import Browser, BrowserProfile
from repro.web.openwpm import AdRecord, BidRecord, OpenWPMCrawler, discover_prebid_sites
from repro.web.browser import LoggedRequest

__all__ = [
    "ExperimentConfig",
    "PersonaArtifacts",
    "PolicyFetch",
    "AuditDataset",
    "ExperimentRunner",
]

_DAY = 86400.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs; defaults reproduce the paper's campaign."""

    skills_per_persona: int = 50
    pre_iterations: int = 6
    post_iterations: int = 25
    crawl_sites: int = 20
    prebid_discovery_target: int = 200
    audio_hours: float = 6.0
    audio_personas: Tuple[str, ...] = (cat.CONNECTED_CAR, cat.FASHION, cat.VANILLA)
    second_interaction_wave: bool = True
    run_avs_echo: bool = True
    #: Network fault profile: ``"none"``, ``"mild"``, ``"harsh"``, or a
    #: float rate (e.g. ``"0.05"``).  See :mod:`repro.netsim.faults`.
    fault_profile: str = "none"
    #: Interest-persona replication factor: the default roster becomes
    #: :func:`repro.core.personas.scaled_roster` of this scale
    #: (``9 * roster_scale + 4`` personas).  ``1`` is the paper's
    #: 13-persona campaign; larger scales drive the flat-memory segment
    #: store (see :mod:`repro.core.segments`).
    roster_scale: int = 1
    #: Timeline-epoch mutations (:mod:`repro.core.timeline`).  All of
    #: them default to "no mutation", so a plain campaign is epoch 0 of
    #: every timeline.  Because they are config fields they participate
    #: in :func:`repro.core.cache.config_fingerprint` — two epochs whose
    #: effective configs match share a segment-store directory and reuse
    #: each other's covered personas for free.
    #:
    #: Calendar shift in whole days: the world clock's epoch becomes
    #: ``PAPER_EPOCH + epoch_offset_days``, so
    #: :func:`repro.data.calibration.holiday_factor` seasonality (Table
    #: 6) varies across timeline epochs while the day-relative crawl
    #: schedule is untouched.
    epoch_offset_days: int = 0
    #: Bidder-roster churn: ``bidders_entered`` appends that many new
    #: partner DSPs (``edsp00``, ``edsp01``, …); ``bidders_exited``
    #: removes the last that many original partners.  Slot assignment
    #: samples from the whole roster, so any churn dirties every persona.
    bidders_entered: int = 0
    bidders_exited: int = 0
    #: Skill-catalog churn tokens, ``"<category>:<salt>"``: re-draw the
    #: review counts of that category's skills with a salt-keyed stream,
    #: reshuffling its ``top_skills`` ranking while every other
    #: category's skills — and every other seeded draw — stay untouched.
    catalog_churn: Tuple[str, ...] = ()
    #: Interest-drift tokens, ``"<persona>:<shift>"``: slide that
    #: persona's skill window down its category ranking by ``shift``
    #: positions (installs skills ranked ``shift .. shift+n``), leaving
    #: every other persona's artifacts untouched.
    interest_drift: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.skills_per_persona < 1 or self.skills_per_persona > 50:
            raise ValueError("skills_per_persona must be in [1, 50]")
        if self.pre_iterations < 0 or self.post_iterations < 1:
            raise ValueError("iteration counts out of range")
        if self.pre_iterations > 6:
            raise ValueError(
                f"pre_iterations must be <= 6, got {self.pre_iterations}: "
                "pre-interaction crawls run every other day from day 0 and "
                "must finish before the day-11 install phase"
            )
        if self.crawl_sites < 1:
            raise ValueError(f"crawl_sites must be >= 1, got {self.crawl_sites}")
        if self.prebid_discovery_target < 1:
            raise ValueError(
                "prebid_discovery_target must be >= 1, got "
                f"{self.prebid_discovery_target}"
            )
        if self.crawl_sites > self.prebid_discovery_target:
            raise ValueError(
                f"crawl_sites ({self.crawl_sites}) cannot exceed "
                f"prebid_discovery_target ({self.prebid_discovery_target}); "
                "the crawl set is a prefix of the discovered prebid sites"
            )
        if self.audio_hours <= 0:
            raise ValueError(f"audio_hours must be positive, got {self.audio_hours}")
        if not isinstance(self.roster_scale, int) or isinstance(
            self.roster_scale, bool
        ):
            raise ValueError(
                f"roster_scale must be an int, got {type(self.roster_scale).__name__}"
            )
        if self.roster_scale < 1:
            raise ValueError(f"roster_scale must be >= 1, got {self.roster_scale}")
        # Normalise to a tuple so configs hash/fingerprint consistently,
        # then validate each member: a typo'd category used to silently
        # yield zero audio sessions.
        object.__setattr__(self, "audio_personas", tuple(self.audio_personas))
        valid_audio = set(cat.ALL_CATEGORIES) | {cat.VANILLA}
        for name in self.audio_personas:
            if name not in valid_audio:
                raise ValueError(
                    f"unknown audio persona {name!r}: audio streaming needs an "
                    f"Echo-holding persona, one of {sorted(valid_audio)}"
                )
        # Validate + normalise (e.g. "MILD" -> "mild", "0.10" ->
        # "rate:0.1") so equivalent profiles fingerprint identically.
        object.__setattr__(
            self, "fault_profile", FaultProfile.parse(self.fault_profile).name
        )
        for name in ("epoch_offset_days", "bidders_entered", "bidders_exited"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{name} must be an int, got {type(value).__name__}"
                )
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        object.__setattr__(self, "catalog_churn", tuple(self.catalog_churn))
        for token in self.catalog_churn:
            category, sep, salt = str(token).partition(":")
            if not sep or not salt or category not in cat.ALL_CATEGORIES:
                raise ValueError(
                    f"catalog_churn token {token!r} must be "
                    f"'<category>:<salt>' with a category from "
                    f"{sorted(cat.ALL_CATEGORIES)}"
                )
        object.__setattr__(self, "interest_drift", tuple(self.interest_drift))
        for token in self.interest_drift:
            persona, sep, shift = str(token).partition(":")
            if not sep or not persona or not shift.isdigit() or int(shift) < 1:
                raise ValueError(
                    f"interest_drift token {token!r} must be "
                    "'<persona>:<shift>' with an integer shift >= 1"
                )


@dataclass
class PersonaArtifacts:
    """Everything the auditor collected for one persona."""

    persona: Persona
    profile_id: str
    account: Optional[AmazonAccount] = None
    skill_captures: Dict[str, CaptureSession] = field(default_factory=dict)
    install_failures: List[str] = field(default_factory=list)
    avs_plaintext: List[PlaintextRecord] = field(default_factory=list)
    bids: List[BidRecord] = field(default_factory=list)
    ads: List[AdRecord] = field(default_factory=list)
    request_log: List[LoggedRequest] = field(default_factory=list)
    loaded_slots: Set[str] = field(default_factory=set)
    audio_sessions: List[StreamSession] = field(default_factory=list)
    dsar_exports: List[DataExport] = field(default_factory=list)
    #: This persona's slice of the policy crawl (interest personas only).
    #: ``AuditDataset.policy_fetches`` is the roster-ordered concatenation
    #: of these; the per-persona attribution is what lets segment-store
    #: workers emit policy records at any batch granularity.
    policy_fetches: List["PolicyFetch"] = field(default_factory=list)


@dataclass(frozen=True)
class PolicyFetch:
    """Outcome of the policy crawl for one skill (§7.1)."""

    skill_id: str
    url: Optional[str]
    document: Optional[PolicyDocument]

    @property
    def has_link(self) -> bool:
        return self.url is not None

    @property
    def downloaded(self) -> bool:
        return self.document is not None


@dataclass
class AuditDataset:
    """The full artifact bundle the analyses run on."""

    personas: Dict[str, PersonaArtifacts]
    prebid_sites: List[WebsiteSpec]
    crawl_sites: List[WebsiteSpec]
    policy_fetches: List[PolicyFetch]
    #: World handle — used by benchmarks/tests to compare measured vs
    #: generative truth.  Analysis code must not consult it.
    world: World = None  # type: ignore[assignment]
    #: Wall-clock seconds per campaign phase (diagnostics only — never
    #: exported, so serial and parallel runs stay export-identical).
    timings: Dict[str, float] = field(default_factory=dict)
    #: Personas the campaign expected but could not deliver — non-empty
    #: only for an explicitly-degraded parallel merge
    #: (``on_shard_failure="degrade"`` after a shard exhausted its retry
    #: budget).  A complete run always has an empty tuple, so partial
    #: data is never silently indistinguishable from complete data.
    missing_personas: Tuple[str, ...] = ()
    #: Observability collector for the run that produced this dataset
    #: (spans, metrics, events, manifest) — None when tracing was off.
    #: Never consulted by exports or analyses.
    obs: Optional[ObsCollector] = None

    def artifacts(self, persona_name: str) -> PersonaArtifacts:
        return self.personas[persona_name]

    @property
    def interest_personas(self) -> List[PersonaArtifacts]:
        return [a for a in self.personas.values() if a.persona.kind == "interest"]

    @property
    def vanilla(self) -> PersonaArtifacts:
        return self.personas[cat.VANILLA]


class ExperimentRunner:
    """Drives the measurement campaign against a world.

    ``personas`` selects the persona subset this runner drives — the
    shard unit of the parallel runner (:mod:`repro.core.parallel`).  The
    default is the paper's full roster.  Every phase method takes the
    subset explicitly, and per-persona artifacts are independent of which
    other personas share the world (all randomness is keyed by
    :class:`~repro.util.rng.Seed` substreams, never by call order), so a
    sharded campaign merges back into the serial result.
    """

    def __init__(
        self,
        world: World,
        config: ExperimentConfig = ExperimentConfig(),
        personas: Optional[Sequence[Persona]] = None,
        obs: Optional[ObsCollector] = None,
    ) -> None:
        self.world = world
        self.config = config
        self._personas = (
            list(personas)
            if personas is not None
            else scaled_roster(config.roster_scale)
        )
        if not self._personas:
            raise ValueError("persona subset must not be empty")
        names = [p.name for p in self._personas]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate personas in subset: {names}")
        self.obs = obs if obs is not None else NULL_OBS
        if self.obs.enabled:
            # Simulated timestamps come from the world clock; counters in
            # the world's services (DSAR portal, ad exchange) report here.
            self.obs.bind_clock(world.clock)
            world.dsar.obs = self.obs
            world.adtech.obs = self.obs
            world.router.obs = self.obs
        self.timings: Dict[str, float] = {}
        self._artifacts: Dict[str, PersonaArtifacts] = {}
        self._devices: Dict[str, EchoDevice] = {}
        self._avs_devices: Dict[str, AVSEcho] = {}
        self._profiles: Dict[str, BrowserProfile] = {}
        self._crawlers: Dict[str, OpenWPMCrawler] = {}

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #

    def _phase(self, name: str, fn, *args, det: bool = False, **attrs):
        """Run one phase under a ``phase:<name>`` span, accumulating its
        host wall-clock under ``name`` (several spans can share a key —
        the three DSAR rounds all land in ``timings["dsar"]``)."""
        started = time.perf_counter()
        with self.obs.span(f"phase:{name}", det=det, **attrs):
            try:
                return fn(*args)
            finally:
                elapsed = time.perf_counter() - started
                self.timings[name] = self.timings.get(name, 0.0) + elapsed
                self.obs.event("phase.end", phase=name)

    def run(self) -> AuditDataset:
        personas = self._personas
        total_started = time.perf_counter()
        self.obs.event(
            "campaign.start",
            seed_root=self.world.seed.root,
            personas=len(personas),
        )
        with self.obs.span("campaign"):
            self._phase("setup", self._setup_personas, personas)
            crawl_sites, prebid_sites = self._phase(
                "discovery", self._discover_sites, det=True
            )
            self._phase(
                "pre_crawls", self._run_pre_interaction_crawls, personas, crawl_sites
            )
            self._advance_to_day(11)  # Dec 21
            self._phase("install", self._install_all_skills, personas)
            # DSAR #1 (install-only)
            self._phase("dsar", self._request_dsar_all, personas, wave=1)
            self._advance_to_day(12)  # Dec 22
            self._phase(
                "interaction_wave_1", self._run_interaction_wave, personas, True
            )
            self._mark_interacted(personas)
            self._phase("dsar", self._request_dsar_all, personas, wave=2)
            self._phase(
                "post_crawls", self._run_post_interaction_crawls, personas, crawl_sites
            )
            self._phase("audio", self._run_audio_sessions, personas)
            if self.config.second_interaction_wave:
                self._phase(
                    "interaction_wave_2", self._run_interaction_wave, personas, False
                )
                self._phase("dsar", self._request_dsar_all, personas, wave=3)
                self._phase(
                    "dsar", self._rerequest_missing_interest_files, personas,
                    wave=3, rerequest=True,
                )
            policy_fetches = self._phase("policies", self._collect_policies, personas)
        self.timings["total"] = time.perf_counter() - total_started
        self.obs.event("campaign.end", personas=len(personas))
        return AuditDataset(
            personas=self._artifacts,
            prebid_sites=prebid_sites,
            crawl_sites=crawl_sites,
            policy_fetches=policy_fetches,
            world=self.world,
            timings=dict(self.timings),
            obs=self.obs if self.obs.enabled else None,
        )

    # ------------------------------------------------------------------ #
    # Phase 1: setup
    # ------------------------------------------------------------------ #

    def _setup_personas(self, personas: Sequence[Persona]) -> None:
        for persona in personas:
            with self.obs.span("persona:setup", det=True, persona=persona.name):
                self._setup_one_persona(persona)

    def _setup_one_persona(self, persona: Persona) -> None:
        artifacts = PersonaArtifacts(
            persona=persona, profile_id=f"profile-{persona.name}"
        )
        profile = BrowserProfile(
            profile_id=artifacts.profile_id, persona=persona.name
        )
        if persona.uses_echo:
            account = AmazonAccount(email=persona.email, persona=persona.name)
            artifacts.account = account
            device = EchoDevice(
                f"echo-{persona.name}",
                account,
                self.world.router,
                self.world.cloud,
                self.world.seed,
                obs=self.obs,
            )
            self._devices[persona.name] = device
            if self.config.run_avs_echo and persona.kind == "interest":
                avs_account = AmazonAccount(
                    email=f"avs-{persona.name}@persona.example.com",
                    persona=f"avs-{persona.name}",
                )
                self._avs_devices[persona.name] = AVSEcho(
                    f"avs-{persona.name}",
                    avs_account,
                    self.world.router,
                    self.world.cloud,
                    self.world.seed,
                    obs=self.obs,
                )
            profile.login_amazon(account)
        self._profiles[persona.name] = profile
        self.world.adtech.register_profile(profile)
        self._crawlers[persona.name] = OpenWPMCrawler(
            profile,
            self.world.universe,
            self.world.adtech,
            self.world.clock,
            self.world.seed,
            obs=self.obs,
            faults=self.world.fault_plan,
        )
        self._artifacts[persona.name] = artifacts
        if persona.kind == "web":
            self._prime_web_persona(persona)

    def _prime_web_persona(self, persona: Persona) -> None:
        """Visit the category's top-50 sites to build browsing history.

        Each priming page embeds a third-party tracking pixel; fetching
        it is what builds the persona's server-side interest profile —
        conventional web tracking, no Echo involved (§3.1.2).
        """
        browser = self._crawlers[persona.name].browser
        for domain in WEB_PRIMING_SITES(persona.category):
            if domain not in self.world.universe:
                self.world.universe.register(
                    domain, _make_priming_site_handler(persona.category)
                )
            page = browser.get(f"https://{domain}/")
            self.obs.inc("web.priming_requests")
            for pixel_url in page.body.get("trackers", []):
                browser.get(pixel_url)
                self.obs.inc("web.priming_requests")

    # ------------------------------------------------------------------ #
    # Phase 2: site discovery + crawls
    # ------------------------------------------------------------------ #

    def _discover_sites(self):
        probe_profile = BrowserProfile(profile_id="probe", persona="probe")
        self.world.adtech.register_profile(probe_profile)
        prebid_sites = discover_prebid_sites(
            self.world.toplist,
            self.world.universe,
            self.world.adtech,
            probe_profile,
            self.world.clock,
            target=self.config.prebid_discovery_target,
            obs=self.obs,
            faults=self.world.fault_plan,
        )
        return prebid_sites[: self.config.crawl_sites], prebid_sites

    def _crawl_all(
        self, personas: Sequence[Persona], sites: List[WebsiteSpec], iteration: int
    ) -> None:
        with self.obs.span("crawl:iteration", iteration=iteration):
            for persona in personas:
                crawler = self._crawlers[persona.name]
                with self.obs.span(
                    "persona:crawl",
                    det=True,
                    persona=persona.name,
                    iteration=iteration,
                ):
                    result = crawler.crawl_iteration(sites, iteration)
                artifacts = self._artifacts[persona.name]
                artifacts.bids.extend(result.bids)
                artifacts.ads.extend(result.ads)
                artifacts.loaded_slots.update(result.loaded_slots)
        # Request logs accumulate inside each browser; snapshot at the end.

    def _run_pre_interaction_crawls(
        self, personas: Sequence[Persona], sites: List[WebsiteSpec]
    ) -> None:
        for i in range(self.config.pre_iterations):
            # Iteration 0 crawls on day 0, where setup/discovery already
            # left the clock; asking to "advance" there would be a
            # backwards target.
            if i:
                self._advance_to_day(2 * i)  # Dec 12, 14, ..., 20
            self._crawl_all(
                personas, sites, iteration=-(self.config.pre_iterations - i)
            )

    def _run_post_interaction_crawls(
        self, personas: Sequence[Persona], sites: List[WebsiteSpec]
    ) -> None:
        for i in range(self.config.post_iterations):
            if i < 3:
                self._advance_to_day(17 + 2 * i)  # Dec 27, 29, 31
            else:
                self._advance_to_day(23 + (i - 3))  # Jan 2 onward
            self._crawl_all(personas, sites, iteration=i)
        for persona in personas:
            self._artifacts[persona.name].request_log = list(
                self._crawlers[persona.name].browser.request_log
            )

    # ------------------------------------------------------------------ #
    # Phase 3: skills
    # ------------------------------------------------------------------ #

    def _skills_for(self, persona: Persona):
        n = self.config.skills_per_persona
        shift = sum(
            int(token.partition(":")[2])
            for token in self.config.interest_drift
            if token.partition(":")[0] == persona.name
        )
        if shift == 0:
            return self.world.catalog.top_skills(persona.category, n)
        # Interest drift: the persona's attention window slides down the
        # category ranking, so installs/captures/policies churn while the
        # category-keyed bid parameters (and every other persona) hold.
        return self.world.catalog.top_skills(persona.category, n + shift)[shift:]

    def _install_all_skills(self, personas: Sequence[Persona]) -> None:
        for persona in personas:
            if persona.kind != "interest":
                continue
            artifacts = self._artifacts[persona.name]
            account = artifacts.account
            assert account is not None
            with self.obs.span("persona:install", det=True, persona=persona.name):
                for spec in self._skills_for(persona):
                    receipt = self.world.marketplace.install(account, spec.skill_id)
                    if receipt.installed:
                        self.obs.inc("skills.installed")
                    else:
                        artifacts.install_failures.append(spec.skill_id)
                        self.obs.inc("skills.install_failures")
                        self.obs.event(
                            "skill.install_failure",
                            persona=persona.name,
                            skill_id=spec.skill_id,
                        )
                    avs = self._avs_devices.get(persona.name)
                    if avs is not None and not spec.fails_to_load:
                        self.world.marketplace.install(avs.account, spec.skill_id)

    def _run_interaction_wave(
        self, personas: Sequence[Persona], capture: bool
    ) -> None:
        """One interaction pass over every installed skill (§3.1.1/§3.2)."""
        for persona in personas:
            if persona.kind != "interest":
                continue
            artifacts = self._artifacts[persona.name]
            device = self._devices[persona.name]
            avs = self._avs_devices.get(persona.name)
            with self.obs.span(
                "persona:interactions",
                det=True,
                persona=persona.name,
                capture=capture,
            ):
                for spec in self._skills_for(persona):
                    if spec.skill_id in artifacts.install_failures:
                        continue
                    session = None
                    if capture:
                        session = self.world.router.start_capture(
                            label=spec.skill_id, device_filter=device.device_id
                        )
                    # Devices absorb transient faults internally (retry +
                    # degrade); this belt keeps a persona whose session
                    # still dies from aborting the whole campaign — the
                    # partial dataset stays valid, the loss is recorded.
                    try:
                        device.run_skill_session(spec)
                        device.background_sync(list(spec.amazon_endpoints))
                        self.obs.inc("skills.sessions")
                    except NetworkError:
                        self.obs.inc("skills.sessions_failed")
                        self.obs.event(
                            "skill.session_failure",
                            persona=persona.name,
                            skill_id=spec.skill_id,
                        )
                    if session is not None:
                        self.world.router.stop_capture(session)
                        artifacts.skill_captures[spec.skill_id] = session
                    if avs is not None:
                        avs.run_skill_session(spec)
                    self.world.clock.advance(30.0)
            self.world.cloud.advance_epoch(artifacts.account.customer_id)
        # The vanilla account tracks the same experiment phases (its DSAR
        # requests are timed identically to the interest personas').
        vanilla = self._artifacts.get(cat.VANILLA)
        if vanilla is not None and vanilla.account is not None:
            self.world.cloud.advance_epoch(vanilla.account.customer_id)
        # Snapshot AVS plaintext after the wave.
        for persona_name, avs in self._avs_devices.items():
            self._artifacts[persona_name].avs_plaintext = list(avs.plaintext_log)

    def _mark_interacted(self, personas: Sequence[Persona]) -> None:
        for persona in personas:
            if persona.kind == "interest":
                self.world.adtech.set_interacted(f"profile-{persona.name}", True)

    # ------------------------------------------------------------------ #
    # Phase 4: audio
    # ------------------------------------------------------------------ #

    def _run_audio_sessions(self, personas: Sequence[Persona]) -> None:
        subset = {p.name for p in personas}
        for persona_name in self.config.audio_personas:
            if persona_name not in subset:
                continue  # persona lives in another shard
            artifacts = self._artifacts[persona_name]
            device = self._devices[persona_name]
            with self.obs.span("persona:audio", det=True, persona=persona_name):
                for skill in STREAMING_SKILLS:
                    device.say(f"alexa, play top hits on {skill.invocation_name}")
                    artifacts.audio_sessions.append(
                        self.world.audio_server.stream(
                            skill.name, persona_name, hours=self.config.audio_hours
                        )
                    )
                    self.obs.inc("audio.stream_sessions")
                    self.world.clock.advance(self.config.audio_hours * 3600.0)

    # ------------------------------------------------------------------ #
    # Phase 5: DSAR
    # ------------------------------------------------------------------ #

    def _request_dsar_all(self, personas: Sequence[Persona]) -> None:
        for persona in personas:
            if not persona.uses_echo:
                continue
            artifacts = self._artifacts[persona.name]
            with self.obs.span("persona:dsar", det=True, persona=persona.name):
                export = self.world.dsar.request_data(artifacts.account.customer_id)
            artifacts.dsar_exports.append(export)

    def _rerequest_missing_interest_files(self, personas: Sequence[Persona]) -> None:
        """Repeat the request when the interests file was absent (§6.1)."""
        for persona in personas:
            if not persona.uses_echo:
                continue
            artifacts = self._artifacts[persona.name]
            if not artifacts.dsar_exports:
                continue  # no DSAR ever completed for this persona
            if artifacts.dsar_exports[-1].advertising_interests is None:
                self.obs.event("dsar.rerequest", persona=persona.name)
                with self.obs.span(
                    "persona:dsar", det=True, persona=persona.name, rerequest=True
                ):
                    export = self.world.dsar.request_data(
                        artifacts.account.customer_id
                    )
                artifacts.dsar_exports.append(export)

    # ------------------------------------------------------------------ #
    # Phase 6: policies
    # ------------------------------------------------------------------ #

    def _collect_policies(self, personas: Sequence[Persona]) -> List[PolicyFetch]:
        fetches: List[PolicyFetch] = []
        for persona in personas:
            if persona.kind != "interest":
                continue
            persona_fetches = self._artifacts[persona.name].policy_fetches
            with self.obs.span("persona:policies", det=True, persona=persona.name):
                for spec in self._skills_for(persona):
                    url = self.world.marketplace.privacy_policy_url(spec.skill_id)
                    document = (
                        self.world.corpus.get(spec.skill_id)
                        if url is not None
                        else None
                    )
                    self.obs.inc("policies.checked")
                    if url is None:
                        self.obs.inc("policies.missing_link")
                    elif document is None:
                        self.obs.inc("policies.broken_link")
                    fetch = PolicyFetch(
                        skill_id=spec.skill_id, url=url, document=document
                    )
                    fetches.append(fetch)
                    persona_fetches.append(fetch)
        return fetches

    # ------------------------------------------------------------------ #

    def _advance_to_day(self, day: float) -> None:
        """Advance the sim clock to ``day`` days after the epoch.

        A target behind the clock is a scheduling bug (mirroring
        :meth:`~repro.util.clock.SimClock.advance`): silently no-opping
        here would let a mis-scheduled timeline collapse distinct crawl
        days onto one date and skew the Table-6 seasonality unnoticed.
        """
        target = day * _DAY
        if target < self.world.clock.now:
            raise ValueError(
                f"cannot advance backwards to day {day} "
                f"(clock is already at {self.world.clock.now / _DAY:.3f} days)"
            )
        if target > self.world.clock.now:
            self.world.clock.advance(target - self.world.clock.now)


def _make_priming_site_handler(category: str):
    """Content page carrying a third-party tracking pixel for its topic."""
    from repro.adtech.exchange import TRACKER_DOMAIN

    def handler(request: HttpRequest) -> HttpResponse:
        pixel = (
            f"https://{TRACKER_DOMAIN}/t?cat={category}&page={request.host}"
        )
        return HttpResponse(
            status=200, body={"page": request.host, "trackers": [pixel]}
        )

    return handler


def _run_serial_experiment(
    seed: Seed,
    config: ExperimentConfig = ExperimentConfig(),
    obs: Optional[ObsCollector] = None,
) -> AuditDataset:
    """Build a world for ``seed`` and run the full campaign on it.

    Internal serial engine behind :func:`repro.core.run_campaign`; call
    that instead of this.
    """
    world = build_config_world(seed, config)
    return ExperimentRunner(world, config, obs=obs).run()
