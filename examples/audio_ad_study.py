#!/usr/bin/env python3
"""The audio-ad personalization study (paper §5.4) standalone.

Streams top-hits sessions on Amazon Music, Spotify, and Pandora for the
Connected Car, Fashion & Style, and vanilla personas; transcribes the
recordings; extracts the ads; and looks for persona-exclusive brands.
"""

import argparse

from repro.adtech.audio import AudioAdServer
from repro.core.adcontent import AudioAdAnalysis, extract_audio_ads, transcribe_session
from repro.core.report import render_table
from repro.data import categories as cat
from repro.util.rng import Seed

SKILLS = ("Amazon Music", "Spotify", "Pandora")
PERSONAS = (cat.CONNECTED_CAR, cat.FASHION, cat.VANILLA)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    server = AudioAdServer(Seed(args.seed).derive("audio"))

    counts = {}
    distributions = {}
    total = 0
    for skill in SKILLS:
        for persona in PERSONAS:
            session = server.stream(skill, persona, hours=args.hours)
            transcript = transcribe_session(session)
            brands = extract_audio_ads(transcript)
            counts[(skill, persona)] = len(brands)
            total += len(brands)
            tally = {}
            for brand in brands:
                tally[brand] = tally.get(brand, 0) + 1
            distributions[(skill, persona)] = {
                b: c for b, c in tally.items() if c >= 2
            }

    analysis = AudioAdAnalysis(
        counts=counts,
        brand_distributions=distributions,
        total_ads=total,
        premium_upsell_share=0.0,
    )

    rows = []
    for (skill, persona), fraction in sorted(analysis.skill_fractions().items()):
        rows.append((skill, persona, counts[(skill, persona)], f"{fraction:.3f}"))
    print(render_table(["skill", "persona", "ads", "fraction"], rows,
                       title=f"Table 9 — {args.hours:.0f}h per (skill, persona), "
                             f"{total} ads total"))

    print("\npersona-exclusive brands (played >= 2 times):")
    for skill in SKILLS:
        for persona in PERSONAS:
            exclusive = analysis.exclusive_brands(skill, persona)
            if exclusive:
                print(f"  {skill:13s} {persona:18s} -> {sorted(exclusive)}")


if __name__ == "__main__":
    main()
