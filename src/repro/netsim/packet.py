"""Packet and flow primitives.

A :class:`Packet` models what a passive observer at a given vantage point
can see.  The crucial distinction for the auditing framework is between

* packets captured on the router from a real Echo: TLS-encrypted, so only
  the 5-tuple, SNI, and sizes are visible (``payload is None``); and
* packets tapped pre-encryption on the instrumented AVS Echo: the full
  application payload is visible.

Payloads are plain dictionaries (parsed application messages) rather than
byte strings — the paper's analysis operates on parsed fields, and keeping
them structured avoids a redundant serialize/parse round trip while still
modelling visibility correctly via the ``payload``/``None`` distinction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Direction", "Protocol", "Packet", "Flow", "FlowKey", "group_flows"]


class Direction(enum.Enum):
    """Direction of a packet relative to the monitored device."""

    OUTBOUND = "outbound"
    INBOUND = "inbound"


class Protocol(enum.Enum):
    """Application protocol carried by a packet."""

    TLS = "tls"
    HTTP = "http"
    DNS = "dns"


@dataclass(frozen=True)
class Packet:
    """A single captured datagram/record.

    Attributes
    ----------
    timestamp:
        Simulated seconds since the experiment epoch.
    src_ip, dst_ip, src_port, dst_port:
        The 5-tuple (protocol being the fifth element).
    protocol:
        Application protocol.
    size:
        Payload size in bytes (modelled, not serialized).
    direction:
        Relative to the monitored device.
    sni:
        TLS Server Name Indication, when the packet opens a TLS session.
        Visible even for encrypted traffic — this is how the paper maps
        encrypted flows to domains when no DNS answer was seen.
    payload:
        Parsed application message.  ``None`` for traffic observed only in
        encrypted form.
    device_id:
        The monitored device that sent/received this packet.
    """

    timestamp: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: Protocol
    size: int
    direction: Direction
    device_id: str
    sni: Optional[str] = None
    payload: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"packet size must be non-negative, got {self.size}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise ValueError(f"port out of range: {port}")

    @property
    def is_encrypted(self) -> bool:
        """True when the application payload is not observable."""
        return self.payload is None

    @property
    def remote_ip(self) -> str:
        """IP of the non-device end of the packet."""
        return self.dst_ip if self.direction is Direction.OUTBOUND else self.src_ip


FlowKey = Tuple[str, str, int, str]
"""(device_id, remote_ip, remote_port, protocol value)"""


@dataclass
class Flow:
    """All packets between one device and one remote endpoint/port."""

    key: FlowKey
    packets: List[Packet] = field(default_factory=list)

    @property
    def device_id(self) -> str:
        return self.key[0]

    @property
    def remote_ip(self) -> str:
        return self.key[1]

    @property
    def remote_port(self) -> int:
        return self.key[2]

    @property
    def total_bytes(self) -> int:
        return sum(p.size for p in self.packets)

    @property
    def sni(self) -> Optional[str]:
        """First SNI observed on the flow, if any."""
        for packet in self.packets:
            if packet.sni is not None:
                return packet.sni
        return None

    @property
    def first_timestamp(self) -> float:
        if not self.packets:
            raise ValueError("flow has no packets")
        return min(p.timestamp for p in self.packets)


def group_flows(packets: Iterable[Packet]) -> List[Flow]:
    """Group packets into flows by (device, remote ip, remote port, proto)."""
    flows: Dict[FlowKey, Flow] = {}
    for packet in packets:
        remote_port = (
            packet.dst_port if packet.direction is Direction.OUTBOUND else packet.src_port
        )
        key: FlowKey = (
            packet.device_id,
            packet.remote_ip,
            remote_port,
            packet.protocol.value,
        )
        flow = flows.get(key)
        if flow is None:
            flow = Flow(key=key)
            flows[key] = flow
        flow.packets.append(packet)
    return list(flows.values())
