"""Cold integrity audit (and repair) of the on-disk artifact trees.

Every durable tree the reproduction writes — the content-addressed
segment store (:mod:`repro.core.segments`), the shard checkpoint journal
(:mod:`repro.core.checkpoint`), the service job tree
(:mod:`repro.service.jobs`) — already self-heals *online*: readers
re-validate envelopes and digests and quarantine or rebuild what fails.
``fsck`` is the offline counterpart: walk a tree cold (no campaign
running, no caches trusted), re-verify every artifact the same way a
paranoid first reader would, and report exactly what a storage fault —
injected by :mod:`repro.core.iosim` or delivered by a real disk — left
behind.

Verdicts, per artifact:

* **ok** — parsed, envelope-validated, digest-verified clean.
* **repaired** — wrong but reconstructible from authoritative bytes:
  a sidecar index rebuilt from its digest-verified segments, a stale or
  corrupt digest cache dropped (every file then verifies cold once), a
  journal manifest re-stamped from the valid shard entries it indexes,
  a torn event-log tail truncated to the last complete line.
* **quarantined** — corrupt and not reconstructible in place, but the
  surrounding machinery recovers by recomputing: a digest-mismatched
  segment, an invalid batch marker, a corrupt shard pickle, a corrupt
  ``state.json``.  Moved to ``*.corrupt`` (never deleted, never left at
  a live name); the next run recomputes the lost work.
* **unrecoverable** — identity-bearing artifacts nothing can
  reconstruct: a corrupt store ``MANIFEST.json`` (the roster lives only
  there), a corrupt job ``spec.json``, an interior event-log line that
  no longer parses.  Reported and left in place for the operator.

Without ``repair=True`` the walk is read-only: the same verdicts are
counted and reported, with every action marked unapplied.  The report is
JSON-ready (the ``repro fsck`` CLI prints it verbatim and exits 0 iff
nothing was unrecoverable).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    atomic_write_bytes,
    quarantine_path,
)

__all__ = ["FsckReport", "fsck_path"]


class FsckReport:
    """Accumulates per-artifact verdicts into the JSON report."""

    def __init__(self, path: Path, kind: str, repair: bool) -> None:
        self.path = path
        self.kind = kind
        self.repair = repair
        self.counts: Dict[str, int] = {
            "ok": 0,
            "repaired": 0,
            "quarantined": 0,
            "unrecoverable": 0,
        }
        self.actions: List[Dict[str, object]] = []

    def ok(self, artifact: Path) -> None:
        self.counts["ok"] += 1

    def record(
        self, verdict: str, artifact: Path, problem: str, action: str
    ) -> None:
        """One non-ok verdict; ``action`` was applied iff repairing."""
        self.counts[verdict] += 1
        try:
            name = str(artifact.relative_to(self.path))
        except ValueError:
            name = str(artifact)
        self.actions.append(
            {
                "artifact": name,
                "problem": problem,
                "action": action,
                "applied": bool(
                    self.repair and verdict in ("repaired", "quarantined")
                ),
            }
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": str(self.path),
            "kind": self.kind,
            "repair": self.repair,
            **self.counts,
            "actions": self.actions,
        }


def fsck_path(
    path: Union[str, Path], *, repair: bool = False
) -> Dict[str, object]:
    """Audit one artifact tree; returns the JSON-ready report.

    Auto-detects what ``path`` holds: a segment store root (or a single
    campaign directory inside one), a checkpoint journal, or a service
    job tree (or a single job directory).  Raises ``ValueError`` when
    the directory matches none of them.
    """
    root = Path(path)
    if not root.is_dir():
        raise ValueError(f"fsck target is not a directory: {root}")
    kind = _detect(root)
    if kind is None:
        raise ValueError(
            f"{root} is not a segment store, checkpoint journal, or job tree"
        )
    report = FsckReport(root, kind, repair)
    if kind == "segment-store":
        for campaign_dir in sorted(root.glob("campaign-seed*-*")):
            if campaign_dir.is_dir():
                _fsck_segment_campaign(campaign_dir, report)
    elif kind == "segment-campaign":
        _fsck_segment_campaign(root, report)
    elif kind == "checkpoint-journal":
        _fsck_checkpoint_journal(root, report)
    elif kind == "job-tree":
        jobs_dir = root / "jobs" if (root / "jobs").is_dir() else root
        for job_dir in sorted(jobs_dir.glob("job-*")):
            if job_dir.is_dir():
                _fsck_job(job_dir, report)
    else:  # kind == "job"
        _fsck_job(root, report)
    return report.to_dict()


def _detect(root: Path) -> Optional[str]:
    if (root / "MANIFEST.json").is_file():
        return "segment-campaign"
    if any(root.glob("campaign-seed*-*/MANIFEST.json")):
        return "segment-store"
    if (root / "journal.json").is_file() or any(root.glob("shard-*.pkl")):
        return "checkpoint-journal"
    if (root / "spec.json").is_file():
        return "job"
    if (root / "jobs").is_dir() or any(root.glob("job-*/spec.json")):
        return "job-tree"
    return None


def _load_json(path: Path) -> Optional[object]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None


def _digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------- #
# Segment store
# ---------------------------------------------------------------------- #


def _fsck_segment_campaign(campaign_dir: Path, report: FsckReport) -> None:
    from repro.core.segments import SEGMENT_SCHEMA_VERSION

    manifest_path = campaign_dir / "MANIFEST.json"
    manifest = _load_json(manifest_path)
    if (
        not isinstance(manifest, dict)
        or manifest.get("schema") != SEGMENT_SCHEMA_VERSION
        or not isinstance(manifest.get("seed_root"), int)
        or not isinstance(manifest.get("config_fingerprint"), str)
        or not isinstance(manifest.get("roster"), list)
    ):
        # The roster (and the campaign key) live only here; a store
        # without its manifest cannot even be re-keyed.
        report.record(
            "unrecoverable",
            manifest_path,
            "store manifest unreadable or fails envelope validation",
            "none",
        )
        return
    report.ok(manifest_path)
    seed_root = manifest["seed_root"]
    fingerprint = manifest["config_fingerprint"]
    segments_dir = campaign_dir / "segments"
    batches_dir = campaign_dir / "batches"

    marker_digests: Dict[str, str] = {}  # segment file -> marker digest
    valid_batches: List[Dict[str, object]] = []
    for marker_path in sorted(batches_dir.glob("batch-*.json")):
        marker = _load_json(marker_path)
        problem = _marker_problem(
            marker, SEGMENT_SCHEMA_VERSION, seed_root, fingerprint
        )
        bad_segments: List[Path] = []
        if problem is None:
            for stream in sorted(marker["segments"]):
                ref = marker["segments"][stream]
                segment_path = segments_dir / str(ref.get("file"))
                try:
                    payload = segment_path.read_bytes()
                except OSError:
                    problem = f"segment {ref.get('file')} is missing"
                    break
                if _digest(payload) != ref.get("digest"):
                    bad_segments.append(segment_path)
                else:
                    report.ok(segment_path)
                    marker_digests[str(ref["file"])] = str(ref["digest"])
        if problem is None and not bad_segments:
            report.ok(marker_path)
            valid_batches.append(marker)
            continue
        # A batch with a bad marker or any digest-mismatched segment is
        # uncovered: quarantine every offending artifact plus the marker
        # (a marker must never point at quarantined bytes) so the next
        # run recomputes the whole batch atomically.
        for segment_path in bad_segments:
            report.record(
                "quarantined",
                segment_path,
                "segment content digest does not match its batch marker",
                "quarantine",
            )
            if report.repair:
                quarantine_path(segment_path)
        report.record(
            "quarantined",
            marker_path,
            problem or "marker references digest-mismatched segments",
            "quarantine",
        )
        index_path = batches_dir / marker_path.name.replace("batch-", "index-")
        if report.repair:
            quarantine_path(marker_path)
            if index_path.is_file():
                quarantine_path(index_path)

    for marker in valid_batches:
        _fsck_sidecar_index(
            batches_dir,
            segments_dir,
            marker,
            SEGMENT_SCHEMA_VERSION,
            seed_root,
            fingerprint,
            report,
        )

    _fsck_digest_cache(
        campaign_dir, marker_digests, SEGMENT_SCHEMA_VERSION, report
    )


def _marker_problem(
    marker: object, schema: int, seed_root: int, fingerprint: str
) -> Optional[str]:
    if not isinstance(marker, dict):
        return "marker unreadable or not a JSON object"
    if (
        marker.get("schema") != schema
        or marker.get("seed_root") != seed_root
        or marker.get("config_fingerprint") != fingerprint
    ):
        return "marker envelope does not match the store manifest"
    positions = marker.get("positions")
    if not isinstance(positions, list) or not all(
        isinstance(p, int) for p in positions
    ):
        return "marker positions are invalid"
    segments = marker.get("segments")
    if not isinstance(segments, dict) or not segments:
        return "marker has no segment references"
    for stream, ref in segments.items():
        if not isinstance(ref, dict) or not ref.get("file") or not ref.get("digest"):
            return f"marker segment reference for {stream!r} is invalid"
    return None


def _fsck_sidecar_index(
    batches_dir: Path,
    segments_dir: Path,
    marker: Dict[str, object],
    schema: int,
    seed_root: int,
    fingerprint: str,
    report: FsckReport,
) -> None:
    positions = [int(p) for p in marker["positions"]]
    index_path = batches_dir / f"index-{positions[0]:08d}.json"
    payload = _load_json(index_path)
    valid = (
        isinstance(payload, dict)
        and payload.get("schema") == schema
        and payload.get("seed_root") == seed_root
        and payload.get("config_fingerprint") == fingerprint
        and isinstance(payload.get("streams"), dict)
        and all(
            isinstance(payload["streams"].get(stream), dict)
            and payload["streams"][stream].get("file") == ref["file"]
            and payload["streams"][stream].get("digest") == ref["digest"]
            and isinstance(payload["streams"][stream].get("offsets"), dict)
            for stream, ref in marker["segments"].items()
        )
    )
    if valid:
        report.ok(index_path)
        return
    problem = (
        "sidecar index is missing"
        if not index_path.exists()
        else "sidecar index unreadable or does not match its marker"
    )
    report.record("repaired", index_path, problem, "rebuild-index")
    if not report.repair:
        return
    streams: Dict[str, Dict[str, object]] = {}
    for stream, ref in marker["segments"].items():
        segment_path = segments_dir / str(ref["file"])
        streams[stream] = {
            "file": ref["file"],
            "digest": ref["digest"],
            "offsets": _offsets_from_segment(segment_path),
        }
    atomic_write_bytes(
        index_path,
        (
            json.dumps(
                {
                    "schema": schema,
                    "seed_root": seed_root,
                    "config_fingerprint": fingerprint,
                    "positions": positions,
                    "streams": streams,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        ).encode("utf-8"),
        component="fsck",
        op="index",
    )


def _offsets_from_segment(path: Path) -> Dict[str, List[int]]:
    """Per-position byte extents, recomputed exactly as the store does."""
    offsets: Dict[str, List[int]] = {}
    with path.open("rb") as handle:
        cursor = len(handle.readline())  # header line
        for raw in handle:
            if not raw.strip():
                cursor += len(raw)
                continue
            record = json.loads(raw)
            run = offsets.setdefault(str(record["pos"]), [cursor, 0, 0])
            run[1] += len(raw)
            run[2] += 1
            cursor += len(raw)
    return offsets


def _fsck_digest_cache(
    campaign_dir: Path,
    marker_digests: Dict[str, str],
    schema: int,
    report: FsckReport,
) -> None:
    cache_path = campaign_dir / "digest-cache.json"
    if not cache_path.exists():
        return
    payload = _load_json(cache_path)
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != schema
        or not isinstance(payload.get("files"), dict)
    ):
        # The cache is pure acceleration: dropping it costs one cold
        # verify per file and can never lose data.
        report.record(
            "repaired",
            cache_path,
            "digest cache unreadable or fails envelope validation",
            "drop-digest-cache",
        )
        if report.repair:
            cache_path.unlink(missing_ok=True)
        return
    stale = []
    segments_dir = campaign_dir / "segments"
    for name, entry in payload["files"].items():
        expected = marker_digests.get(str(name))
        try:
            stat = (segments_dir / str(name)).stat()
        except OSError:
            stale.append(name)
            continue
        if (
            not isinstance(entry, dict)
            or entry.get("size") != stat.st_size
            or entry.get("mtime_ns") != stat.st_mtime_ns
            or (expected is not None and entry.get("digest") != expected)
            or expected is None
        ):
            stale.append(name)
    if not stale:
        report.ok(cache_path)
        return
    report.record(
        "repaired",
        cache_path,
        f"{len(stale)} cache entr{'y' if len(stale) == 1 else 'ies'} stale "
        "(missing file, changed size/mtime, or digest not pinned by a "
        "valid marker)",
        "prune-digest-cache",
    )
    if report.repair:
        pruned = {
            name: entry
            for name, entry in payload["files"].items()
            if name not in stale
        }
        atomic_write_bytes(
            cache_path,
            (
                json.dumps(
                    {"schema": schema, "files": pruned},
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            ).encode("utf-8"),
            component="fsck",
            op="digest-cache",
        )


# ---------------------------------------------------------------------- #
# Checkpoint journal
# ---------------------------------------------------------------------- #

_JOURNAL_KEY_FIELDS = ("seed_root", "config_fingerprint", "plan_digest")


def _fsck_checkpoint_journal(journal_dir: Path, report: FsckReport) -> None:
    manifest_path = journal_dir / "journal.json"
    manifest = _load_json(manifest_path)
    manifest_valid = (
        isinstance(manifest, dict)
        and manifest.get("schema") == CHECKPOINT_SCHEMA_VERSION
        and all(field in manifest for field in _JOURNAL_KEY_FIELDS)
    )

    entries: Dict[int, Dict[str, object]] = {}
    for shard_path in sorted(journal_dir.glob("shard-*.pkl")):
        payload = _shard_payload(shard_path)
        problem = None
        if payload is None:
            problem = "shard entry unreadable (pickle load failed)"
        elif payload.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            problem = "shard entry carries a different schema version"
        elif manifest_valid and any(
            payload.get(field) != manifest.get(field)
            for field in _JOURNAL_KEY_FIELDS
        ):
            problem = "shard entry does not match the journal key"
        elif f"shard-{payload.get('shard_index'):04d}.pkl" != shard_path.name:
            problem = "shard entry index does not match its filename"
        if problem is not None:
            report.record("quarantined", shard_path, problem, "quarantine")
            if report.repair:
                quarantine_path(shard_path)
            continue
        report.ok(shard_path)
        entries[int(payload["shard_index"])] = payload

    if manifest_valid:
        report.ok(manifest_path)
        return
    if not entries:
        report.record(
            "unrecoverable",
            manifest_path,
            "journal manifest unreadable and no valid shard entries to "
            "re-stamp it from",
            "none",
        )
        return
    # Every valid shard entry carries the full journal key, so a lost or
    # torn manifest is reconstructible: re-stamp it with the key plus
    # the shard plan as far as the entries describe it.  Resume
    # validation checks exactly the key fields, so a re-stamped journal
    # resumes its completed shards instead of recomputing everything.
    reference = entries[min(entries)]
    report.record(
        "repaired",
        manifest_path,
        "journal manifest missing or unreadable",
        "restamp-manifest",
    )
    if not report.repair:
        return
    max_index = max(entries)
    shard_plan = [
        list(entries[i].get("persona_names", [])) if i in entries else []
        for i in range(max_index + 1)
    ]
    payload = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        **{field: reference.get(field) for field in _JOURNAL_KEY_FIELDS},
        "shard_plan": shard_plan,
        "status": "partial",
        "attempts": {},
        "missing_personas": [],
        "package_version": "",
        "restamped_by": "fsck",
    }
    atomic_write_bytes(
        manifest_path,
        (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        component="fsck",
        op="manifest",
    )


def _shard_payload(path: Path) -> Optional[Dict[str, object]]:
    try:
        payload = pickle.loads(path.read_bytes())
    except Exception:  # noqa: BLE001 - any failure means corrupt
        return None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("shard_index"), int
    ):
        return None
    return payload


# ---------------------------------------------------------------------- #
# Service job tree
# ---------------------------------------------------------------------- #


def _fsck_job(job_dir: Path, report: FsckReport) -> None:
    from repro.core.campaign import CampaignSpec
    from repro.service.jobs import JOB_STATES

    spec_path = job_dir / "spec.json"
    try:
        CampaignSpec.from_json(spec_path.read_text(encoding="utf-8"))
    except Exception:  # noqa: BLE001 - any failure means corrupt
        # The spec *is* the job: without it nothing knows what to run.
        report.record(
            "unrecoverable",
            spec_path,
            "job spec unreadable or fails CampaignSpec validation",
            "none",
        )
        return
    report.ok(spec_path)

    state_path = job_dir / "state.json"
    if state_path.exists():
        state = _load_json(state_path)
        if (
            not isinstance(state, dict)
            or state.get("state") not in JOB_STATES
        ):
            # A quarantined state file leaves the job state-less, which
            # the store's recovery path re-stamps as queued — strictly
            # better than a service that cannot load the tree at all.
            report.record(
                "quarantined",
                state_path,
                "job state unreadable or names an unknown state",
                "quarantine",
            )
            if report.repair:
                quarantine_path(state_path)
        else:
            report.ok(state_path)

    _fsck_event_log(job_dir / "events.jsonl", report)

    checkpoint_dir = job_dir / "checkpoint"
    if (checkpoint_dir / "journal.json").is_file() or any(
        checkpoint_dir.glob("shard-*.pkl")
    ):
        _fsck_checkpoint_journal(checkpoint_dir, report)
    segments_dir = job_dir / "segments"
    if segments_dir.is_dir():
        for campaign_dir in sorted(segments_dir.glob("campaign-seed*-*")):
            if campaign_dir.is_dir():
                _fsck_segment_campaign(campaign_dir, report)


def _fsck_event_log(events_path: Path, report: FsckReport) -> None:
    try:
        raw = events_path.read_bytes()
    except OSError:
        return
    if not raw:
        report.ok(events_path)
        return
    torn = not raw.endswith(b"\n")
    body = raw[: raw.rfind(b"\n") + 1] if torn else raw
    problem = None
    expected_seq = 0
    for number, line in enumerate(body.decode("utf-8").splitlines(), start=1):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            problem = f"event line {number} does not parse"
            break
        if not isinstance(record, dict) or record.get("seq") != expected_seq:
            problem = (
                f"event line {number} breaks the seq chain "
                f"(expected seq={expected_seq})"
            )
            break
        expected_seq += 1
    if problem is not None:
        # Interior damage cannot be dropped without renumbering history
        # that SSE consumers may already have replayed.
        report.record("unrecoverable", events_path, problem, "none")
        return
    if torn:
        report.record(
            "repaired",
            events_path,
            "torn trailing fragment (crash mid-append)",
            "truncate-torn-tail",
        )
        if report.repair:
            with events_path.open("rb+") as handle:
                handle.truncate(len(body))
        return
    report.ok(events_path)
