"""Echo devices: the commercial Echo and the instrumented AVS Echo.

:class:`EchoDevice` models a 4th-gen Amazon Echo: all of its traffic is
HTTPS, so the router capture sees only encrypted metadata.

:class:`AVSEcho` models the paper's instrumented AVS-SDK build on a
Raspberry Pi (§3.2): it logs every application payload *before*
encryption into :attr:`AVSEcho.plaintext_log`, only talks to Amazon
endpoints, and cannot stream third-party content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.alexa.account import AmazonAccount
from repro.alexa.cloud import VOICE_ENDPOINT, AlexaCloud
from repro.data.skill_catalog import SkillSpec
from repro.netsim.endpoints import registrable_domain
from repro.netsim.faults import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.router import NetworkError, Router
from repro.obs.collector import NULL_OBS
from repro.util.rng import Seed

__all__ = ["EchoDevice", "AVSEcho", "PlaintextRecord"]

#: Amazon-owned registrable domains the AVS Echo is allowed to contact.
_AMAZON_BASE_DOMAINS = {
    "amazon.com",
    "amcs-tachyon.com",
    "amazonalexa.com",
    "cloudfront.net",
    "amazonaws.com",
    "acsechocaptiveportal.com",
    "fireoscaptiveportal.com",
    "alexa.a2z.com",
    "amazon-dss.com",
}


@dataclass(frozen=True)
class PlaintextRecord:
    """One pre-encryption message logged by the instrumented AVS SDK."""

    timestamp: float
    host: str
    payload: Mapping[str, Any]
    skill_id: Optional[str] = None


class EchoDevice:
    """A smart speaker attached to the router."""

    def __init__(
        self,
        device_id: str,
        account: AmazonAccount,
        router: Router,
        cloud: AlexaCloud,
        seed: Seed,
        retry: Optional[RetryPolicy] = None,
        obs=NULL_OBS,
    ) -> None:
        self.device_id = device_id
        self.account = account
        self.router = router
        self.cloud = cloud
        #: Shared client retry policy; backoff burns SimClock time only.
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.obs = obs
        self._rng = seed.rng("device", device_id)
        self.ip = router.attach_device(device_id)
        cloud.register_account(account)
        #: Set during a skill session for plaintext attribution.
        self._current_skill: Optional[str] = None
        # Raw audio carries the speaker's physical/emotional
        # characteristics (the patent-[69] threat); derived per speaker.
        from repro.alexa.voice_traits import SpeakerProfile

        self.speaker_profile = SpeakerProfile.derive(seed, account.email)

    # -- capabilities differ between device types ----------------------- #

    instrumented: bool = False
    allows_non_amazon: bool = True
    allows_streaming: bool = True

    # ------------------------------------------------------------------ #

    def say(self, utterance: str) -> Optional[str]:
        """Speak to the device.  Returns Alexa's spoken reply, or None
        when the wake word did not trigger."""
        command = self.cloud.voice.detect_wake_word(utterance, speaker=self.device_id)
        if command is None:
            return None
        try:
            response = self._send(
                VOICE_ENDPOINT,
                body={
                    "event": "recognize",
                    "voice_recording": command,
                    # Raw audio inevitably carries the speaker's voice signal.
                    "voice_characteristics": self.speaker_profile.as_signal(),
                    "customer_id": self.account.customer_id,
                    "device_id": self.device_id,
                    "allow_streaming": self.allows_streaming,
                },
            )
        except NetworkError:
            # Retries exhausted: the utterance is lost, the session isn't.
            self.obs.inc("device.voice_failures")
            return None
        if not response.ok:
            return None
        self._current_skill = (
            response.body.get("handled_by")
            if response.body.get("handled_by") != "alexa"
            else None
        )
        speech = self._execute_directives(response.body.get("directives", []))
        self._current_skill = None
        return speech

    def run_skill_session(self, spec: SkillSpec) -> List[Optional[str]]:
        """Utter every sample utterance of an installed skill (§3.1.1)."""
        replies = []
        for utterance in spec.sample_utterances:
            replies.append(self.say(f"alexa, {utterance}"))
            # Long responses are cut short, as in the paper's method.
            replies.append(self.say("alexa, stop!"))
        return replies

    def background_sync(self, endpoints: List[str]) -> None:
        """Periodic device housekeeping against Amazon endpoints.

        The per-skill Amazon endpoint mix (metrics, captive portal,
        updates) rides along each skill session as background traffic —
        which is why those endpoints show up attributed to skills in the
        per-skill captures (Table 1).  Metrics endpoints batch-upload
        several times per session, which is why device-metrics dominates
        the platform's tracking traffic share (§4.2, Table 2).
        """
        for domain in endpoints:
            repeats = 2 if _is_metrics_endpoint(domain) else 1
            for batch in range(repeats):
                try:
                    self._send(
                        domain,
                        body={
                            "event": "device-sync",
                            "batch": batch,
                            "device_id": self.device_id,
                            "customer_id": self.account.customer_id,
                        },
                    )
                except NetworkError:
                    # Endpoint unreachable (blocked or retries exhausted);
                    # drop the remaining batches and sync again next time.
                    self.obs.inc("device.sync_failures")
                    break

    # ------------------------------------------------------------------ #

    def _execute_directives(self, directives: List[Dict[str, Any]]) -> Optional[str]:
        speech: Optional[str] = None
        for directive in directives:
            kind = directive.get("kind")
            if kind == "speak":
                speech = directive.get("speech")
            elif kind in {"fetch", "stream"}:
                url = directive.get("url", "")
                host = url.split("/")[2] if url.startswith("https://") else ""
                if not host:
                    continue
                if not self._may_contact(host):
                    continue
                if kind == "stream" and not self.allows_streaming:
                    continue
                try:
                    self._send_raw(HttpRequest("GET", url))
                except NetworkError:
                    continue  # dead third-party endpoint; skill degrades
            elif kind == "upload":
                try:
                    self._send(
                        "api.amazonalexa.com",
                        body={
                            "event": "skill-data",
                            "skill_id": self._current_skill,
                            "data": dict(directive.get("data", {})),
                        },
                    )
                except NetworkError:
                    self.obs.inc("device.upload_failures")
                    continue  # the skill's data upload is lost, not the session
        return speech

    def _may_contact(self, host: str) -> bool:
        if self.allows_non_amazon:
            return True
        return registrable_domain(host) in _AMAZON_BASE_DOMAINS

    def _send(self, host: str, body: Mapping[str, Any]) -> HttpResponse:
        request = HttpRequest("POST", f"https://{host}/v1/events", body=dict(body))
        return self._send_raw(request)

    def _send_raw(self, request: HttpRequest) -> HttpResponse:
        if self.instrumented:
            self._log_plaintext(request)
        return self.retry.call(
            self.router.clock,
            lambda: self.router.send(self.device_id, request),
            obs=self.obs,
            scope="device",
        )

    def _log_plaintext(self, request: HttpRequest) -> None:
        raise NotImplementedError  # only AVSEcho logs plaintext


def _is_metrics_endpoint(domain: str) -> bool:
    """Amazon endpoints that batch-upload device telemetry."""
    return (
        domain.startswith("device-metrics")
        or domain.startswith("unagi")
        or "arteries" in domain
    )


class AVSEcho(EchoDevice):
    """Instrumented AVS-SDK device with a pre-encryption tap (§3.2)."""

    instrumented = True
    allows_non_amazon = False
    allows_streaming = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.plaintext_log: List[PlaintextRecord] = []

    def _log_plaintext(self, request: HttpRequest) -> None:
        self.plaintext_log.append(
            PlaintextRecord(
                timestamp=self.router.clock.now,
                host=request.host,
                payload=request.to_payload(),
                skill_id=self._current_skill,
            )
        )
