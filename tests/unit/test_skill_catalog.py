"""Tests for the seeded skill catalog: quotas, named skills, invariants."""

from collections import Counter

import pytest

from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.data.skill_catalog import (
    QUOTAS,
    STREAMING_SKILLS,
    PolicySpec,
    SkillCatalog,
    SkillSpec,
    build_catalog,
)
from repro.util.rng import Seed


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(Seed(42))


class TestCatalogShape:
    def test_total_skills(self, catalog):
        assert len(catalog) == 450

    def test_fifty_per_category(self, catalog):
        for category in cat.ALL_CATEGORIES:
            assert len(catalog.in_category(category)) == 50

    def test_four_failed_skills(self, catalog):
        assert sum(1 for s in catalog if s.fails_to_load) == 4

    def test_active_count(self, catalog):
        assert len(catalog.active_skills) == 446

    def test_unique_skill_ids(self, catalog):
        ids = [s.skill_id for s in catalog]
        assert len(ids) == len(set(ids))

    def test_deterministic(self):
        a = build_catalog(Seed(5))
        b = build_catalog(Seed(5))
        assert [s.skill_id for s in a] == [s.skill_id for s in b]
        assert [s.data_types for s in a] == [s.data_types for s in b]

    def test_different_seeds_differ(self):
        a = build_catalog(Seed(5))
        b = build_catalog(Seed(6))
        assert [s.data_types for s in a] != [s.data_types for s in b]


class TestNamedSkills:
    def test_garmin_endpoints(self, catalog):
        garmin = catalog.by_name("Garmin")
        assert "chtbl.com" in garmin.other_endpoints
        assert "static.garmincdn.com" in garmin.other_endpoints
        assert garmin.category == cat.CONNECTED_CAR

    def test_only_two_skills_contact_own_domains(self, catalog):
        own_only = [
            s
            for s in catalog.active_skills
            if s.other_endpoints and not s.contacts_third_party
        ]
        assert {s.name for s in own_only} == {"YouVersion Bible"}
        garmin = catalog.by_name("Garmin")
        assert garmin.contacts_third_party  # Garmin contacts both kinds

    def test_thirty_one_third_party_skills(self, catalog):
        assert sum(1 for s in catalog.active_skills if s.contacts_third_party) == 31

    def test_sonos_policy_clear(self, catalog):
        policy = catalog.by_name("Sonos").policy
        assert policy.platform_disclosure == "clear"
        assert policy.links_amazon_policy
        assert policy.datatype_disclosures[dt.VOICE_RECORDING] == "clear"

    def test_smart_home_has_vendor_advertiser_skills(self, catalog):
        vendors = {s.vendor for s in catalog.in_category(cat.SMART_HOME)}
        assert {"Microsoft", "SimpliSafe", "Samsung", "LG"} <= vendors

    def test_health_persona_has_table8_skills(self, catalog):
        names = {s.name for s in catalog.in_category(cat.HEALTH)}
        assert {"Air Quality Report", "Essential Oil Benefits"} <= names

    def test_failed_skills_have_no_endpoints(self, catalog):
        for spec in catalog:
            if spec.fails_to_load:
                assert spec.amazon_endpoints == ()
                assert spec.data_types == ()


class TestPolicyQuotas:
    def test_policy_link_quota(self, catalog):
        links = sum(1 for s in catalog if s.policy and s.policy.has_link)
        assert links == QUOTAS["policy_links"]

    def test_downloadable_quota(self, catalog):
        downloadable = sum(
            1 for s in catalog if s.policy and s.policy.downloadable
        )
        assert downloadable == QUOTAS["policies_downloadable"]

    def test_mention_amazon_quota(self, catalog):
        mention = sum(
            1
            for s in catalog
            if s.policy and s.policy.downloadable and s.policy.mentions_amazon
        )
        assert mention == QUOTAS["policies_mention_amazon"]

    def test_platform_disclosure_quota(self, catalog):
        counts = Counter(
            s.policy.platform_disclosure
            for s in catalog
            if s.policy and s.policy.downloadable
        )
        assert counts == Counter(QUOTAS["platform_disclosure"])

    def test_datatype_quotas(self, catalog):
        for data_type, (clear, vague, omitted, no_policy) in QUOTAS[
            "datatype_disclosure"
        ].items():
            collectors = [s for s in catalog.active_skills if data_type in s.data_types]
            with_policy = [
                s for s in collectors if s.policy and s.policy.downloadable
            ]
            classes = Counter(
                s.policy.datatype_disclosures.get(data_type) for s in with_policy
            )
            assert classes["clear"] == clear, data_type
            assert classes["vague"] == vague, data_type
            assert classes["omitted"] == omitted, data_type
            assert len(collectors) - len(with_policy) == no_policy, data_type

    def test_customer_id_subset_of_skill_id(self, catalog):
        for spec in catalog.active_skills:
            if dt.CUSTOMER_ID in spec.data_types:
                assert dt.SKILL_ID in spec.data_types

    def test_timezone_tracks_language(self, catalog):
        for spec in catalog.active_skills:
            assert (dt.LANGUAGE in spec.data_types) == (
                dt.TIMEZONE in spec.data_types
            )


class TestCatalogApi:
    def test_top_skills_sorted_by_reviews(self, catalog):
        top = catalog.top_skills(cat.SMART_HOME, 10)
        reviews = [s.review_count for s in top]
        assert reviews == sorted(reviews, reverse=True)

    def test_top_skills_capped(self, catalog):
        assert len(catalog.top_skills(cat.DATING, 5)) == 5

    def test_by_id_unknown_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.by_id("skill-nope")

    def test_by_name_unknown_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.by_name("Nope")

    def test_duplicate_ids_rejected(self):
        spec = SkillSpec(
            skill_id="skill-x",
            name="X",
            category=cat.DATING,
            vendor="V",
            review_count=1,
            invocation_name="x",
            sample_utterances=("open x",),
        )
        with pytest.raises(ValueError):
            SkillCatalog([spec, spec])


class TestPolicySpecValidation:
    def test_downloadable_requires_link(self):
        with pytest.raises(ValueError):
            PolicySpec(has_link=False, downloadable=True)

    def test_invalid_disclosure_class(self):
        with pytest.raises(ValueError):
            PolicySpec(
                has_link=True,
                downloadable=True,
                platform_disclosure="fuzzy",
            )


class TestStreamingSkills:
    def test_trio_present(self):
        assert [s.name for s in STREAMING_SKILLS] == [
            "Amazon Music",
            "Spotify",
            "Pandora",
        ]

    def test_all_streaming(self):
        assert all(s.is_streaming for s in STREAMING_SKILLS)
