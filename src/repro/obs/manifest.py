"""The run manifest: what produced this trace, and at what cost.

One manifest per campaign run.  The deterministic half (seed, config
fingerprint, worker topology, entrypoint) answers "can I reproduce this
artifact?"; the real-time half (per-phase host seconds) answers "what
did it cost?" and is kept under a separate ``real`` key so reproducible
exports can drop it wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["RunManifest", "MANIFEST_SCHEMA_VERSION"]

#: Bump when the manifest layout changes shape.
#: v2: added ``fault_profile`` (network fault injection).
#: v3: added ``shard_attempts`` / ``missing_personas`` / ``resumed`` /
#: ``checkpointed`` (crash-safe supervisor).
MANIFEST_SCHEMA_VERSION = 3


@dataclass
class RunManifest:
    """Provenance record for one campaign run."""

    seed_root: int
    config_fingerprint: str
    #: ``"serial"`` | ``"parallel"`` | ``"cached"``.
    entrypoint: str
    workers: int = 1
    backend: str = "inline"
    #: Persona names per shard, in shard order (one shard when serial).
    shards: Tuple[Tuple[str, ...], ...] = ()
    cache_hit: bool = False
    package_version: str = ""
    #: Normalised network fault profile the run was driven under
    #: (``"none"`` / ``"mild"`` / ``"harsh"`` / ``"rate:<r>"``) — part of
    #: the deterministic half: same seed + same profile reproduces the run.
    fault_profile: str = "none"
    #: Supervisor attempt history per shard, in shard order: each inner
    #: tuple lists that shard's outcomes (``"ok"`` / ``"crash"`` /
    #: ``"hang"`` / ``"poison"`` / ``"checkpoint"``) in attempt order.
    #: Empty for serial/cached runs.
    shard_attempts: Tuple[Tuple[str, ...], ...] = ()
    #: Personas absent from a degraded (partial) merge, in plan order.
    #: A complete run always has an empty tuple here.
    missing_personas: Tuple[str, ...] = ()
    #: True when the run loaded ≥0 shards from a checkpoint journal via
    #: ``run_campaign(resume=True, ...)``.
    resumed: bool = False
    #: True when shard results were journaled to a caller-supplied
    #: ``checkpoint_dir`` (as opposed to an ephemeral journal).
    checkpointed: bool = False
    #: Host seconds per campaign phase — never reproducible.
    phase_real_seconds: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.entrypoint not in {"serial", "parallel", "cached"}:
            raise ValueError(f"invalid entrypoint: {self.entrypoint!r}")
        self.shards = tuple(tuple(names) for names in self.shards)
        self.shard_attempts = tuple(
            tuple(outcomes) for outcomes in self.shard_attempts
        )
        self.missing_personas = tuple(self.missing_personas)

    @property
    def persona_count(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # ------------------------------------------------------------------ #

    def to_dict(self, include_real: bool = True) -> Dict[str, object]:
        """JSON-ready form; ``include_real=False`` keeps only the
        seed-reproducible fields."""
        payload: Dict[str, object] = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "entrypoint": self.entrypoint,
            "workers": self.workers,
            "backend": self.backend,
            "shards": [list(names) for names in self.shards],
            "persona_count": self.persona_count,
            "cache_hit": self.cache_hit,
            "package_version": self.package_version,
            "fault_profile": self.fault_profile,
            "shard_attempts": [list(outcomes) for outcomes in self.shard_attempts],
            "missing_personas": list(self.missing_personas),
            "resumed": self.resumed,
            "checkpointed": self.checkpointed,
        }
        if include_real:
            payload["real"] = {
                "phase_seconds": {
                    name: round(seconds, 6)
                    for name, seconds in sorted(self.phase_real_seconds.items())
                }
            }
        return payload
