"""OpenWPM-style crawler harness (§3.3).

Implements the paper's two crawler roles:

* **prebid discovery** — walk the Tranco-like toplist probing
  ``pbjs.version`` until 200 prebid-supported sites are found;
* **bid/ad collection** — visit each crawl site with a persona's
  logged-in browser profile, call ``pbjs.getBidResponses()`` (falling
  back to ``pbjs.requestBids()``), record bids, rendered ads, and the
  full request log, with bot-mitigation delays of 10–30 s between pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.adtech.ads import AdCreative
from repro.adtech.exchange import AdTechWorld
from repro.adtech.prebid import PrebidSession, register_publisher
from repro.data.websites import N_PREBID_TARGET, WebsiteSpec
from repro.netsim.faults import FaultPlan, RetryPolicy
from repro.obs import NULL_OBS
from repro.util.clock import SimClock
from repro.util.rng import Seed
from repro.web.browser import Browser, BrowserProfile, WebUniverse

__all__ = ["BidRecord", "AdRecord", "CrawlResult", "OpenWPMCrawler", "discover_prebid_sites"]


@dataclass(frozen=True)
class BidRecord:
    """One observed header-bidding bid."""

    persona: str
    iteration: int
    site: str
    slot_id: str
    bidder: str
    cpm: float
    timestamp: float
    interacted: bool


@dataclass(frozen=True)
class AdRecord:
    """One rendered ad creative."""

    persona: str
    iteration: int
    site: str
    slot_id: str
    creative: AdCreative


@dataclass
class CrawlResult:
    """Everything one crawl iteration produced for one persona."""

    persona: str
    iteration: int
    bids: List[BidRecord] = field(default_factory=list)
    ads: List[AdRecord] = field(default_factory=list)
    #: Slots that loaded (for common-slot filtering across personas).
    loaded_slots: List[str] = field(default_factory=list)


def discover_prebid_sites(
    toplist: Sequence[WebsiteSpec],
    universe: WebUniverse,
    adtech: AdTechWorld,
    probe_profile: BrowserProfile,
    clock: SimClock,
    target: int = N_PREBID_TARGET,
    obs=NULL_OBS,
    faults: "FaultPlan | None" = None,
) -> List[WebsiteSpec]:
    """Probe the toplist for prebid support, stopping at ``target`` sites.

    Registers every probed site's page handler in the web universe as a
    side effect (the simulation's stand-in for the site existing).

    Discovery runs once per world — every parallel shard repeats it
    identically — so its counters use the ``"first"`` merge policy, and
    the probe browser keeps ``NULL_OBS`` for its fault/retry counters
    (summing identical per-shard repeats would overcount them).  A probe
    that exhausts retries reads as "no prebid" for that site.
    """
    browser = Browser(probe_profile, universe, clock, faults=faults)
    found: List[WebsiteSpec] = []
    probed = 0
    for site in toplist:
        register_publisher(site, universe)
        session = PrebidSession(site, browser, adtech, iteration=-1)
        probed += 1
        if session.version() is not None:
            found.append(site)
        if len(found) >= target:
            break
    if len(found) < target:
        raise RuntimeError(
            f"toplist exhausted with only {len(found)} prebid sites (need {target})"
        )
    obs.inc("discovery.sites_probed", probed, merge="first")
    obs.inc("discovery.prebid_sites_found", len(found), merge="first")
    return found


class OpenWPMCrawler:
    """Bid/ad collection crawler bound to one persona's browser profile."""

    def __init__(
        self,
        profile: BrowserProfile,
        universe: WebUniverse,
        adtech: AdTechWorld,
        clock: SimClock,
        seed: Seed,
        bot_mitigation: bool = True,
        obs=NULL_OBS,
        faults: "FaultPlan | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        self.profile = profile
        self.browser = Browser(
            profile, universe, clock, faults=faults, retry=retry, obs=obs
        )
        self.adtech = adtech
        self.clock = clock
        self.bot_mitigation = bot_mitigation
        self.obs = obs
        self._rng = seed.rng("openwpm", profile.profile_id)
        adtech.register_profile(profile)

    def crawl_iteration(
        self, sites: Sequence[WebsiteSpec], iteration: int
    ) -> CrawlResult:
        """Visit every crawl site once; collect bids and rendered ads."""
        result = CrawlResult(persona=self.profile.persona, iteration=iteration)
        interacted = self.adtech.is_interacted(self.profile.profile_id)
        slot_index = 0
        for site in sites:
            session = PrebidSession(site, self.browser, self.adtech, iteration)
            bids = session.get_bid_responses()
            if not bids:
                bids = session.request_bids()
            for unit, responses in sorted(bids.items()):
                result.loaded_slots.append(unit)
                for response in responses:
                    result.bids.append(
                        BidRecord(
                            persona=self.profile.persona,
                            iteration=iteration,
                            site=site.domain,
                            slot_id=unit,
                            bidder=response.bidder,
                            cpm=response.cpm,
                            timestamp=self.clock.now,
                            interacted=interacted,
                        )
                    )
            for unit, creative in zip(
                sorted(bids), session.render_winners(slot_index, interacted)
            ):
                result.ads.append(
                    AdRecord(
                        persona=self.profile.persona,
                        iteration=iteration,
                        site=site.domain,
                        slot_id=unit,
                        creative=creative,
                    )
                )
            slot_index += len(bids)
            self.obs.inc("openwpm.pages_visited")
            if self.bot_mitigation:
                self.clock.advance(self._rng.uniform(10, 30))
        self.obs.inc("openwpm.bids_collected", len(result.bids))
        self.obs.inc("openwpm.ads_rendered", len(result.ads))
        return result
