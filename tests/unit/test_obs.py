"""Unit tests for the observability layer (repro.obs)."""

import json
import pickle

import pytest

from repro.obs import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    MetricsRegistry,
    NULL_OBS,
    ObsCollector,
    RunManifest,
    SPAN_SCHEMA_VERSION,
    Tracer,
    merge_collectors,
)
from repro.util.clock import SimClock


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                with tracer.span("leaf"):
                    pass
        assert tracer.open_depth == 0
        assert [r.name for r in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sim_timestamps_from_bound_clock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("work", det=True):
            clock.advance(1.5)
        span = tracer.roots[0]
        assert span.sim_elapsed == pytest.approx(1.5)
        assert span.sim_us == 1_500_000

    def test_sim_us_only_on_det_spans(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("structural"):
            clock.advance(2.0)
        assert tracer.roots[0].sim_us is None
        assert tracer.sim_tree()[0]["sim_us"] is None

    def test_error_status_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.roots[0].status == "error"
        assert tracer.open_depth == 0

    def test_non_scalar_attr_rejected(self):
        tracer = Tracer()
        with pytest.raises(TypeError, match="JSON scalar"):
            with tracer.span("bad", blob=[1, 2]):
                pass

    def test_records_are_preorder_with_parent_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        records = tracer.records()
        assert [(r["id"], r["parent_id"], r["name"]) for r in records] == [
            (0, None, "a"),
            (1, 0, "b"),
            (2, None, "c"),
        ]
        assert all(r["schema"] == SPAN_SCHEMA_VERSION for r in records)

    def test_sim_tree_json_is_canonical(self):
        tracer = Tracer()
        with tracer.span("p", zeta=1, alpha=2):
            pass
        text = tracer.sim_tree_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )
        assert '"alpha":2' in text


class TestMetrics:
    def test_counter_sum_and_value(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.value("x") == 5

    def test_counter_rejects_bad_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError):
            reg.inc("x", 1.5)
        with pytest.raises(ValueError):
            reg.inc("x", -1)

    def test_merge_policies_across_shards(self):
        regs = []
        for shard, n in enumerate((3, 5)):
            reg = MetricsRegistry()
            reg.inc("work", n, merge="sum")
            reg.inc("dup", 7, merge="first")
            reg.set_gauge("peak", float(10 + shard), merge="max")
            regs.append(reg)
        merged = MetricsRegistry.merge(regs)
        assert merged.value("work") == 8
        assert merged.value("dup") == 7
        assert merged.value("peak") == 11.0

    def test_merge_rejects_policy_conflict(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1, merge="sum")
        b.inc("n", 1, merge="first")
        with pytest.raises(ValueError):
            MetricsRegistry.merge([a, b])

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("n")
        with pytest.raises(TypeError, match="not a gauge"):
            reg.set_gauge("n", 1.0)

    def test_gauge_rejects_sum_policy(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.set_gauge("g", 1.0, merge="sum")

    def test_as_dict_sorted(self):
        reg = MetricsRegistry()
        reg.inc("zz")
        reg.inc("aa")
        assert list(reg.as_dict()["counters"]) == ["aa", "zz"]


class TestEventLog:
    def test_schema_is_exactly_five_keys(self):
        log = EventLog(SimClock())
        record = log.emit("phase.end", phase="setup")
        assert sorted(record) == ["fields", "schema", "seq", "sim_time", "type"]
        assert record["schema"] == EVENT_SCHEMA_VERSION
        assert record["seq"] == 0
        assert record["fields"] == {"phase": "setup"}

    def test_jsonl_round_trip_is_stable(self):
        log = EventLog()
        log.emit("a.b", x=1)
        log.emit("c.d", y="z")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["seq"] for p in parsed] == [0, 1]
        # Canonical serialisation: re-dumping reproduces each line.
        for line, p in zip(lines, parsed):
            assert line == json.dumps(p, sort_keys=True, separators=(",", ":"))

    def test_non_scalar_field_rejected(self):
        log = EventLog()
        with pytest.raises(TypeError):
            log.emit("bad", payload={"nested": True})

    def test_merge_renumbers_seq(self):
        a, b = EventLog(), EventLog()
        a.emit("one")
        b.emit("two")
        b.emit("three")
        merged = EventLog.merge([a, b])
        assert [r["seq"] for r in merged] == [0, 1, 2]
        assert [r["type"] for r in merged] == ["one", "two", "three"]


class TestManifest:
    def test_validates_entrypoint(self):
        with pytest.raises(ValueError):
            RunManifest(seed_root=1, config_fingerprint="x", entrypoint="warp")

    def test_to_dict_splits_real_fields(self):
        manifest = RunManifest(
            seed_root=42,
            config_fingerprint="abc",
            entrypoint="serial",
            shards=(("p1", "p2"),),
            phase_real_seconds={"setup": 0.25},
        )
        payload = manifest.to_dict()
        assert payload["persona_count"] == 2
        assert payload["real"]["phase_seconds"] == {"setup": 0.25}
        assert "real" not in manifest.to_dict(include_real=False)


class TestCollector:
    def test_null_obs_is_inert(self):
        with NULL_OBS.span("anything", det=True, persona="x"):
            NULL_OBS.inc("n")
            NULL_OBS.event("e")
        assert NULL_OBS.enabled is False

    def test_trace_lines_shape(self):
        obs = ObsCollector(SimClock())
        obs.manifest = RunManifest(
            seed_root=1, config_fingerprint="f", entrypoint="serial"
        )
        with obs.span("campaign"):
            obs.inc("n")
            obs.event("tick")
        kinds = [json.loads(line)["kind"] for line in obs.trace_lines()]
        assert kinds == ["manifest", "span", "event"]

    def test_collector_pickles(self):
        obs = ObsCollector(SimClock())
        with obs.span("campaign", det=True):
            obs.inc("n", 3)
            obs.event("tick", k="v")
        clone = pickle.loads(pickle.dumps(obs))
        assert clone.metrics.value("n") == 3
        assert clone.tracer.sim_tree_json() == obs.tracer.sim_tree_json()

    def test_merge_orders_personas_by_roster(self):
        roster = ["alpha", "beta", "gamma"]
        shards = []
        for names in (["alpha", "beta"], ["gamma"]):
            obs = ObsCollector(SimClock())
            with obs.span("phase:work"):
                for name in names:
                    with obs.span("persona:work", det=True, persona=name):
                        pass
            shards.append(obs)
        # Reversed shard personas still come out in roster order.
        merged = merge_collectors(list(reversed(shards)), roster)
        phase = merged.tracer.roots[0]
        assert [c.attrs["persona"] for c in phase.children] == roster

    def test_merge_rejects_structural_disagreement(self):
        a, b = ObsCollector(SimClock()), ObsCollector(SimClock())
        with a.span("phase:x"):
            pass
        with b.span("phase:y"):
            pass
        with pytest.raises(RuntimeError, match="skeleton"):
            merge_collectors([a, b], roster=[])

    def test_merge_rejects_det_sim_disagreement(self):
        shards = []
        for advance in (1.0, 2.0):
            clock = SimClock()
            obs = ObsCollector(clock)
            with obs.span("phase:x", det=True):
                clock.advance(advance)
            shards.append(obs)
        with pytest.raises(RuntimeError, match="disagrees"):
            merge_collectors(shards, roster=[])
