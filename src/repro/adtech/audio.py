"""Audio advertising on streaming skills (§3.3, §5.4).

The paper streams six hours of "top hits" per (persona, skill) into an
insulated room, records the speaker output, transcribes it, and manually
extracts ads.  Here the streaming service inserts ad breaks at
persona-dependent rates (advertiser interest differs by audience —
Table 9), choosing brands from persona-weighted catalogs (Figure 5:
Ashley/Ross are Fashion-exclusive on Spotify, Swiffer Wet Jet on
Pandora, etc.).

The output of a session is the *recorded audio* as a sequence of
segments; downstream, :mod:`repro.core.adcontent` transcribes and labels
them the way the paper's human coders did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.data.calibration import AUDIO_AD_RATE, AUDIO_BRAND_WEIGHTS
from repro.util.rng import Seed

__all__ = ["AudioSegment", "StreamSession", "AudioAdServer", "SONG_TITLES"]

SONG_TITLES: Tuple[str, ...] = (
    "Midnight Drive", "Golden Hour", "Paper Hearts", "Neon Sky", "Wildfire",
    "Slow Motion", "Gravity Falls", "Echo Chamber", "Silver Lining",
    "Daydreamer", "Static Love", "Horizon Line",
)

#: Average song length in seconds (drives how many segments fill 6 hours).
_SONG_SECONDS = 210.0
_AD_SECONDS = 30.0


@dataclass(frozen=True)
class AudioSegment:
    """One contiguous stretch of recorded speaker output."""

    kind: str  # "song" | "ad"
    start: float  # seconds into the session
    duration: float
    #: Song title or ad brand.
    label: str
    #: What the microphone heard (lyrics or ad copy).
    audio_text: str

    def __post_init__(self) -> None:
        if self.kind not in {"song", "ad"}:
            raise ValueError(f"unknown segment kind: {self.kind}")


@dataclass(frozen=True)
class StreamSession:
    """A recorded streaming session for one (skill, persona)."""

    skill_name: str
    persona: str
    hours: float
    segments: Tuple[AudioSegment, ...]

    @property
    def ad_segments(self) -> List[AudioSegment]:
        return [s for s in self.segments if s.kind == "ad"]

    @property
    def song_segments(self) -> List[AudioSegment]:
        return [s for s in self.segments if s.kind == "song"]


class AudioAdServer:
    """Server-side ad insertion for the three streaming skills."""

    def __init__(self, seed: Seed) -> None:
        self._seed = seed

    def stream(self, skill_name: str, persona: str, hours: float = 6.0) -> StreamSession:
        """Produce the recorded output of a streaming session."""
        rates = AUDIO_AD_RATE.get(skill_name)
        if rates is None:
            raise KeyError(f"no audio-ad calibration for skill {skill_name}")
        rate_per_hour = rates.get(persona)
        if rate_per_hour is None:
            raise KeyError(f"no audio-ad rate for persona {persona} on {skill_name}")

        rng = self._seed.rng("audio", skill_name, persona)
        total_seconds = hours * 3600.0
        expected_ads = rate_per_hour * hours
        segments: List[AudioSegment] = []
        elapsed = 0.0
        # Ads ride in between songs; probability per song boundary is set
        # so the expected ad count over the session matches calibration.
        songs_in_session = total_seconds / _SONG_SECONDS
        ad_probability = min(0.95, expected_ads / songs_in_session)

        while elapsed < total_seconds:
            title = rng.choice(SONG_TITLES)
            duration = _SONG_SECONDS * rng.uniform(0.8, 1.2)
            segments.append(
                AudioSegment(
                    kind="song",
                    start=elapsed,
                    duration=duration,
                    label=title,
                    audio_text=f"now playing {title.lower()} la la la",
                )
            )
            elapsed += duration
            if elapsed >= total_seconds:
                break
            if rng.random() < ad_probability:
                brand = self._pick_brand(skill_name, persona, rng)
                segments.append(
                    AudioSegment(
                        kind="ad",
                        start=elapsed,
                        duration=_AD_SECONDS,
                        label=brand,
                        audio_text=(
                            f"this episode is brought to you by {brand.lower()} "
                            f"visit our store today"
                        ),
                    )
                )
                elapsed += _AD_SECONDS
        return StreamSession(
            skill_name=skill_name,
            persona=persona,
            hours=hours,
            segments=tuple(segments),
        )

    @staticmethod
    def _pick_brand(skill_name: str, persona: str, rng) -> str:
        catalog = AUDIO_BRAND_WEIGHTS[skill_name]
        brands: List[str] = []
        weights: List[float] = []
        for brand, per_persona in catalog.items():
            weight = per_persona.get(persona, 0.0)
            if weight > 0:
                brands.append(brand)
                weights.append(weight)
        return rng.choices(brands, weights=weights, k=1)[0]
