"""Tests for the core analysis modules on a small but complete campaign."""

import pytest

from repro.core.adcontent import (
    analyze_audio_ads,
    analyze_display_ads,
    extract_audio_ads,
    transcribe_session,
)
from repro.core.bids import (
    bid_summary_table,
    bids_on_slots,
    common_slots,
    figure3_series,
    figure7_series,
    holiday_window_means,
    partner_split,
    representative_bids,
)
from repro.core.compliance import analyze_compliance, policy_availability
from repro.core.personas import all_personas, control_personas, interest_personas, Persona
from repro.core.profiling import analyze_profiling
from repro.core.report import format_float, render_distribution, render_kv, render_table
from repro.core.syncing import detect_cookie_syncing
from repro.core.traffic import analyze_traffic
from repro.data import categories as cat


class TestPersonas:
    def test_nine_interest_personas(self):
        assert len(interest_personas()) == 9

    def test_four_controls(self):
        controls = control_personas()
        assert len(controls) == 4
        assert controls[0].kind == "vanilla"

    def test_thirteen_total(self):
        assert len(all_personas()) == 13

    def test_echo_usage(self):
        assert Persona("x", "interest", cat.DATING).uses_echo
        assert not Persona("w", "web", cat.WEB_HEALTH).uses_echo

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Persona("x", "alien", cat.DATING)

    def test_display_names(self):
        assert Persona(cat.DATING, "interest", cat.DATING).display_name == "Dating"
        assert (
            Persona(cat.WEB_HEALTH, "web", cat.WEB_HEALTH).display_name
            == "Web Health"
        )


class TestCommonSlots(object):
    def test_common_slots_subset_of_each_persona(self, small_dataset):
        slots = common_slots(small_dataset)
        assert slots
        for artifacts in small_dataset.personas.values():
            assert slots <= artifacts.loaded_slots

    def test_phase_filtering(self, small_dataset):
        slots = common_slots(small_dataset)
        artifacts = small_dataset.artifacts(cat.FASHION)
        pre = bids_on_slots(artifacts, slots, "pre")
        post = bids_on_slots(artifacts, slots, "post")
        both = bids_on_slots(artifacts, slots, "all")
        assert len(pre) + len(post) == len(both)
        assert all(b.iteration < 0 for b in pre)
        assert all(b.iteration >= 0 for b in post)

    def test_invalid_phase_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            bids_on_slots(small_dataset.vanilla, set(), "mid")

    def test_representative_one_per_slot(self, small_dataset):
        slots = common_slots(small_dataset)
        sample = representative_bids(small_dataset.artifacts(cat.PETS), slots)
        assert len(sample) == len(slots)


class TestBidTables:
    def test_table5_rows_exclude_web(self, small_dataset):
        rows = bid_summary_table(small_dataset)
        names = {r.persona for r in rows}
        assert cat.VANILLA in names
        assert not any(n.startswith("web-") for n in names)

    def test_interest_medians_above_vanilla(self, small_dataset):
        rows = {r.persona: r.summary for r in bid_summary_table(small_dataset)}
        vanilla = rows[cat.VANILLA].median
        above = sum(
            1
            for name, summary in rows.items()
            if name != cat.VANILLA and summary.median > vanilla
        )
        assert above >= 7  # small samples allow an occasional inversion

    def test_holiday_means_cover_echo_personas(self, small_dataset):
        means = holiday_window_means(small_dataset, window=2)
        assert cat.VANILLA in means
        for pre, post in means.values():
            assert pre > 0 and post > 0

    def test_figure3_series_structure(self, small_dataset):
        series = figure3_series(small_dataset)
        assert set(series) == {"pre", "post"}
        assert cat.VANILLA in series["pre"]

    def test_figure7_includes_web_personas(self, small_dataset):
        series = figure7_series(small_dataset)
        assert cat.WEB_HEALTH in series

    def test_partner_split_partitions_bids(self, small_dataset):
        sync = detect_cookie_syncing(small_dataset)
        split = partner_split(small_dataset, sync.amazon_partners)
        slots = common_slots(small_dataset)
        for persona, (partner, non_partner) in split.items():
            total = len(
                bids_on_slots(small_dataset.artifacts(persona), slots, "post")
            )
            n = (partner.n if partner else 0) + (non_partner.n if non_partner else 0)
            assert n == total


class TestSyncDetection:
    def test_partners_detected(self, small_dataset):
        # The scaled-down crawl samples most-but-not-all of the 41
        # partners into auctions; the full-scale benchmark checks ==41.
        sync = detect_cookie_syncing(small_dataset)
        assert 35 <= sync.partner_count <= 41
        assert 200 <= sync.downstream_count <= 247

    def test_amazon_never_syncs_outbound(self, small_dataset):
        sync = detect_cookie_syncing(small_dataset)
        assert sync.amazon_outbound_targets == set()

    def test_events_carry_uids(self, small_dataset):
        sync = detect_cookie_syncing(small_dataset)
        assert all(e.uid for e in sync.events)

    def test_partner_codes_match_bidders(self, small_dataset):
        sync = detect_cookie_syncing(small_dataset)
        bid_bidders = {
            b.bidder for a in small_dataset.personas.values() for b in a.bids
        }
        assert sync.amazon_partners <= bid_bidders

    def test_repeated_uid_params_all_detected(self):
        # uid=a&uid=b piggybacks two identifiers on one sync call; a
        # last-wins dict parse used to drop all but the final one.
        from repro.core.syncing import _parse_syncs
        from repro.web.browser import LoggedRequest

        request = LoggedRequest(
            timestamp=0.0,
            url="https://sync.example.com/setuid?partner=dsp&uid=alpha&uid=beta",
            method="GET",
            cookies_sent={},
            status=200,
            set_cookies={},
            redirect_to=None,
            chain_root="https://pub.example.com/",
        )
        events = _parse_syncs(request, "p1")
        assert [e.uid for e in events] == ["alpha", "beta"]
        assert all(e.source == "dsp" for e in events)


class TestTrafficAnalysis:
    @pytest.fixture(scope="class")
    def traffic(self, small_dataset):
        world = small_dataset.world
        vendors = {s.skill_id: s.vendor for s in world.catalog}
        return analyze_traffic(
            small_dataset, world.org_resolver(), world.filter_list, vendors
        )

    def test_all_skills_contact_amazon(self, traffic, small_dataset):
        captured = {
            sid
            for a in small_dataset.interest_personas
            for sid in a.skill_captures
        }
        assert traffic.skills_contacting("amazon") == captured

    def test_traffic_shares_sum_to_one(self, traffic):
        assert sum(traffic.ad_tracking_traffic_share().values()) == pytest.approx(1.0)

    def test_amazon_dominates_traffic(self, traffic):
        shares = traffic.ad_tracking_traffic_share()
        amazon = sum(v for (cls, _), v in shares.items() if cls == "amazon")
        assert amazon > 0.8

    def test_top_ad_tracking_skills_ranked(self, traffic):
        top = traffic.top_ad_tracking_skills()
        counts = [len(domains) for _, domains in top]
        assert counts == sorted(counts, reverse=True)


class TestAdContent:
    def test_transcribe_covers_all_segments(self, small_dataset):
        session = small_dataset.artifacts(cat.CONNECTED_CAR).audio_sessions[0]
        transcript = transcribe_session(session)
        assert len(transcript) == len(session.segments)

    def test_extract_ads_finds_only_ads(self, small_dataset):
        session = small_dataset.artifacts(cat.CONNECTED_CAR).audio_sessions[0]
        brands = extract_audio_ads(transcribe_session(session))
        assert len(brands) == len(session.ad_segments)

    def test_audio_analysis_totals(self, small_dataset):
        analysis = analyze_audio_ads(small_dataset)
        manual = sum(
            len(s.ad_segments)
            for a in small_dataset.personas.values()
            for s in a.audio_sessions
        )
        assert analysis.total_ads == manual

    def test_skill_fractions_sum_to_one(self, small_dataset):
        analysis = analyze_audio_ads(small_dataset)
        by_skill = {}
        for (skill, _), frac in analysis.skill_fractions().items():
            by_skill[skill] = by_skill.get(skill, 0.0) + frac
        for total in by_skill.values():
            assert total == pytest.approx(1.0)

    def test_display_ads_analysis_runs(self, small_dataset):
        world = small_dataset.world
        vendors, names = {}, {}
        for p in interest_personas():
            skills = world.catalog.top_skills(p.category, 6)
            vendors[p.name] = {s.vendor for s in skills}
            names[p.name] = [s.name for s in skills]
        analysis = analyze_display_ads(small_dataset, vendors, names)
        assert analysis.total_ads > 0
        for ad in analysis.exclusive_amazon_ads:
            assert ad.impressions >= ad.iterations


class TestProfilingAnalysis:
    def test_observations_per_persona(self, small_dataset):
        analysis = analyze_profiling(small_dataset)
        personas = {o.persona for o in analysis.observations}
        assert cat.VANILLA in personas
        assert cat.HEALTH in personas

    def test_vanilla_never_has_interests(self, small_dataset):
        analysis = analyze_profiling(small_dataset)
        for label in ("installation", "interaction-1"):
            interests = analysis.interests_for(cat.VANILLA, label)
            assert not interests

    def test_missing_files_match_paper_personas(self, small_dataset):
        analysis = analyze_profiling(small_dataset)
        assert set(analysis.personas_missing_file) == {
            cat.HEALTH,
            cat.WINE,
            cat.RELIGION,
            cat.DATING,
            cat.VANILLA,
        }


class TestCompliance:
    def test_policy_availability_consistent(self, small_dataset):
        pa = policy_availability(small_dataset)
        assert pa.with_link >= pa.downloadable >= pa.mention_amazon
        assert pa.generic == pa.downloadable - pa.mention_amazon
        assert pa.link_amazon_policy <= pa.mention_amazon

    def test_compliance_tables_populated(self, small_dataset):
        world = small_dataset.world
        analysis = analyze_compliance(
            small_dataset, world.corpus, world.org_resolver(), world.org_categories()
        )
        assert "voice recording" in analysis.datatype_table
        assert "Amazon Technologies, Inc." in analysis.endpoint_table

    def test_platform_disclosure_counts(self, small_dataset):
        world = small_dataset.world
        analysis = analyze_compliance(
            small_dataset, world.corpus, world.org_resolver(), world.org_categories()
        )
        counts = analysis.platform_disclosure_counts()
        assert sum(counts.values()) == len(
            {
                sid
                for a in small_dataset.interest_personas
                for sid in a.skill_captures
            }
        )


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "333" in table

    def test_render_kv(self):
        out = render_kv({"partners": 41, "downstream": 247})
        assert "41" in out and "downstream" in out

    def test_render_distribution_skips_empty(self):
        out = render_distribution({"a": [1.0, 2.0], "b": []})
        assert "a" in out and "\nb" not in out

    def test_format_float(self):
        assert format_float(0.12345) == "0.123"
