"""Browser profiles, cookie jars, and the client-side web universe.

Each persona gets a *fresh* browser profile (§3.1) that is logged into
the persona's Amazon account — the cross-device link that lets Echo
interactions influence web ads.  The browser records every request and
response like OpenWPM's instrumentation does; cookie-sync detection and
bid collection both work from that log.

Browsers do not transit the home router (they ran on lab machines in the
paper); the web universe is its own dispatch table of domain handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.alexa.account import AmazonAccount
from repro.netsim.endpoints import registrable_domain
from repro.netsim.faults import DEFAULT_RETRY_POLICY, FaultPlan, RetryPolicy
from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.router import NetworkError
from repro.obs.collector import NULL_OBS
from repro.util.clock import SimClock
from repro.util.ids import stable_hash

__all__ = ["CookieJar", "BrowserProfile", "Browser", "WebUniverse", "LoggedRequest"]

WebHandler = Callable[[HttpRequest], HttpResponse]

#: Redirect-chain depth guard (cookie-sync chains are short in practice).
MAX_REDIRECTS = 10


class CookieJar:
    """Per-registrable-domain cookie store."""

    def __init__(self) -> None:
        self._cookies: Dict[str, Dict[str, str]] = {}

    def set(self, domain: str, name: str, value: str) -> None:
        base = registrable_domain(domain)
        self._cookies.setdefault(base, {})[name] = value

    def get(self, domain: str) -> Dict[str, str]:
        """Cookies sent to ``domain`` (same registrable domain only)."""
        return dict(self._cookies.get(registrable_domain(domain), {}))

    def domains(self) -> List[str]:
        return sorted(self._cookies)

    def __len__(self) -> int:
        return sum(len(v) for v in self._cookies.values())


@dataclass
class BrowserProfile:
    """A fresh browser profile bound to one persona."""

    profile_id: str
    persona: str
    jar: CookieJar = field(default_factory=CookieJar)
    account: Optional[AmazonAccount] = None

    def login_amazon(self, account: AmazonAccount) -> None:
        """Log into Amazon + the Alexa companion app (§3.1.1 step 9)."""
        self.account = account
        for name, value in account.amazon_cookies.items():
            self.jar.set("amazon.com", name, value)
            self.jar.set("amazon-adsystem.com", name, value)


@dataclass(frozen=True)
class LoggedRequest:
    """One entry in the OpenWPM-style request log."""

    timestamp: float
    url: str
    method: str
    cookies_sent: Mapping[str, str]
    status: int
    set_cookies: Mapping[str, str]
    redirect_to: Optional[str]
    #: First URL of the redirect chain this request belongs to.
    chain_root: str


class WebUniverse:
    """Dispatch table for the browser-visible Internet."""

    def __init__(self) -> None:
        self._handlers: Dict[str, WebHandler] = {}

    def register(self, domain: str, handler: WebHandler) -> None:
        self._handlers[domain] = handler

    def handle(self, request: HttpRequest) -> HttpResponse:
        handler = self._handlers.get(request.host)
        if handler is None:
            return HttpResponse(status=404, body={"error": f"no site at {request.host}"})
        return handler(request)

    def __contains__(self, domain: object) -> bool:
        return domain in self._handlers


class Browser:
    """A cookie-aware, redirect-following, request-logging browser."""

    def __init__(
        self,
        profile: BrowserProfile,
        universe: WebUniverse,
        clock: SimClock,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        obs=NULL_OBS,
    ) -> None:
        self.profile = profile
        self.universe = universe
        self.clock = clock
        #: Seeded fault schedule, keyed by this profile's id — ``None``
        #: leaves the browser on a perfectly healthy network.
        self.faults = faults
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.obs = obs
        self.request_log: List[LoggedRequest] = []

    def get(self, url: str) -> HttpResponse:
        """GET a URL, following redirects and recording every hop."""
        return self._fetch(url, chain_root=url, depth=0)

    def _fetch(self, url: str, chain_root: str, depth: int) -> HttpResponse:
        if depth > MAX_REDIRECTS:
            raise RuntimeError(f"redirect loop fetching {chain_root}")
        request = HttpRequest("GET", url, cookies=self._cookies_for(url))
        response = self._dispatch(request)
        for name, value in response.set_cookies.items():
            self.profile.jar.set(request.host, name, value)
        self.request_log.append(
            LoggedRequest(
                timestamp=self.clock.now,
                url=url,
                method="GET",
                cookies_sent=request.cookies,
                status=response.status,
                set_cookies=response.set_cookies,
                redirect_to=response.redirect_url,
                chain_root=chain_root,
            )
        )
        self.clock.advance(0.02)
        if response.redirect_url is not None:
            return self._fetch(response.redirect_url, chain_root, depth + 1)
        return response

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        """Hand the request to the universe, faults and retries applied.

        Exhausted retries never raise: the hop degrades to a synthetic
        error response so the failed fetch still lands in the request log
        (OpenWPM records failed loads too) and callers checking
        ``response.ok`` degrade instead of crashing the crawl.
        """
        if self.faults is None:
            return self.universe.handle(request)

        def attempt() -> HttpResponse:
            decision = self.faults.decide(self.profile.profile_id, request.host)
            if decision is None:
                return self.universe.handle(request)
            self.obs.inc(f"web.faults.{decision.kind}")
            self.clock.advance(decision.seconds)
            if decision.kind == "slow":
                return self.universe.handle(request)
            if decision.kind == "http_5xx":
                return HttpResponse(
                    status=503,
                    headers={"x-injected-fault": "http-5xx"},
                    body={"error": f"service unavailable: {request.host}"},
                )
            reason = "NXDOMAIN" if decision.kind == "nxdomain" else "connection timed out"
            raise NetworkError(f"{reason}: {request.host} [injected fault]")

        try:
            return self.retry.call(self.clock, attempt, obs=self.obs, scope="web")
        except NetworkError:
            self.obs.inc("web.requests_failed")
            return HttpResponse(
                status=504,
                headers={"x-injected-fault": "unreachable"},
                body={"error": f"unreachable: {request.host}"},
            )

    def _cookies_for(self, url: str) -> Dict[str, str]:
        host = HttpRequest("GET", url).host
        cookies = self.profile.jar.get(host)
        if not cookies:
            # First visit to this party: mint its first-party cookie, the
            # identifier ad services use for syncing.
            cookies = {}
            self.profile.jar.set(
                host,
                "uid",
                stable_hash("uid", self.profile.profile_id, registrable_domain(host)),
            )
            cookies = self.profile.jar.get(host)
        return cookies
