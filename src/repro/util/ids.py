"""Stable identifier generation.

Simulated entities (accounts, devices, cookies, ad creatives) need unique,
reproducible identifiers.  ``IdFactory`` hands out per-namespace sequential
ids; ``stable_hash`` produces content-addressed tokens (e.g. cookie values)
that are stable across runs and platforms.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Dict

__all__ = ["IdFactory", "stable_hash"]


def stable_hash(*parts: object, length: int = 16) -> str:
    """Hex token derived from ``parts``, stable across processes.

    Used for things like simulated cookie values and ad-creative ids where
    we want opaque-looking but reproducible tokens.
    """
    if length < 1 or length > 64:
        raise ValueError(f"length must be in [1, 64], got {length}")
    material = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:length]


class IdFactory:
    """Per-namespace monotonically increasing ids, e.g. ``pkt-000042``."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def next(self, namespace: str) -> str:
        """Return the next id in ``namespace``."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return f"{namespace}-{value:06d}"

    def count(self, namespace: str) -> int:
        """How many ids have been issued in ``namespace``."""
        return self._counters[namespace]
