"""Serial vs parallel observability equivalence.

The tentpole invariant of the observability layer: the merged
simulated-time span tree of a persona-sharded parallel run is
byte-identical to the serial run's for the same seed and config, and
every persona-driven counter agrees.  Real-time fields are excluded by
construction — ``sim_tree_json()`` serialises only deterministic
simulated-clock data.
"""

import json

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.util.rng import Seed

SEED_ROOT = 2026

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


@pytest.fixture(scope="module")
def serial_obs():
    return run_campaign(TINY, Seed(SEED_ROOT)).obs


@pytest.fixture(scope="module")
def parallel_obs():
    dataset = run_campaign(
        TINY, Seed(SEED_ROOT), parallel=True, workers=4, backend="thread"
    )
    return dataset.obs


class TestSimTreeEquivalence:
    def test_sim_tree_byte_identical(self, serial_obs, parallel_obs):
        assert serial_obs.tracer.sim_tree_json() == parallel_obs.tracer.sim_tree_json()

    def test_counters_identical(self, serial_obs, parallel_obs):
        assert (
            serial_obs.metrics.as_dict()["counters"]
            == parallel_obs.metrics.as_dict()["counters"]
        )

    def test_tree_is_nonempty_and_persona_scoped(self, serial_obs):
        tree = json.loads(serial_obs.tracer.sim_tree_json())
        assert tree[0]["name"] == "campaign"
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node["children"]:
                walk(child)

        walk(tree[0])
        assert {"phase:discovery", "phase:install", "persona:install"} <= names

    def test_manifests_differ_only_in_topology(self, serial_obs, parallel_obs):
        serial = serial_obs.manifest
        parallel = parallel_obs.manifest
        assert serial.config_fingerprint == parallel.config_fingerprint
        assert serial.seed_root == parallel.seed_root == SEED_ROOT
        assert serial.entrypoint == "serial"
        assert parallel.entrypoint == "parallel"
        # Shards partition the same roster the serial run processes whole.
        serial_roster = list(serial.shards[0])
        parallel_roster = [name for shard in parallel.shards for name in shard]
        assert sorted(parallel_roster) == sorted(serial_roster)
