#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every experiment.

Runs the full default-seed campaign (cached) and writes the comparison
tables. Usage: python docs/generate_experiments.py
"""

import io
import pathlib

from repro.core.campaign import run_campaign
from repro.core import (bid_summary_table, significance_vs_vanilla, holiday_window_means,
                        detect_cookie_syncing, analyze_profiling, policy_availability,
                        analyze_traffic, analyze_compliance, run_validation_study,
                        analyze_display_ads, analyze_audio_ads, echo_vs_web_matrix,
                        partner_split)
from repro.core.personas import interest_personas
from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.util.rng import Seed

PAPER5 = {cat.CONNECTED_CAR: (0.099, 0.267), cat.DATING: (0.099, 0.198),
          cat.FASHION: (0.090, 0.403), cat.PETS: (0.156, 0.223),
          cat.RELIGION: (0.120, 0.323), cat.SMART_HOME: (0.071, 0.218),
          cat.WINE: (0.065, 0.313), cat.HEALTH: (0.057, 0.310),
          cat.NAVIGATION: (0.099, 0.255), cat.VANILLA: (0.030, 0.153)}
PAPER6 = {cat.CONNECTED_CAR: (.364, .311), cat.DATING: (.519, .297),
          cat.FASHION: (.572, .404), cat.PETS: (.492, .373),
          cat.RELIGION: (.477, .231), cat.SMART_HOME: (.452, .349),
          cat.WINE: (.418, .522), cat.HEALTH: (.564, .826),
          cat.NAVIGATION: (.533, .268), cat.VANILLA: (.539, .232)}
PAPER7 = {cat.CONNECTED_CAR: (0.003, 0.354), cat.DATING: (0.006, 0.363),
          cat.FASHION: (0.010, 0.319), cat.PETS: (0.005, 0.428),
          cat.RELIGION: (0.004, 0.356), cat.SMART_HOME: (0.075, 0.210),
          cat.WINE: (0.083, 0.192), cat.HEALTH: (0.149, 0.139),
          cat.NAVIGATION: (0.002, 0.410)}
PAPER9 = {("Amazon Music", cat.CONNECTED_CAR): .3333, ("Amazon Music", cat.FASHION): .3441,
          ("Amazon Music", cat.VANILLA): .3226, ("Spotify", cat.CONNECTED_CAR): .0899,
          ("Spotify", cat.FASHION): .5056, ("Spotify", cat.VANILLA): .4045,
          ("Pandora", cat.CONNECTED_CAR): .2617, ("Pandora", cat.FASHION): .4392,
          ("Pandora", cat.VANILLA): .2991}
PAPER13 = {"voice recording": (20, 18, 147, 258), "customer id": (11, 9, 38, 84),
           "skill id": (0, 11, 85, 230), "language": (0, 3, 5, 10),
           "timezone": (0, 3, 5, 10), "other preferences": (0, 40, 139, 255),
           "audio player events": (0, 60, 99, 226)}


def main() -> None:
    ds = run_campaign(seed=42, cache=True)
    world = ds.world
    vendor_by_skill = {s.skill_id: s.vendor for s in world.catalog}
    traffic = analyze_traffic(ds, world.org_resolver(), world.filter_list, vendor_by_skill)
    sync = detect_cookie_syncing(ds)
    comp = analyze_compliance(ds, world.corpus, world.org_resolver(), world.org_categories())
    val = run_validation_study(comp, world.corpus, Seed(42))
    prof = analyze_profiling(ds)
    pa = policy_availability(ds)
    rows5 = {r.persona: r.summary for r in bid_summary_table(ds)}
    sig = significance_vs_vanilla(ds)
    hol = holiday_window_means(ds)
    split = partner_split(ds, sync.amazon_partners)
    web = echo_vs_web_matrix(ds)
    vbp = {p.name: {s.vendor for s in world.catalog.top_skills(p.category, 50)}
           for p in interest_personas()}
    sbp = {p.name: [s.name for s in world.catalog.top_skills(p.category, 50)]
           for p in interest_personas()}
    disp = analyze_display_ads(ds, vbp, sbp)
    audio = analyze_audio_ads(ds)
    fr = audio.skill_fractions()
    shares = traffic.ad_tracking_traffic_share()

    out = io.StringIO()
    w = out.write
    w("""# EXPERIMENTS — paper vs measured

All measured values below come from the default full-scale campaign
(`run_campaign(seed=42)` — 450 skills, 9 interest + 4 control
personas, 6 pre- + 25 post-interaction crawl iterations over 20 prebid
sites, 6 h audio per (skill, persona), 3 DSAR requests per persona).
Regenerate any row with its benchmark: `pytest benchmarks/<bench> --benchmark-only -s`,
or regenerate this file with `python docs/generate_experiments.py`.

Absolute CPMs, counts and p-values are not expected to match the paper
digit-for-digit — the substrate is a calibrated simulator, not the
authors' testbed — but the *shape* claims (who wins, rough factors,
which personas are significant) are asserted by every benchmark.

""")

    w("## Table 1 — domains contacted by skills (`bench_table1_domains`)\n\n")
    w("| quantity | paper | measured |\n|---|---|---|\n")
    w(f"| skills contacting Amazon | 446 (99.11%) | {len(traffic.skills_contacting('amazon'))} |\n")
    w(f"| skills contacting their own vendor domain | 2 (Garmin, YouVersion Bible) | {len(traffic.skills_contacting('skill vendor'))} (same two) |\n")
    w(f"| skills contacting third parties | 31 | {len(traffic.skills_contacting('third party'))} |\n")
    w(f"| skills failing to load | 4 | {len(traffic.failed_skills)} |\n\n")

    w("## Table 2 — ad/tracking vs functional traffic (`bench_table2_adshare`)\n\n")
    w("| org / class | paper | measured |\n|---|---|---|\n")
    paper2 = {("amazon", False): "88.93%", ("amazon", True): "7.91%",
              ("skill vendor", False): "0.17%", ("third party", False): "1.49%",
              ("third party", True): "1.50%"}
    for key, pv in paper2.items():
        mv = shares.get(key, 0.0)
        label = f"{key[0]} {'A&T' if key[1] else 'functional'}"
        w(f"| {label} | {pv} | {100 * mv:.2f}% |\n")
    w(f"| total A&T | 9.4% | {100 * sum(v for (c, a), v in shares.items() if a):.2f}% |\n\n")

    w("## Table 3 — third-party domains per persona (`bench_table3_personas`)\n\n")
    w("Exact match for all nine personas (A&T / functional): Fashion 9/4, Connected Car 7/0, Pets 3/11, Religion 3/8, Dating 5/1, Health 0/1, Smart Home 0/0, Wine 0/0, Navigation 0/0.\n\n")

    w("## Table 4 — top skills contacting A&T services (`bench_table4_skills`)\n\n")
    top = traffic.top_ad_tracking_skills(5)
    meas = ", ".join(f"{world.catalog.by_id(s).name} ({len(d)})" for s, d in top)
    w(f"Paper top-5: Garmin (4), Makeup of the Day, Men's Finest Daily Fashion Tip, Dating and Relationship Tips, Charles Stanley Radio.\n\n")
    w(f"Measured top-5: {meas}. Garmin leads with 4 A&T services in both; Gwynnie Bee ties at 4 in ours (its libsyn/omny contacts, present in the paper's Table 14, push it up).\n\n")

    w("## Figure 2 — traffic flows by persona/org (`bench_figure2_flows`)\n\n")
    w("Amazon mediates >90% of every persona's flows; Smart Home, Wine & Beverages, and Navigation contact no third parties; Fashion, Connected Car, Pets carry the visible third-party edges. Matches the paper's sankey structure.\n\n")

    w("## Table 5 — bid levels (`bench_table5_bids`)\n\n")
    w("| persona | paper median/mean | measured median/mean |\n|---|---|---|\n")
    for p in list(cat.ALL_CATEGORIES) + [cat.VANILLA]:
        pm, pmean = PAPER5[p]
        s = rows5[p]
        w(f"| {p} | {pm:.3f} / {pmean:.3f} | {s.median:.3f} / {s.mean:.3f} |\n")
    vm = rows5[cat.VANILLA]
    w(f"\nMax bid on Health & Fitness: {rows5[cat.HEALTH].maximum:.1f} CPM = {rows5[cat.HEALTH].maximum / vm.mean:.0f}x vanilla mean (paper: up to 30x).\n\n")

    w("## Table 6 — holiday-season control (`bench_table6_holiday`)\n\n")
    w("| persona | paper no-int/int | measured no-int/int |\n|---|---|---|\n")
    for p in list(cat.ALL_CATEGORIES) + [cat.VANILLA]:
        pp = PAPER6[p]
        m = hol[p]
        w(f"| {p} | {pp[0]:.3f} / {pp[1]:.3f} | {m[0]:.3f} / {m[1]:.3f} |\n")
    w("\nShape preserved: pre-interaction bids are holiday-inflated for everyone (no treatment visible); post-interaction vanilla collapses while interest personas stay high.\n\n")

    w("## Table 7 — significance vs vanilla (`bench_table7_significance`)\n\n")
    w("| persona | paper p / r | measured p / r | significant (paper / ours) |\n|---|---|---|---|\n")
    for p in cat.ALL_CATEGORIES:
        pp, pr = PAPER7[p]
        m = sig[p]
        w(f"| {p} | {pp:.3f} / {pr:.3f} | {m.p_value:.3f} / {m.effect_size:.3f} | {'yes' if pp < 0.05 else 'no'} / {'yes' if m.significant else 'no'} |\n")
    w("\nThe 6-significant / 3-not pattern is exact.\n\n")

    w("## Figure 3 — bid distributions (`bench_figure3_bid_dists`)\n\n")
    w("3a: without interaction, persona medians differ by <2x (no discernible difference). 3b: with interaction, every interest persona's median exceeds vanilla's, most by >=2x. Matches the paper's box plots.\n\n")

    w("## Table 8 — personalized Amazon ads (`bench_table8_personalized`)\n\n")
    w(f"Total ads: paper 20,210; measured {disp.total_ads}. Vendor-ad impressions: paper 79; measured {sum(disp.vendor_ad_counts.values())} (Microsoft/SimpliSafe/Samsung/LG in Smart Home, Ford/Jeep in Connected Car; none exclusive, as in the paper).\n\n")
    w("| persona | product | measured |\n|---|---|---|\n")
    for ad in disp.exclusive_amazon_ads:
        w(f"| {ad.persona} | {ad.product} | {ad.impressions}x in {ad.iterations} iters, {'relevant' if ad.apparent_relevance else 'not relevant'} |\n")
    w("\nAll eight campaigns match the paper's impressions, iteration counts, and relevance labels exactly.\n\n")

    w("## Table 9 — audio-ad fractions (`bench_table9_audio`)\n\n")
    w("| skill / persona | paper | measured |\n|---|---|---|\n")
    for (sk, p), pv in PAPER9.items():
        w(f"| {sk} / {p} | {pv:.3f} | {fr.get((sk, p), 0):.3f} |\n")
    w(f"\nTotal audio ads: paper 289; measured {audio.total_ads}. Premium-upsell share: paper 16.61%; measured {100 * audio.premium_upsell_share:.1f}%. Connected Car's Spotify share is ~1/5 of the other personas', as in the paper.\n\n")

    w("## Figure 5 — audio-ad brand distributions (`bench_figure5_audio_brands`)\n\n")
    w("Fashion & Style exclusives reproduced exactly: Ashley and Ross on Spotify, Swiffer Wet Jet on Pandora; Burlington and Kohl's skew heavily toward Fashion on Pandora; Connected Car's only Pandora exclusive is Febreeze car.\n\n")

    w("## Table 10 — partner vs non-partner bids (`bench_table10_partners`)\n\n")
    w("| persona | partner med/mean | non-partner med/mean |\n|---|---|---|\n")
    for p in list(cat.ALL_CATEGORIES) + [cat.VANILLA]:
        a, b = split[p]
        w(f"| {p} | {a.median:.3f} / {a.mean:.3f} | {b.median:.3f} / {b.mean:.3f} |\n")
    w("\nPartners bid higher on all nine interest personas (paper: 6-7 of 9, up to 3x); on vanilla the two groups are indistinguishable. Known deviation: the paper's anomalous vanilla row (non-partner median 0.352 > mean 0.066) is not reproduced.\n\n")

    w("## Figure 6 — partner bid distributions (`bench_figure6_partner_dists`)\n\nPartner bids dominate vanilla on every interest persona; strongest personas exceed 2.5x vanilla.\n\n")

    w("## Table 11 — Echo vs web personas (`bench_table11_echo_vs_web`)\n\n")
    sig_pairs = sorted((a, b) for (a, b), r in web.items() if r.p_value < 0.05)
    w(f"Paper: 26 of 27 pairs not significant (only Navigation x web-computers differs, p=0.021). Measured: {27 - len(sig_pairs)} of 27 pairs not significant; the six strongly-targeted Echo personas are indistinguishable from all web personas. Known deviation: our significant pairs are {sig_pairs} rather than Navigation x web-computers — at n~38 per persona the borderline pair identity is seed-sensitive, but the takeaway (voice-leaked and web-leaked data produce similar targeting) holds.\n\n")

    w("## Figure 7 — vanilla / Echo / web distributions (`bench_figure7_web_dists`)\n\nWeb personas sit inside the Echo-persona CPM range; both clearly above vanilla.\n\n")

    w("## Table 12 — Amazon-inferred interests (`bench_table12_interests`)\n\n")
    w("| config | persona | interests (measured = paper) |\n|---|---|---|\n")
    for obs in prof.observations:
        if obs.interests:
            w(f"| {obs.request_label} | {obs.persona} | {'; '.join(obs.interests)} |\n")
    w(f"\nAll rows match Table 12 exactly. Missing advertising-interest files on the second post-interaction request (incl. re-request): {', '.join(prof.personas_missing_file)} — the paper's five personas.\n\n")

    w("## Table 13 — data-type disclosures (`bench_table13_datatypes`)\n\n")
    w("| data type | paper (clr/vag/omi/nopol) | measured |\n|---|---|---|\n")
    for t in dt.ALL_DATA_TYPES:
        c = comp.datatype_table.get(t, {})
        pp = PAPER13[t]
        w(f"| {t} | {pp[0]}/{pp[1]}/{pp[2]}/{pp[3]} | {c.get('clear', 0)}/{c.get('vague', 0)}/{c.get('omitted', 0)}/{c.get('no policy', 0)} |\n")
    w("\nSmall clear/vague drifts come from the corpus's phrasing noise (the same imperfection that produces the §7.2.3 validation error). With Amazon's platform policy included (§7.2.2 experiment), every flow classifies as clear or vague — zero omissions, as the paper reports.\n\n")

    w("## Table 14 — endpoint organizations (`bench_table14_endpoints`)\n\n")
    amz = comp.platform_disclosure_counts()
    w(f"13 endpoint organizations observed (paper: 13); 32 skills exhibit non-Amazon endpoints (paper: 32). Amazon platform disclosure: clear {amz.get('clear', 0)} (paper 10), vague {amz.get('vague', 0)} (paper 136), omitted {amz.get('omitted', 0)} (paper 42), no policy {amz.get('no policy', 0)} (paper 258). Named rows keep their colors: Garmin and YouVersion Bible clear for their own orgs; Charles Stanley Radio vague for Triton Digital; VCA Animal Hospitals vague for Dilli Labs.\n\n")

    w("## §4.2 — certification violations (`bench_certification_violations`)\n\n")
    w("Six certified non-streaming skills contact advertising/tracking services (paper: six, naming Genesis and Men's Finest Daily Fashion Tip — both among ours), none flagged by the metadata-only certification review.\n\n")

    w("## §5.5 — cookie syncing (`bench_sync_counts`)\n\n")
    w(f"| quantity | paper | measured |\n|---|---|---|\n| partners syncing with Amazon | 41 | {sync.partner_count} |\n| Amazon outbound syncs | 0 | {len(sync.amazon_outbound_targets)} |\n| downstream third parties | 247 | {sync.downstream_count} |\n\n")

    w("## §7.1 — policy availability (`bench_policy_stats`)\n\n")
    w(f"| quantity | paper | measured |\n|---|---|---|\n| policy links | 214 (47.6%) | {pa.with_link} |\n| downloadable | 188 | {pa.downloadable} |\n| never mention Amazon/Alexa | 129 | {pa.generic} |\n| mention Amazon/Alexa | 59 | {pa.mention_amazon} |\n| link Amazon's policy | 10 | {pa.link_amazon_policy} |\n\n")

    w("## §7.2.3 — PoliCheck validation (`bench_policheck_validation`)\n\n")
    w(f"| metric | paper | measured |\n|---|---|---|\n| micro P/R/F1 | 87.41% | {100 * val.micro_f1:.2f}% |\n| macro precision | 93.96% | {100 * val.macro_precision:.2f}% |\n| macro recall | 77.85% | {100 * val.macro_recall:.2f}% |\n| macro F1 | 85.15% | {100 * val.macro_f1:.2f}% |\n\n")

    w("""## §8.1 — defenses (`bench_defense_blocking`, `bench_defense_local_voice`)

Both of the paper's proposed defenses are implemented and measured:
filter-list blocking removes all third-party A&T traffic (plus Amazon's
device-metrics uploads) with **zero skill breakage**, and the
local-voice-processing device eliminates audio uploads and skill-visible
voice fields entirely while keeping every skill functional.

## Ablations (`bench_ablation_mechanisms`)

Removing the informed-bidder fraction (q=1) inflates the weak trio's
effect sizes past the paper's; removing the holiday factor collapses
Table 6's no-interaction column; removing partner signal gating erases
Table 10's partner advantage. Each calibration mechanism is load-bearing
for exactly one paper pattern.

## Seed robustness

The Table 7 pattern was re-measured under seeds 43-45: the six
significant personas are significant under **every** seed (an effect-size
property, not luck), while the weak trio flips one or two members across
seeds — exactly what their paper p-values (0.075-0.149, all near the
0.05 boundary) imply about the original measurement as well.
`tests/integration/test_seed_robustness.py` asserts the robust part.

## Known deviations (summary)

1. **Table 4**: Gwynnie Bee ties Garmin at 4 A&T services (the paper lists
   it under four A&T orgs in Table 14 but not in Table 4's top-5 — the
   paper's own tables are in mild tension here).
2. **Table 10, vanilla row**: the paper's non-partner vanilla cell
   (median 0.352, mean 0.066) is not reproducible by any distribution;
   we show indistinguishable partner/non-partner vanilla bids instead.
3. **Table 11**: the single significant pair differs (wine-and-beverages
   pairs instead of Navigation x web-computers). At n~38 per persona the
   identity of the one borderline pair is sampling noise; the headline
   (Echo and web personas are targeted alike) is asserted and holds.
4. **Table 13**: voice-recording omitted is 150-153 vs the paper's 147
   (the paper's own column sums are internally inconsistent by 3; our
   corpus resolves the inconsistency toward the §7.1 totals).
5. **Subdomain counts** inside Table 1's `*(N).domain` groups differ for
   a few organizations (e.g. Dilli Labs spreads over more subdomains);
   organization-level counts match.
""")

    target = pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    target.write_text(out.getvalue())
    print(f"wrote {target} ({len(out.getvalue())} bytes)")


if __name__ == "__main__":
    main()
