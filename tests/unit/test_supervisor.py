"""Unit tests for the shard supervisor and worker-level fault injection.

The supervisor is exercised against a stub shard function (no real
campaign) so every recovery path — crash requeue, hung-worker reaping,
poison quarantine, degrade accounting — runs in milliseconds.
"""

import pickle
import time

import pytest

from repro.core.checkpoint import ShardJournal
from repro.core.parallel import (
    ON_SHARD_FAILURE,
    WORKER_FAULT_KINDS,
    ShardFailure,
    SupervisorPolicy,
    SupervisorReport,
    WorkerFaultPlan,
    _ShardSupervisor,
)
from repro.util.rng import Seed

PLAN = [["a", "b"], ["c"], ["d", "e"]]


def _stub_shard(shard_index, seed, config, persona_names, collect_obs):
    """Module-level so the process backend can pickle it."""
    return f"result-{shard_index}"


def _slow_stub_shard(shard_index, seed, config, persona_names, collect_obs):
    time.sleep(0.2)
    return f"result-{shard_index}"


def _supervisor(tmp_path, policy, backend="thread", shard_fn=_stub_shard):
    journal = ShardJournal(tmp_path, 2026, "abc123", PLAN)
    return (
        _ShardSupervisor(
            journal,
            Seed(2026),
            None,  # config is opaque to the supervisor; the stub ignores it
            backend,
            False,
            policy,
            shard_fn=shard_fn,
        ),
        journal,
    )


class TestHealthyRuns:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_all_shards_complete(self, tmp_path, backend):
        supervisor, journal = _supervisor(
            tmp_path, SupervisorPolicy(), backend=backend
        )
        results, report = supervisor.run()
        assert results == {0: "result-0", 1: "result-1", 2: "result-2"}
        assert report.attempts == {0: ["ok"], 1: ["ok"], 2: ["ok"]}
        assert report.retries == 0
        assert report.failed_shards == ()
        assert journal.read_manifest()["status"] == "complete"

    def test_preloaded_shards_are_not_recomputed(self, tmp_path):
        policy = SupervisorPolicy()
        supervisor, _ = _supervisor(tmp_path, policy)
        results, report = supervisor.run(preloaded={0: "checkpointed-0"})
        assert results[0] == "checkpointed-0"
        assert report.attempts[0] == ["checkpoint"]
        assert report.resumed_shards == (0,)
        assert report.retries == 0  # checkpoint loads are not attempts


class TestCrashRecovery:
    def test_injected_crash_is_retried(self, tmp_path):
        policy = SupervisorPolicy(
            worker_faults=WorkerFaultPlan.targeted({(1, 1): "crash"})
        )
        supervisor, journal = _supervisor(tmp_path, policy)
        results, report = supervisor.run()
        assert results[1] == "result-1"
        assert report.attempts[1] == ["crash", "ok"]
        assert report.retries == 1
        assert journal.read_manifest()["status"] == "complete"

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        schedule = {(1, attempt): "crash" for attempt in (1, 2)}
        policy = SupervisorPolicy(
            max_shard_retries=1,
            worker_faults=WorkerFaultPlan.targeted(schedule),
        )
        supervisor, journal = _supervisor(tmp_path, policy)
        with pytest.raises(ShardFailure) as excinfo:
            supervisor.run()
        assert excinfo.value.shard_index == 1
        assert excinfo.value.outcomes == ("crash", "crash")
        assert journal.read_manifest()["status"] == "failed"

    def test_raise_policy_propagates_first_failure(self, tmp_path):
        policy = SupervisorPolicy(
            on_shard_failure="raise",
            worker_faults=WorkerFaultPlan.targeted({(0, 1): "crash"}),
        )
        supervisor, _ = _supervisor(tmp_path, policy)
        with pytest.raises(ShardFailure) as excinfo:
            supervisor.run()
        assert excinfo.value.outcomes == ("crash",)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_real_worker_exception_is_a_crash(self, tmp_path, backend):
        supervisor, journal = _supervisor(
            tmp_path,
            SupervisorPolicy(max_shard_retries=0),
            backend=backend,
            shard_fn=_exploding_stub,
        )
        with pytest.raises(ShardFailure, match="exploded"):
            supervisor.run()
        # The worker's traceback landed in the journal's error record.
        assert any(
            journal.read_error(i) and "exploded" in journal.read_error(i)
            for i in range(len(PLAN))
        )


def _exploding_stub(shard_index, seed, config, persona_names, collect_obs):
    raise RuntimeError("worker exploded")


class TestDegrade:
    def test_exhausted_shard_is_dropped_and_accounted(self, tmp_path):
        schedule = {(2, attempt): "crash" for attempt in (1, 2, 3)}
        policy = SupervisorPolicy(
            on_shard_failure="degrade",
            worker_faults=WorkerFaultPlan.targeted(schedule),
        )
        supervisor, journal = _supervisor(tmp_path, policy)
        results, report = supervisor.run()
        assert sorted(results) == [0, 1]
        assert report.failed_shards == (2,)
        assert report.missing_personas == ("d", "e")
        manifest = journal.read_manifest()
        assert manifest["status"] == "partial"
        assert manifest["missing_personas"] == ["d", "e"]
        assert manifest["attempts"]["2"] == ["crash", "crash", "crash"]


class TestWatchdog:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_hung_worker_is_reaped_and_retried(self, tmp_path, backend):
        policy = SupervisorPolicy(
            shard_timeout=1.5,
            worker_faults=WorkerFaultPlan.targeted(
                {(1, 1): "hang"}, hang_seconds=3600
            ),
        )
        supervisor, _ = _supervisor(tmp_path, policy, backend=backend)
        started = time.monotonic()
        results, report = supervisor.run()
        elapsed = time.monotonic() - started
        assert results[1] == "result-1"
        assert report.attempts[1] == ["hang", "ok"]
        # Reaped by the wall-clock watchdog, not by the hang expiring.
        assert elapsed < 60

    def test_watchdog_leaves_slow_but_live_workers_alone(self, tmp_path):
        policy = SupervisorPolicy(shard_timeout=30.0)
        supervisor, _ = _supervisor(
            tmp_path, policy, shard_fn=_slow_stub_shard
        )
        results, report = supervisor.run()
        assert len(results) == len(PLAN)
        assert all(outcomes == ["ok"] for outcomes in report.attempts.values())


class TestPoison:
    def test_poisoned_result_is_quarantined_and_retried(self, tmp_path):
        policy = SupervisorPolicy(
            worker_faults=WorkerFaultPlan.targeted({(0, 1): "poison"})
        )
        supervisor, journal = _supervisor(tmp_path, policy)
        results, report = supervisor.run()
        assert results[0] == "result-0"
        assert report.attempts[0] == ["poison", "ok"]
        quarantined = journal.shard_path(0).with_name(
            journal.shard_path(0).name + ".corrupt"
        )
        assert quarantined.is_file()  # evidence preserved for post-mortem


class TestWorkerFaultPlan:
    def test_rate_draws_are_deterministic(self):
        def draws(plan):
            return [plan.decide(s, a) for s in range(8) for a in (1, 2)]

        make = lambda: WorkerFaultPlan(
            Seed(7), crash_rate=0.3, hang_rate=0.2, poison_rate=0.1
        )
        assert draws(make()) == draws(make())

    def test_draws_survive_pickling(self):
        plan = WorkerFaultPlan(Seed(7), crash_rate=0.5)
        clone = pickle.loads(pickle.dumps(plan))
        assert [plan.decide(s, 1) for s in range(8)] == [
            clone.decide(s, 1) for s in range(8)
        ]

    def test_draws_are_keyed_not_sequential(self):
        """(shard, attempt) keying: decision order must not matter."""
        forward = {
            (s, a): d.kind if (d := WorkerFaultPlan(
                Seed(7), crash_rate=0.4, hang_rate=0.3
            ).decide(s, a)) else None
            for s in range(4)
            for a in (1, 2)
        }
        plan = WorkerFaultPlan(Seed(7), crash_rate=0.4, hang_rate=0.3)
        backward = {}
        for s in reversed(range(4)):
            for a in (2, 1):
                decision = plan.decide(s, a)
                backward[(s, a)] = decision.kind if decision else None
        assert forward == backward

    def test_targeted_schedule_is_exact(self):
        plan = WorkerFaultPlan.targeted({(2, 1): "hang"})
        assert plan.decide(2, 1).kind == "hang"
        assert plan.decide(2, 2) is None
        assert plan.decide(0, 1) is None
        assert plan.enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            WorkerFaultPlan(Seed(1), crash_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            WorkerFaultPlan(Seed(1), crash_rate=0.6, hang_rate=0.6)
        with pytest.raises(ValueError, match="seed"):
            WorkerFaultPlan(crash_rate=0.5)
        with pytest.raises(ValueError, match="hang_seconds"):
            WorkerFaultPlan(Seed(1), hang_seconds=0)
        with pytest.raises(ValueError, match="kind"):
            WorkerFaultPlan.targeted({(0, 1): "meltdown"})
        assert not WorkerFaultPlan(Seed(1)).enabled

    def test_kind_order_is_sealed(self):
        """The draw partition order is part of the deterministic contract."""
        assert WORKER_FAULT_KINDS == ("crash", "hang", "poison")


class TestPolicyValidation:
    def test_policies_sealed(self):
        assert ON_SHARD_FAILURE == ("retry", "degrade", "raise")

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="on_shard_failure"):
            SupervisorPolicy(on_shard_failure="panic")
        with pytest.raises(ValueError, match="shard_timeout"):
            SupervisorPolicy(shard_timeout=0)
        with pytest.raises(ValueError, match="max_shard_retries"):
            SupervisorPolicy(max_shard_retries=-1)
        with pytest.raises(ValueError, match="poll_interval"):
            SupervisorPolicy(poll_interval=0)


class TestSupervisorReport:
    def test_retries_counts_beyond_first_attempt(self):
        report = SupervisorReport(
            attempts={
                0: ["ok"],
                1: ["crash", "hang", "ok"],
                2: ["checkpoint"],
            }
        )
        assert report.retries == 2
        assert report.outcome_count("crash") == 1
        assert report.outcome_count("hang") == 1
        assert report.outcome_count("ok") == 2
