"""Unit tests for CampaignSpec (repro.core.campaign): the serializable
campaign description shared by the Python API, the CLI, and the HTTP
service."""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.campaign import (
    SPEC_SCHEMA_VERSION,
    STORES,
    CampaignSpec,
    execute_spec,
    run_campaign,
)
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        spec = CampaignSpec(
            config=TINY, seed=7, parallel=True, workers=3, backend="thread",
            on_shard_failure="degrade", shard_timeout=12.5,
            checkpoint_dir="/tmp/ckpt", resume=True,
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_round_trip_defaults(self):
        spec = CampaignSpec()
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_round_trip_segments(self):
        spec = CampaignSpec(
            config=TINY, store="segments", store_dir="seg", batch_personas=4
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_carries_schema_version(self):
        assert CampaignSpec().to_dict()["schema"] == SPEC_SCHEMA_VERSION

    def test_config_survives_as_experiment_config(self):
        restored = CampaignSpec.from_json(CampaignSpec(config=TINY).to_json())
        assert isinstance(restored.config, ExperimentConfig)
        assert restored.config == TINY

    def test_replace_revalidates(self):
        spec = CampaignSpec(config=TINY)
        assert spec.replace(seed=9).seed == 9
        with pytest.raises(ValueError, match="workers requires parallel"):
            spec.replace(workers=4)


class TestFingerprint:
    def test_equal_specs_fingerprint_equal(self):
        a = CampaignSpec(config=TINY, seed=5)
        b = CampaignSpec.from_json(a.to_json())
        assert a.fingerprint() == b.fingerprint()

    def test_any_field_changes_fingerprint(self):
        base = CampaignSpec(config=TINY, seed=5)
        assert base.fingerprint() != base.replace(seed=6).fingerprint()
        assert (
            base.fingerprint()
            != base.replace(config=dataclasses.replace(TINY, crawl_sites=3)).fingerprint()
        )

    def test_fingerprint_stable_across_processes(self):
        """The service uses fingerprints as cross-process job identity."""
        spec = CampaignSpec(config=TINY, seed=11, parallel=True, workers=2)
        script = (
            "import sys, json\n"
            "from repro.core.campaign import CampaignSpec\n"
            "print(CampaignSpec.from_json(sys.stdin.read()).fingerprint())\n"
        )
        import os

        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH=str(src)),
            check=True,
        )
        assert result.stdout.strip() == spec.fingerprint()


class TestValidation:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            CampaignSpec(config=TINY, parallel=True, backend="gpu")

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            CampaignSpec(config=TINY, parallel=True, workers=-1)

    def test_rejects_workers_without_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            CampaignSpec(config=TINY, workers=2)

    def test_rejects_bad_store(self):
        with pytest.raises(ValueError, match=str(STORES)[1:8]):
            CampaignSpec(config=TINY, store="tape")

    def test_rejects_supervisor_knobs_without_parallel(self):
        with pytest.raises(ValueError, match="parallel=True"):
            CampaignSpec(config=TINY, checkpoint_dir="x")
        with pytest.raises(ValueError, match="parallel=True"):
            CampaignSpec(config=TINY, shard_timeout=5.0)

    def test_rejects_cache_with_parallel(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            CampaignSpec(config=TINY, parallel=True, cache="c")

    def test_rejects_cache_for_segments(self):
        with pytest.raises(ValueError, match="segments"):
            CampaignSpec(config=TINY, store="segments", cache="c")

    def test_rejects_batch_personas_for_memory(self):
        with pytest.raises(ValueError, match="batch_personas"):
            CampaignSpec(config=TINY, batch_personas=2)

    def test_rejects_unknown_top_level_field(self):
        payload = CampaignSpec(config=TINY).to_dict()
        payload["wrokers"] = 4
        with pytest.raises(ValueError, match="unknown campaign spec fields"):
            CampaignSpec.from_dict(payload)

    def test_rejects_unknown_config_field(self):
        payload = CampaignSpec(config=TINY).to_dict()
        payload["config"]["skillz"] = 1
        with pytest.raises(ValueError, match="unknown config fields"):
            CampaignSpec.from_dict(payload)

    def test_rejects_foreign_schema(self):
        payload = CampaignSpec(config=TINY).to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            CampaignSpec.from_dict(payload)

    def test_rejects_invalid_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")

    def test_rejects_path_objects_in_spec(self):
        with pytest.raises(TypeError, match="string path"):
            CampaignSpec(
                config=TINY, parallel=True, checkpoint_dir=Path("x")  # type: ignore[arg-type]
            )


class TestSpecExecution:
    def test_spec_form_rejects_extra_kwargs(self):
        spec = CampaignSpec(config=TINY)
        with pytest.raises(TypeError, match="replace"):
            run_campaign(spec, parallel=True)
        with pytest.raises(TypeError, match="replace"):
            run_campaign(spec, 7)

    def test_spec_and_kwargs_forms_export_identically(self, tmp_path):
        spec = CampaignSpec(config=TINY, seed=31)
        counts, _ = execute_spec(spec, tmp_path / "spec")
        kwargs_dataset = run_campaign(TINY, 31)
        from repro.core.export import export_dataset

        kwargs_counts = export_dataset(kwargs_dataset, tmp_path / "kwargs")
        assert counts == kwargs_counts
        for name in EXPORT_FILES:
            assert (tmp_path / "spec" / name).read_bytes() == (
                tmp_path / "kwargs" / name
            ).read_bytes()

    def test_run_campaign_spec_returns_dataset_with_manifest(self):
        dataset = run_campaign(CampaignSpec(config=TINY, seed=13))
        assert dataset.obs is not None
        assert dataset.obs.manifest.entrypoint == "serial"
        assert dataset.obs.manifest.seed_root == 13

    def test_execute_spec_defaults_segment_store_dir(self, tmp_path):
        spec = CampaignSpec(config=TINY, seed=17, store="segments")
        counts, store = execute_spec(spec, tmp_path / "out")
        assert set(counts) == set(EXPORT_FILES)
        assert store.root == tmp_path / "out" / "_segments"
        assert store.status() == "complete"

    def test_segments_without_store_dir_needs_execute_spec(self):
        spec = CampaignSpec(config=TINY, store="segments")
        with pytest.raises(ValueError, match="execute_spec"):
            run_campaign(spec)
