"""Tests for bidders, the exchange world, prebid sessions, and the ad server."""

import datetime as dt
import statistics

import pytest

from repro.adtech.ads import AdServer
from repro.adtech.bidder import AuctionContext, Bidder
from repro.adtech.exchange import BIDDERS_PER_SLOT, AdTechWorld
from repro.adtech.prebid import PrebidSession, register_publisher, slot_id
from repro.data import categories as cat
from repro.data.calibration import N_NON_PARTNERS, N_PARTNERS, bid_params
from repro.data.websites import WebsiteSpec
from repro.util.clock import SimClock
from repro.util.rng import Seed
from repro.web.browser import Browser, BrowserProfile, WebUniverse

UTC = dt.timezone.utc
JAN = dt.datetime(2022, 1, 10, tzinfo=UTC)  # outside the holiday window
DEC_PEAK = dt.datetime(2021, 12, 21, tzinfo=UTC)


def make_context(persona, interacted=True, when=JAN, iteration=0, slot="s1"):
    return AuctionContext(
        persona=persona, interacted=interacted, when=when, slot_id=slot, iteration=iteration
    )


def sample_bids(bidder, persona, n=400, **kwargs):
    return [
        bidder.compute_bid(make_context(persona, iteration=i, **kwargs))
        for i in range(n)
    ]


class TestBidder:
    @pytest.fixture
    def partner(self):
        return Bidder("dsp00", "ib.dsp00.x.com", is_partner=True, seed=Seed(3))

    @pytest.fixture
    def non_partner(self):
        return Bidder("ndsp00", "ib.ndsp00.x.com", is_partner=False, seed=Seed(3))

    def test_deterministic_per_context(self, partner):
        a = partner.compute_bid(make_context(cat.FASHION))
        b = partner.compute_bid(make_context(cat.FASHION))
        assert a == b

    def test_varies_across_iterations(self, partner):
        bids = sample_bids(partner, cat.FASHION, n=10)
        assert len(set(bids)) > 1

    def test_interest_uplift_after_interaction(self, partner):
        interest = sample_bids(partner, cat.NAVIGATION, interacted=True)
        baseline = sample_bids(partner, cat.NAVIGATION, interacted=False)
        assert statistics.median(interest) > 2 * statistics.median(baseline)

    def test_vanilla_never_uplifted(self, partner):
        bids = sample_bids(partner, cat.VANILLA, interacted=True)
        expected = bid_params(cat.VANILLA).median
        assert statistics.median(bids) == pytest.approx(expected, rel=0.4)

    def test_non_partner_weaker_signal(self, partner, non_partner):
        p = sample_bids(partner, cat.PETS)
        np_ = sample_bids(non_partner, cat.PETS)
        assert statistics.median(p) > statistics.median(np_)

    def test_holiday_multiplier(self, partner):
        january = sample_bids(partner, cat.VANILLA, when=JAN)
        december = sample_bids(partner, cat.VANILLA, when=DEC_PEAK)
        ratio = statistics.median(december) / statistics.median(january)
        assert 2.5 < ratio < 4.5

    def test_web_persona_signal_not_partner_gated(self, partner, non_partner):
        p = statistics.median(sample_bids(partner, cat.WEB_HEALTH))
        np_ = statistics.median(sample_bids(non_partner, cat.WEB_HEALTH))
        # Web tracking reaches both groups: medians within 2x.
        assert 0.5 < p / np_ < 2.0


@pytest.fixture
def web_rig():
    seed = Seed(21)
    universe = WebUniverse()
    adtech = AdTechWorld(seed, universe)
    clock = SimClock()
    profile = BrowserProfile("prof-x", cat.FASHION)
    adtech.register_profile(profile)
    browser = Browser(profile, universe, clock)
    site = WebsiteSpec(
        domain="pub.example.com",
        rank=1,
        supports_prebid=True,
        prebid_version="6.18.0",
        ad_slots=3,
    )
    register_publisher(site, universe)
    return seed, universe, adtech, browser, site


class TestAdTechWorld:
    def test_population_counts(self, web_rig):
        _, _, adtech, *_ = web_rig
        partners = [b for b in adtech.bidders if b.is_partner]
        assert len(partners) == N_PARTNERS
        assert len(adtech.bidders) == N_PARTNERS + N_NON_PARTNERS

    def test_downstream_coverage(self, web_rig):
        _, _, adtech, *_ = web_rig
        assert len(adtech.downstream_domains) == 247
        covered = set()
        for domains in adtech._downstream_by_partner.values():
            covered.update(domains)
        assert covered == set(adtech.downstream_domains)

    def test_bidders_for_slot_stable(self, web_rig):
        _, _, adtech, *_ = web_rig
        a = adtech.bidders_for_slot("slot-a")
        b = adtech.bidders_for_slot("slot-a")
        assert [x.code for x in a] == [x.code for x in b]
        assert len(a) == BIDDERS_PER_SLOT

    def test_slot_loading_stable_per_persona(self, web_rig):
        _, _, adtech, *_ = web_rig
        results = {adtech.slot_loads("s-1", "p") for _ in range(5)}
        assert len(results) == 1

    def test_interacted_flag_roundtrip(self, web_rig):
        _, _, adtech, *_ = web_rig
        assert not adtech.is_interacted("prof-x")
        adtech.set_interacted("prof-x", True)
        assert adtech.is_interacted("prof-x")


class TestPrebidSession:
    def test_version_probe(self, web_rig):
        _, _, adtech, browser, site = web_rig
        session = PrebidSession(site, browser, adtech, iteration=0)
        assert session.version() == "6.18.0"

    def test_no_prebid_site_probes_none(self, web_rig):
        _, universe, adtech, browser, _ = web_rig
        plain = WebsiteSpec(
            domain="plain.example.com",
            rank=2,
            supports_prebid=False,
            prebid_version="",
            ad_slots=0,
        )
        register_publisher(plain, universe)
        session = PrebidSession(plain, browser, adtech, iteration=0)
        assert session.version() is None

    def test_request_bids_returns_per_slot(self, web_rig):
        _, _, adtech, browser, site = web_rig
        session = PrebidSession(site, browser, adtech, iteration=0)
        bids = session.request_bids()
        assert bids
        for unit, responses in bids.items():
            assert unit.startswith(site.domain)
            assert all(r.cpm > 0 for r in responses)

    def test_get_before_request_empty(self, web_rig):
        _, _, adtech, browser, site = web_rig
        session = PrebidSession(site, browser, adtech, iteration=0)
        assert session.get_bid_responses() == {}

    def test_request_bids_idempotent(self, web_rig):
        _, _, adtech, browser, site = web_rig
        session = PrebidSession(site, browser, adtech, iteration=0)
        first = session.request_bids()
        second = session.request_bids()
        assert first == second

    def test_sync_pixels_fired_once_per_uid(self, web_rig):
        _, _, adtech, browser, site = web_rig
        session = PrebidSession(site, browser, adtech, iteration=0)
        session.request_bids()
        first_count = sum(
            1 for r in browser.request_log if "amazon-adsystem" in r.url
        )
        assert first_count > 0
        session2 = PrebidSession(site, browser, adtech, iteration=1)
        session2.request_bids()
        second_count = sum(
            1 for r in browser.request_log if "amazon-adsystem" in r.url
        )
        assert second_count == first_count  # no re-syncs

    def test_amazon_sync_redirects_back_to_partner(self, web_rig):
        _, _, adtech, browser, site = web_rig
        PrebidSession(site, browser, adtech, iteration=0).request_bids()
        syncs = [r for r in browser.request_log if "amazon-adsystem" in r.url]
        assert all(r.redirect_to and "cm-confirm" in r.redirect_to for r in syncs)


class TestAdServer:
    def test_house_schedule_counts_match_campaigns(self):
        server = AdServer(Seed(5))
        from repro.data.calibration import AMAZON_HOUSE_CAMPAIGNS

        for campaign in AMAZON_HOUSE_CAMPAIGNS:
            scheduled = sum(
                pending.count(campaign)
                for (persona, _), pending in server._house_schedule.items()
                if persona == campaign.target_persona
            )
            assert scheduled == campaign.impressions

    def test_house_ads_only_for_target_persona(self):
        server = AdServer(Seed(5))
        creative = server.select(
            cat.HEALTH, iteration=0, slot_id="s", slot_index=0, interacted=True
        )
        # Whatever the creative, non-target personas never get HEALTH's
        # scheduled campaigns at the same (iteration, index).
        other = server.select(
            cat.DATING, iteration=0, slot_id="s", slot_index=0, interacted=True
        )
        if creative.source == "amazon-house":
            assert other.creative_id != creative.creative_id

    def test_no_house_ads_before_interaction(self):
        server = AdServer(Seed(5))
        for i in range(40):
            creative = server.select(
                cat.HEALTH, iteration=0, slot_id=f"s{i}", slot_index=i, interacted=False
            )
            assert creative.source != "amazon-house"

    def test_generic_fill_deterministic(self):
        a = AdServer(Seed(5)).select(cat.DATING, 3, "slot-z", 10, True)
        b = AdServer(Seed(5)).select(cat.DATING, 3, "slot-z", 10, True)
        assert a.creative_id == b.creative_id
