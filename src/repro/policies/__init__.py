"""Privacy policies: corpus generation and PoliCheck consistency analysis."""

from repro.policies.corpus import (
    AMAZON_POLICY_TEXT,
    PHRASING_NOISE_RATE,
    PolicyCorpus,
    PolicyDocument,
    build_corpus,
)

__all__ = [
    "AMAZON_POLICY_TEXT",
    "PHRASING_NOISE_RATE",
    "PolicyCorpus",
    "PolicyDocument",
    "build_corpus",
]
