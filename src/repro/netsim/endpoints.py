"""Endpoint registry: the simulated Internet's address book.

Every remote service a device can talk to is an :class:`Endpoint` with a
domain name and a deterministic IP address.  The registry doubles as the
authoritative DNS zone for :class:`~repro.netsim.dns.DnsServer`.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.util.ids import stable_hash

__all__ = ["Endpoint", "EndpointRegistry"]


@dataclass(frozen=True)
class Endpoint:
    """A remote network service.

    Attributes
    ----------
    domain:
        Fully qualified domain name, e.g. ``device-metrics-us-2.amazon.com``.
    ip:
        Deterministically assigned IPv4 address.
    organization:
        Owning organization name (ground truth; auditors must *infer* this
        via :mod:`repro.orgmap`, they never read it from here).
    category:
        Functional category: ``functional``, ``advertising``, ``tracking``,
        ``cdn``, ``content`` — ground truth used to seed the world, again
        inferred independently by the auditor via filter lists.
    port:
        Default TCP port.
    """

    domain: str
    ip: str
    organization: str
    category: str = "functional"
    port: int = 443

    def __post_init__(self) -> None:
        if not self.domain or "." not in self.domain:
            raise ValueError(f"invalid domain: {self.domain!r}")
        ipaddress.ip_address(self.ip)  # raises on malformed input

    @property
    def base_domain(self) -> str:
        """Registrable domain (eTLD+1), approximated as the last two labels.

        The simulation's domains all use two-label registrable suffixes
        except a small set of known multi-label suffixes handled here.
        """
        return registrable_domain(self.domain)


_MULTI_LABEL_SUFFIXES = {
    "co.uk",
    "com.au",
    "a2z.com",  # alexa.a2z.com-style Amazon internal zone, per Table 1
}


def registrable_domain(domain: str) -> str:
    """Best-effort eTLD+1 for the simulation's domain universe."""
    labels = domain.lower().rstrip(".").split(".")
    if len(labels) <= 2:
        return ".".join(labels)
    last_two = ".".join(labels[-2:])
    if last_two in _MULTI_LABEL_SUFFIXES and len(labels) >= 3:
        return ".".join(labels[-3:])
    return last_two


@dataclass
class EndpointRegistry:
    """Registry of all endpoints in the simulated Internet."""

    _by_domain: Dict[str, Endpoint] = field(default_factory=dict)
    _by_ip: Dict[str, Endpoint] = field(default_factory=dict)

    def register(
        self,
        domain: str,
        organization: str,
        category: str = "functional",
        port: int = 443,
    ) -> Endpoint:
        """Create (or return the existing) endpoint for ``domain``.

        IPs are content-addressed from the domain name so the same world is
        rebuilt identically regardless of registration order.
        """
        existing = self._by_domain.get(domain)
        if existing is not None:
            if existing.organization != organization:
                raise ValueError(
                    f"domain {domain} already registered to {existing.organization}, "
                    f"cannot re-register to {organization}"
                )
            return existing
        endpoint = Endpoint(
            domain=domain,
            ip=self._derive_ip(domain),
            organization=organization,
            category=category,
            port=port,
        )
        self._by_domain[domain] = endpoint
        self._by_ip[endpoint.ip] = endpoint
        return endpoint

    def _derive_ip(self, domain: str) -> str:
        """Deterministic public IPv4 for a domain, collision-checked."""
        for salt in range(256):
            token = stable_hash("endpoint-ip", domain, salt, length=8)
            raw = int(token, 16)
            # Map into 100.64.0.0/10-adjacent public-looking space, avoiding
            # the router's own 192.168.7.0/24 LAN.
            octets = (
                52 + (raw >> 24) % 150,
                (raw >> 16) % 256,
                (raw >> 8) % 256,
                1 + raw % 254,
            )
            candidate = ".".join(str(o) for o in octets)
            if candidate not in self._by_ip:
                return candidate
        raise RuntimeError(f"could not derive unique IP for {domain}")

    def lookup_domain(self, domain: str) -> Optional[Endpoint]:
        return self._by_domain.get(domain)

    def lookup_ip(self, ip: str) -> Optional[Endpoint]:
        return self._by_ip.get(ip)

    def require(self, domain: str) -> Endpoint:
        """Like :meth:`lookup_domain` but raises when absent."""
        endpoint = self._by_domain.get(domain)
        if endpoint is None:
            raise KeyError(f"no such endpoint: {domain}")
        return endpoint

    def __iter__(self) -> Iterator[Endpoint]:
        return iter(self._by_domain.values())

    def __len__(self) -> int:
        return len(self._by_domain)

    def __contains__(self, domain: object) -> bool:
        return domain in self._by_domain
