"""Table 12: advertising interests inferred by Amazon per persona, across
the three DSAR requests."""

from repro.core.profiling import analyze_profiling
from repro.core.report import render_table
from repro.data import categories as cat


def bench_table12_interests(benchmark, dataset):
    analysis = benchmark(analyze_profiling, dataset)

    rows = []
    for obs in analysis.observations:
        if obs.interests:
            rows.append((obs.request_label, obs.persona, "; ".join(obs.interests)))
    print()
    print(render_table(["config", "persona", "inferred interests"], rows, title="Table 12"))
    print(f"\nmissing interest files: {analysis.personas_missing_file}")

    # Install-only: only Health & Fitness yields interests.
    assert analysis.personas_with_interests("installation") == [cat.HEALTH]
    install = analysis.interests_for(cat.HEALTH, "installation")
    assert set(install) == {"Electronics", "Home & Garden: DIY & Tools"}

    # Interaction (1): Fashion & Style and Smart Home join in.
    assert set(analysis.personas_with_interests("interaction-1")) == {
        cat.HEALTH,
        cat.FASHION,
        cat.SMART_HOME,
    }
    fashion = analysis.interests_for(cat.FASHION, "interaction-1")
    assert set(fashion) == {"Beauty & Personal Care", "Fashion", "Video Entertainment"}
    health_refined = analysis.interests_for(cat.HEALTH, "interaction-1")
    assert set(health_refined) == {"Home & Garden: DIY & Tools"}

    # Interaction (2): interests evolve; Smart Home gains Pet Supplies.
    smart2 = analysis.interests_for(cat.SMART_HOME, "interaction-2")
    assert smart2 is not None and "Pet Supplies" in smart2
    fashion2 = analysis.interests_for(cat.FASHION, "interaction-2")
    assert set(fashion2) == {"Fashion", "Video Entertainment"}

    # The missing-file quirk: five personas' advertising files vanish on
    # the second post-interaction export, including on re-request.
    assert set(analysis.personas_missing_file) == {
        cat.HEALTH,
        cat.WINE,
        cat.RELIGION,
        cat.DATING,
        cat.VANILLA,
    }
