"""Tests for the calibration tables and derived math."""

import datetime as dt
import math

import pytest

from repro.data import categories as cat
from repro.data.calibration import (
    AMAZON_HOUSE_CAMPAIGNS,
    AUDIO_AD_RATE,
    AUDIO_BRAND_WEIGHTS,
    INFORMED_FRACTION,
    INTEREST_RULES,
    MISSING_INTEREST_FILE_PERSONAS,
    N_DOWNSTREAM_THIRD_PARTIES,
    N_NON_PARTNERS,
    N_PARTNERS,
    PERSONA_BID_TARGETS,
    VANILLA_BID_TARGETS,
    BidParams,
    bid_params,
    holiday_factor,
)

UTC = dt.timezone.utc


class TestBidParams:
    def test_median_mean_roundtrip(self):
        params = BidParams.from_median_mean(0.09, 0.403)
        assert params.median == pytest.approx(0.09)
        assert params.mean == pytest.approx(0.403)

    def test_sigma_formula(self):
        params = BidParams.from_median_mean(0.03, 0.153)
        assert params.sigma == pytest.approx(
            math.sqrt(2 * math.log(0.153 / 0.03))
        )

    def test_mean_below_median_rejected(self):
        with pytest.raises(ValueError):
            BidParams.from_median_mean(0.2, 0.1)

    def test_zero_median_rejected(self):
        with pytest.raises(ValueError):
            BidParams.from_median_mean(0.0, 0.1)

    def test_all_personas_calibrated(self):
        for category in cat.ALL_CATEGORIES:
            params = bid_params(category)
            assert params.sigma > 0

    def test_vanilla_lowest_median(self):
        vanilla = bid_params(cat.VANILLA).median
        for category in cat.ALL_CATEGORIES:
            assert bid_params(category).median > vanilla

    def test_unknown_persona_raises(self):
        with pytest.raises(KeyError):
            bid_params("martian")

    def test_web_personas_calibrated(self):
        for category in cat.WEB_CATEGORIES:
            assert bid_params(category).median > 0


class TestHolidayFactor:
    def test_baseline_outside_window(self):
        assert holiday_factor(dt.datetime(2021, 11, 1, tzinfo=UTC)) == 1.0
        assert holiday_factor(dt.datetime(2022, 2, 1, tzinfo=UTC)) == 1.0

    def test_peaks_before_christmas(self):
        peak = holiday_factor(dt.datetime(2021, 12, 21, tzinfo=UTC))
        assert peak == pytest.approx(3.5)

    def test_monotonic_ramp_up(self):
        days = [dt.datetime(2021, 12, d, tzinfo=UTC) for d in range(6, 22)]
        factors = [holiday_factor(d) for d in days]
        assert factors == sorted(factors)

    def test_decays_after_christmas(self):
        dec27 = holiday_factor(dt.datetime(2021, 12, 27, tzinfo=UTC))
        dec21 = holiday_factor(dt.datetime(2021, 12, 21, tzinfo=UTC))
        assert dec27 < dec21
        assert dec27 > 1.0

    def test_back_to_one_in_january(self):
        assert holiday_factor(dt.datetime(2022, 1, 5, tzinfo=UTC)) == 1.0


class TestInformedFractions:
    def test_non_significant_personas_lowest(self):
        # The three personas the paper finds non-significant must have
        # markedly lower informed fractions than the significant six.
        weak = {cat.SMART_HOME, cat.WINE, cat.HEALTH}
        weak_max = max(INFORMED_FRACTION[p] for p in weak)
        strong_min = min(
            v for p, v in INFORMED_FRACTION.items() if p not in weak and p != cat.PETS
        )
        assert weak_max <= 0.80
        assert strong_min >= 0.78

    def test_all_fractions_valid(self):
        for value in INFORMED_FRACTION.values():
            assert 0.0 < value <= 1.0

    def test_covers_all_categories(self):
        assert set(INFORMED_FRACTION) == set(cat.ALL_CATEGORIES)


class TestPopulationConstants:
    def test_paper_counts(self):
        assert N_PARTNERS == 41
        assert N_DOWNSTREAM_THIRD_PARTIES == 247
        assert N_NON_PARTNERS > 0


class TestHouseCampaigns:
    def test_table8_products_present(self):
        products = {c.product for c in AMAZON_HOUSE_CAMPAIGNS}
        assert "Dehumidifier" in products
        assert "Eero WiFi router" in products
        assert "Kindle" in products

    def test_impressions_cover_iterations(self):
        for campaign in AMAZON_HOUSE_CAMPAIGNS:
            assert campaign.impressions >= campaign.iterations >= 1

    def test_relevant_campaigns_have_related_skill(self):
        for campaign in AMAZON_HOUSE_CAMPAIGNS:
            if campaign.apparent_relevance:
                assert campaign.related_skill


class TestAudioCalibration:
    def test_rates_cover_study_matrix(self):
        for skill in ("Amazon Music", "Spotify", "Pandora"):
            for persona in (cat.CONNECTED_CAR, cat.FASHION, cat.VANILLA):
                assert AUDIO_AD_RATE[skill][persona] > 0

    def test_connected_car_spotify_depressed(self):
        # Table 9: CC receives ~1/5 the Spotify ads of other personas.
        cc = AUDIO_AD_RATE["Spotify"][cat.CONNECTED_CAR]
        others = [
            AUDIO_AD_RATE["Spotify"][cat.FASHION],
            AUDIO_AD_RATE["Spotify"][cat.VANILLA],
        ]
        assert cc * 3 < min(others)

    def test_fashion_exclusive_brands(self):
        spotify = AUDIO_BRAND_WEIGHTS["Spotify"]
        assert set(spotify["Ashley"]) == {cat.FASHION}
        assert set(spotify["Ross"]) == {cat.FASHION}
        pandora = AUDIO_BRAND_WEIGHTS["Pandora"]
        assert set(pandora["Swiffer Wet Jet"]) == {cat.FASHION}
        assert set(pandora["Febreeze car"]) == {cat.CONNECTED_CAR}


class TestInterestRules:
    def test_install_only_health(self):
        install_rules = {k for k in INTEREST_RULES if k[1] == "installation"}
        assert install_rules == {(cat.HEALTH, "installation")}

    def test_smart_home_interaction2_gains_pet_supplies(self):
        assert "Pet Supplies" in INTEREST_RULES[(cat.SMART_HOME, "interaction-2")]

    def test_missing_file_personas(self):
        assert set(MISSING_INTEREST_FILE_PERSONAS) == {
            cat.HEALTH,
            cat.WINE,
            cat.RELIGION,
            cat.DATING,
            cat.VANILLA,
        }
