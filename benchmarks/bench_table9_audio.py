"""Table 9: fraction of audio ads per streaming skill per persona."""

from paper_targets import AUDIO_TOTAL_ADS, PREMIUM_UPSELL_SHARE, TABLE9

from repro.core.adcontent import analyze_audio_ads
from repro.core.report import render_table
from repro.data import categories as cat


def bench_table9_audio(benchmark, dataset):
    analysis = benchmark(analyze_audio_ads, dataset)
    fractions = analysis.skill_fractions()

    rows = []
    for (skill, persona), paper_fraction in sorted(TABLE9.items()):
        measured = fractions.get((skill, persona), 0.0)
        rows.append(
            (skill, persona, f"{measured:.3f}", f"{paper_fraction:.3f}")
        )
    print()
    print(render_table(["skill", "persona", "measured", "paper"], rows, title="Table 9"))
    print(
        f"\ntotal audio ads {analysis.total_ads} (paper {AUDIO_TOTAL_ADS}); "
        f"premium upsell {analysis.premium_upsell_share:.3f} "
        f"(paper {PREMIUM_UPSELL_SHARE})"
    )

    # Shape assertions:
    # Connected Car draws ~1/5 of Spotify's ads vs other personas.
    spotify_cc = fractions[("Spotify", cat.CONNECTED_CAR)]
    spotify_fashion = fractions[("Spotify", cat.FASHION)]
    spotify_vanilla = fractions[("Spotify", cat.VANILLA)]
    assert spotify_cc * 3 < min(spotify_fashion, spotify_vanilla)
    # Amazon Music is even across personas.
    amazon = [fractions[("Amazon Music", p)] for p in (cat.CONNECTED_CAR, cat.FASHION, cat.VANILLA)]
    assert max(amazon) - min(amazon) < 0.10
    # Total volume near the paper's 289; premium share near 16.6%.
    assert 0.7 * AUDIO_TOTAL_ADS <= analysis.total_ads <= 1.3 * AUDIO_TOTAL_ADS
    assert 0.10 <= analysis.premium_upsell_share <= 0.25
