"""Tests for the organization-mapping substrate (entity DB, WHOIS, resolver)."""

import pytest

from repro.netsim.dns import DnsRecord, DnsTable
from repro.netsim.endpoints import EndpointRegistry
from repro.orgmap.entity_db import EntityDatabase, OrgEntity
from repro.orgmap.resolver import UNKNOWN_ORG, OrgResolver
from repro.orgmap.whois import REDACTED, WhoisService
from repro.util.rng import Seed


@pytest.fixture
def entity_db():
    return EntityDatabase(
        [
            OrgEntity(
                "Amazon Technologies, Inc.",
                categories=("platform provider",),
                domains=("amazon.com", "cloudfront.net"),
            ),
            OrgEntity(
                "Podtrac Inc",
                categories=("analytic provider",),
                domains=("podtrac.com",),
            ),
        ]
    )


class TestEntityDatabase:
    def test_lookup_by_subdomain(self, entity_db):
        entity = entity_db.entity_for_domain("device-metrics-us-2.amazon.com")
        assert entity.name == "Amazon Technologies, Inc."

    def test_lookup_unknown(self, entity_db):
        assert entity_db.entity_for_domain("nobody.example.net") is None

    def test_lookup_by_name(self, entity_db):
        assert entity_db.entity_by_name("Podtrac Inc").categories == (
            "analytic provider",
        )

    def test_duplicate_entity_rejected(self, entity_db):
        with pytest.raises(ValueError):
            entity_db.add(OrgEntity("Podtrac Inc", domains=("other.com",)))

    def test_conflicting_domain_rejected(self, entity_db):
        with pytest.raises(ValueError):
            entity_db.add(OrgEntity("Impostor", domains=("podtrac.com",)))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            OrgEntity("")

    def test_len_and_iter(self, entity_db):
        assert len(entity_db) == 2
        assert {e.name for e in entity_db} == {
            "Amazon Technologies, Inc.",
            "Podtrac Inc",
        }


class TestWhois:
    def _registry(self):
        reg = EndpointRegistry()
        for i in range(40):
            reg.register(f"svc{i}.example{i}.org", organization=f"Org {i}")
        return reg

    def test_lookup_returns_registrant(self):
        whois = WhoisService(self._registry(), Seed(1), redaction_rate=0.0)
        record = whois.lookup("svc3.example3.org")
        assert record.registrant_org == "Org 3"

    def test_redaction_rate_roughly_applied(self):
        whois = WhoisService(self._registry(), Seed(1), redaction_rate=0.5)
        redacted = sum(
            1
            for i in range(40)
            if whois.lookup(f"svc{i}.example{i}.org").is_redacted
        )
        assert 8 <= redacted <= 32  # binomial(40, .5) within wide bounds

    def test_full_redaction(self):
        whois = WhoisService(self._registry(), Seed(1), redaction_rate=1.0)
        assert whois.lookup("svc0.example0.org").registrant_org == REDACTED

    def test_unknown_domain(self):
        whois = WhoisService(self._registry(), Seed(1))
        assert whois.lookup("missing.example.net") is None

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            WhoisService(self._registry(), Seed(1), redaction_rate=1.5)

    def test_query_counter(self):
        whois = WhoisService(self._registry(), Seed(1))
        whois.lookup("svc0.example0.org")
        whois.lookup("svc1.example1.org")
        assert whois.query_count == 2

    def test_deterministic_across_instances(self):
        a = WhoisService(self._registry(), Seed(9), redaction_rate=0.4)
        b = WhoisService(self._registry(), Seed(9), redaction_rate=0.4)
        for i in range(40):
            domain = f"svc{i}.example{i}.org"
            assert a.lookup(domain).is_redacted == b.lookup(domain).is_redacted


class TestOrgResolver:
    def test_entity_db_preferred(self, entity_db):
        resolver = OrgResolver(entity_db)
        attribution = resolver.attribute_domain("play.podtrac.com")
        assert attribution.organization == "Podtrac Inc"
        assert attribution.source == "entity-db"
        assert attribution.resolved

    def test_whois_fallback(self, entity_db):
        reg = EndpointRegistry()
        reg.register("obscure.smallco.io", organization="SmallCo")
        whois = WhoisService(reg, Seed(2), redaction_rate=0.0)
        resolver = OrgResolver(entity_db, whois)
        attribution = resolver.attribute_domain("obscure.smallco.io")
        assert attribution.organization == "SmallCo"
        assert attribution.source == "whois"

    def test_redacted_whois_unresolved(self, entity_db):
        reg = EndpointRegistry()
        reg.register("obscure.smallco.io", organization="SmallCo")
        whois = WhoisService(reg, Seed(2), redaction_rate=1.0)
        resolver = OrgResolver(entity_db, whois)
        attribution = resolver.attribute_domain("obscure.smallco.io")
        assert attribution.organization == UNKNOWN_ORG
        assert not attribution.resolved

    def test_attribute_ip_via_dns_table(self, entity_db):
        resolver = OrgResolver(entity_db)
        table = DnsTable()
        table.add(DnsRecord(domain="cdn.podtrac.com", ip="10.0.0.9"))
        attribution = resolver.attribute_ip("10.0.0.9", table)
        assert attribution.organization == "Podtrac Inc"

    def test_attribute_ip_falls_back_to_sni(self, entity_db):
        resolver = OrgResolver(entity_db)
        attribution = resolver.attribute_ip(
            "10.0.0.1", DnsTable(), sni="x.amazon.com"
        )
        assert attribution.organization == "Amazon Technologies, Inc."

    def test_attribute_ip_unresolvable(self, entity_db):
        resolver = OrgResolver(entity_db)
        attribution = resolver.attribute_ip("10.0.0.1", DnsTable())
        assert attribution.domain is None
        assert attribution.organization == UNKNOWN_ORG
