"""Property-based tests (hypothesis) over core data structures and math."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core.stats import mann_whitney_u, rank_biserial
from repro.data.calibration import BidParams
from repro.netsim.endpoints import registrable_domain
from repro.netsim.http import estimate_size
from repro.netsim.packet import Direction, Packet, Protocol, group_flows
from repro.orgmap.filterlists import FilterList
from repro.util.rng import Seed, derive_seed_int

finite_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSeedProperties:
    @given(st.integers(), st.lists(st.text(max_size=8), max_size=4))
    def test_derivation_deterministic(self, root, parts):
        assert derive_seed_int(root, parts) == derive_seed_int(root, parts)

    @given(st.integers(), st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8))
    def test_distinct_single_parts_distinct_streams(self, root, a, b):
        if a == b:
            return
        assert Seed(root).rng(a).random() != Seed(root).rng(b).random()

    @given(st.integers())
    def test_seed_in_64_bit_range(self, root):
        assert 0 <= derive_seed_int(root, ["x"]) < 2**64


class TestMannWhitneyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(finite_floats, min_size=10, max_size=40),
        st.lists(finite_floats, min_size=10, max_size=40),
    )
    def test_matches_scipy(self, x, y):
        ours = mann_whitney_u(x, y, alternative="greater")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="greater")
        assert math.isclose(ours.p_value, theirs.pvalue, rel_tol=1e-6, abs_tol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(finite_floats, min_size=5, max_size=30),
        st.lists(finite_floats, min_size=5, max_size=30),
    )
    def test_effect_size_bounds(self, x, y):
        result = mann_whitney_u(x, y, alternative="two-sided")
        assert -1.0 <= result.effect_size <= 1.0
        assert 0.0 <= result.p_value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(finite_floats, min_size=8, max_size=30))
    def test_antisymmetry(self, x):
        shifted = [v * 3.0 for v in x]
        forward = mann_whitney_u(shifted, x, alternative="greater")
        backward = mann_whitney_u(x, shifted, alternative="greater")
        assert math.isclose(
            forward.effect_size, -backward.effect_size, abs_tol=1e-12
        )

    @given(st.integers(1, 50), st.integers(1, 50))
    def test_rank_biserial_extremes(self, n1, n2):
        assert rank_biserial(0, n1, n2) == -1.0
        assert rank_biserial(n1 * n2, n1, n2) == 1.0


class TestBidParamsProperties:
    @settings(max_examples=60)
    @given(
        st.floats(min_value=0.001, max_value=10.0),
        st.floats(min_value=1.0, max_value=20.0),
    )
    def test_roundtrip(self, median, ratio):
        mean = median * ratio
        params = BidParams.from_median_mean(median, mean)
        assert math.isclose(params.median, median, rel_tol=1e-9)
        assert math.isclose(params.mean, mean, rel_tol=1e-9)


class TestFlowGroupingProperties:
    packets = st.lists(
        st.builds(
            Packet,
            timestamp=st.floats(min_value=0, max_value=100, allow_nan=False),
            src_ip=st.just("192.168.7.10"),
            dst_ip=st.sampled_from(["54.0.0.1", "54.0.0.2", "54.0.0.3"]),
            src_port=st.integers(1024, 65535),
            dst_port=st.sampled_from([80, 443]),
            protocol=st.sampled_from([Protocol.TLS, Protocol.HTTP]),
            size=st.integers(0, 4096),
            direction=st.just(Direction.OUTBOUND),
            device_id=st.sampled_from(["echo-1", "echo-2"]),
        ),
        max_size=40,
    )

    @settings(max_examples=50)
    @given(packets)
    def test_grouping_partitions_packets(self, pkts):
        flows = group_flows(pkts)
        assert sum(len(f.packets) for f in flows) == len(pkts)
        keys = [f.key for f in flows]
        assert len(keys) == len(set(keys))

    @settings(max_examples=50)
    @given(packets)
    def test_total_bytes_conserved(self, pkts):
        flows = group_flows(pkts)
        assert sum(f.total_bytes for f in flows) == sum(p.size for p in pkts)


class TestFilterListProperties:
    hosts = st.lists(
        st.from_regex(r"[a-z]{1,8}\.[a-z]{2,5}", fullmatch=True),
        min_size=1,
        max_size=10,
        unique=True,
    )

    @settings(max_examples=50)
    @given(hosts)
    def test_blocked_hosts_and_subdomains(self, hosts):
        fl = FilterList.from_hosts(hosts)
        for host in hosts:
            assert fl.is_blocked(host)
            assert fl.is_blocked(f"cdn.{host}")

    @settings(max_examples=50)
    @given(hosts)
    def test_classify_is_a_partition(self, hosts):
        fl = FilterList.from_hosts(hosts[:1])
        ad, functional = fl.classify(hosts)
        assert sorted(ad + functional) == sorted(hosts)


class TestRegistrableDomainProperties:
    @given(st.from_regex(r"([a-z]{1,6}\.){1,4}[a-z]{2,4}", fullmatch=True))
    def test_registrable_is_suffix(self, domain):
        base = registrable_domain(domain)
        assert domain.endswith(base)
        assert 1 <= base.count(".") <= 2


class TestEstimateSizeProperties:
    payloads = st.dictionaries(
        st.text(max_size=8),
        st.one_of(st.integers(), st.text(max_size=16), st.lists(st.integers(), max_size=4)),
        max_size=6,
    )

    @settings(max_examples=50)
    @given(payloads)
    def test_size_positive_and_monotone(self, payload):
        base = estimate_size(payload)
        assert base >= 64
        bigger = dict(payload)
        bigger["extra-key"] = "x" * 50
        assert estimate_size(bigger) > base
