"""Tests for the voice frontend and Amazon accounts."""

import pytest

from repro.alexa.account import AmazonAccount
from repro.alexa.voice import Transcription, VoiceFrontend
from repro.util.rng import Seed


class TestWakeWord:
    def test_wake_word_strips_prefix(self):
        vf = VoiceFrontend(Seed(1), misactivation_rate=0.0)
        assert vf.detect_wake_word("alexa, open garmin") == "open garmin"

    def test_alternate_wake_words(self):
        vf = VoiceFrontend(Seed(1), misactivation_rate=0.0)
        assert vf.detect_wake_word("echo play music") == "play music"
        assert vf.detect_wake_word("computer stop") == "stop"

    def test_no_wake_word_ignored(self):
        vf = VoiceFrontend(Seed(1), misactivation_rate=0.0)
        assert vf.detect_wake_word("open garmin") is None

    def test_empty_utterance(self):
        vf = VoiceFrontend(Seed(1), misactivation_rate=0.0)
        assert vf.detect_wake_word("   ") is None

    def test_misactivations_occur_at_configured_rate(self):
        vf = VoiceFrontend(Seed(1), misactivation_rate=0.5)
        triggered = sum(
            1 for _ in range(200) if vf.detect_wake_word("just chatting") is not None
        )
        assert 60 <= triggered <= 140
        assert vf.misactivations == triggered

    def test_zero_misactivation_never_triggers(self):
        vf = VoiceFrontend(Seed(1), misactivation_rate=0.0)
        assert all(
            vf.detect_wake_word("private conversation") is None for _ in range(100)
        )


class TestTranscription:
    def test_clean_transcription(self):
        vf = VoiceFrontend(Seed(1), word_error_rate=0.0)
        result = vf.transcribe("Open Garmin")
        assert result.text == "open garmin"
        assert result.confidence > 0.9

    def test_word_errors_lower_confidence(self):
        vf = VoiceFrontend(Seed(1), word_error_rate=1.0)
        result = vf.transcribe("drive to there by four")
        assert result.text != "drive to there by four"
        assert result.confidence < 0.95

    def test_confidence_bounds_enforced(self):
        with pytest.raises(ValueError):
            Transcription(text="x", confidence=1.5)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            VoiceFrontend(Seed(1), word_error_rate=2.0)
        with pytest.raises(ValueError):
            VoiceFrontend(Seed(1), misactivation_rate=-0.1)


class TestAmazonAccount:
    def test_derived_identifiers_stable(self):
        a = AmazonAccount(email="p@example.com", persona="x")
        b = AmazonAccount(email="p@example.com", persona="x")
        assert a.customer_id == b.customer_id
        assert a.session_cookie == b.session_cookie

    def test_different_emails_different_ids(self):
        a = AmazonAccount(email="p@example.com", persona="x")
        b = AmazonAccount(email="q@example.com", persona="x")
        assert a.customer_id != b.customer_id

    def test_customer_id_format(self):
        account = AmazonAccount(email="p@example.com", persona="x")
        assert account.customer_id.startswith("A")
        assert len(account.customer_id) == 14

    def test_cookies_include_session(self):
        account = AmazonAccount(email="p@example.com", persona="x")
        cookies = account.amazon_cookies
        assert cookies["session-id"] == account.session_cookie
        assert cookies["x-main"] == account.customer_id

    def test_invalid_email_rejected(self):
        with pytest.raises(ValueError):
            AmazonAccount(email="not-an-email", persona="x")
