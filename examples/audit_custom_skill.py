#!/usr/bin/env python3
"""Audit a skill YOU define — the downstream-user story.

Define a `SkillSpec` for a hypothetical skill (here: a meditation skill
that quietly ships audio ads from Megaphone and collects persistent
identifiers while its privacy policy discloses none of it), drop it into
the catalog, and run the full auditing pipeline against it:

1. per-skill traffic capture → which endpoints it really contacts;
2. AVS plaintext → which data types it really collects;
3. filter-list classification → which contacts are ad/tracking;
4. PoliCheck → whether any of that is disclosed in its policy;
5. certification audit → whether it violates the advertising policy.
"""

from repro.alexa import AVSEcho, AmazonAccount, EchoDevice
from repro.alexa.certification import CertificationChecker, audit_certified_skills
from repro.core.report import render_kv
from repro.core.world import build_world
from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.data.skill_catalog import PolicySpec, SkillCatalog, SkillSpec, build_catalog
from repro.policies.corpus import build_corpus
from repro.policies.policheck.analyzer import PolicheckAnalyzer
from repro.policies.policheck.extraction import (
    extract_datatype_flows,
    extract_endpoint_flows,
)
from repro.util.rng import Seed

MY_SKILL = SkillSpec(
    skill_id="skill-mindful-minutes",
    name="Mindful Minutes",
    category=cat.HEALTH,
    vendor="Calm Harbor Labs",
    review_count=777,
    invocation_name="mindful minutes",
    sample_utterances=(
        "open mindful minutes",
        "ask mindful minutes for a breathing exercise",
    ),
    amazon_endpoints=(
        "avs-alexa-16-na.amazon.com",
        "alexa.amazon.com",
        "api.amazonalexa.com",
        "device-metrics-us-2.amazon.com",
    ),
    # The quiet part: monetization via Megaphone + Podtrac.
    other_endpoints=("cdn.megaphone.fm", "play.podtrac.com"),
    data_types=(dt.VOICE_RECORDING, dt.CUSTOMER_ID, dt.SKILL_ID),
    is_streaming=False,  # ...which makes the ads a policy violation
    policy=PolicySpec(
        has_link=True,
        downloadable=True,
        platform_disclosure="vague",
        datatype_disclosures={dt.VOICE_RECORDING: "vague"},
        # customer id, skill id, Megaphone, Podtrac: all omitted.
    ),
)


def main() -> None:
    seed = Seed(42)
    base = build_catalog(seed)
    catalog = SkillCatalog(list(base.skills) + [MY_SKILL])
    world = build_world(seed, catalog=catalog)

    account = AmazonAccount(email="custom@persona.example.com", persona="custom")
    echo = EchoDevice("echo-custom", account, world.router, world.cloud, seed)
    avs_account = AmazonAccount(email="custom-avs@persona.example.com", persona="custom-avs")
    avs = AVSEcho("avs-custom", avs_account, world.router, world.cloud, seed)

    # 1-2. exercise the skill on both devices, capture everything.
    world.marketplace.install(account, MY_SKILL.skill_id)
    world.marketplace.install(avs_account, MY_SKILL.skill_id)
    capture = world.router.start_capture(MY_SKILL.skill_id, device_filter="echo-custom")
    echo.run_skill_session(MY_SKILL)
    echo.background_sync(list(MY_SKILL.amazon_endpoints))
    world.router.stop_capture(capture)
    avs.run_skill_session(MY_SKILL)

    endpoint_flows = extract_endpoint_flows(
        {MY_SKILL.skill_id: capture}, world.org_resolver()
    )
    data_flows = extract_datatype_flows(avs.plaintext_log)

    # 3. classify contacts.
    contacted = sorted({p.sni for p in capture if p.sni})
    ad_hosts = [d for d in contacted if world.filter_list.is_blocked(d)]

    # 4. PoliCheck the skill's own policy.
    corpus = build_corpus(catalog, seed)
    analyzer = PolicheckAnalyzer(corpus, org_categories=world.org_categories())
    datatype_verdicts = {
        f.data_type: analyzer.classify_datatype_flow(f).classification
        for f in data_flows
        if f.skill_id == MY_SKILL.skill_id
    }
    endpoint_verdicts = {
        f.entity: analyzer.classify_endpoint_flow(f).classification
        for f in endpoint_flows
    }

    # 5. certification audit.
    certs = CertificationChecker().review_catalog(catalog)
    violations = audit_certified_skills(
        [MY_SKILL],
        {MY_SKILL.skill_id: contacted},
        world.filter_list,
        certs,
    )

    print(render_kv({
        "endpoints contacted": len(contacted),
        "ad/tracking endpoints": ", ".join(ad_hosts) or "none",
        "data types observed (AVS)": ", ".join(sorted(datatype_verdicts)),
        "certification outcome": "certified" if certs[MY_SKILL.skill_id].certified else "rejected",
        "advertising-policy violations": len(violations),
    }, title=f"Audit of {MY_SKILL.name!r}"))

    print("\nPoliCheck — data types:")
    for data_type, verdict in sorted(datatype_verdicts.items()):
        print(f"  {data_type:22s} -> {verdict}")
    print("PoliCheck — endpoint organizations:")
    for org, verdict in sorted(endpoint_verdicts.items()):
        print(f"  {org:28s} -> {verdict}")
    if violations:
        print(f"\nVIOLATION: {violations[0].rule}")
        print(f"evidence: {', '.join(violations[0].evidence)}")


if __name__ == "__main__":
    main()
