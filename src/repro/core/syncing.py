"""Cookie-sync detection from crawl traffic (paper §5.5).

Works purely on the browsers' request logs: a sync is a request whose URL
carries a user identifier to another party's sync endpoint.  The detector
looks for the classic patterns — ``uid=`` parameters on known sync paths
(``/cm``, ``/setuid``, ``/x/cm``, ``/match``) and redirect-chain pairs —
and classifies who is syncing with whom.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set
from urllib.parse import parse_qsl, urlparse

from repro.core.experiment import AuditDataset, PersonaArtifacts
from repro.web.browser import LoggedRequest

__all__ = [
    "SyncEvent",
    "SyncAnalysis",
    "detect_cookie_syncing",
    "persona_sync_events",
    "fold_sync_events",
]

_SYNC_PATHS = re.compile(r"/(cm|setuid|match|x/cm|usersync|pixel)(/|$|\?)")
_ID_PARAMS = ("uid", "user_id", "puid", "external_id", "buyeruid")


@dataclass(frozen=True)
class SyncEvent:
    """One observed cookie-sync request."""

    persona: str
    source: str  # party that initiated the sync (owns the uid)
    destination_host: str
    uid: str
    url: str


@dataclass
class SyncAnalysis:
    """Aggregated view of cookie syncing across personas (§5.5)."""

    events: List[SyncEvent] = field(default_factory=list)
    #: Bidder codes observed syncing their uid TO Amazon.
    amazon_partners: Set[str] = field(default_factory=set)
    #: Parties Amazon pushed its own identifier to (expected: none).
    amazon_outbound_targets: Set[str] = field(default_factory=set)
    #: Downstream third-party hosts partners synced with.
    downstream_parties: Set[str] = field(default_factory=set)
    #: partner code -> downstream hosts.
    partner_downstream: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def partner_count(self) -> int:
        return len(self.amazon_partners)

    @property
    def downstream_count(self) -> int:
        return len(self.downstream_parties)

    def sync_graph(self) -> "nx.DiGraph":
        """Directed data-propagation graph: edge A→B when A pushed a user
        identifier to B.  Nodes carry a ``role`` attribute (``amazon`` /
        ``partner`` / ``downstream``)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_node("amazon", role="amazon")
        for partner in self.amazon_partners:
            graph.add_node(partner, role="partner")
            graph.add_edge(partner, "amazon")
        for partner, downstream in self.partner_downstream.items():
            for host in downstream:
                graph.add_node(host, role="downstream")
                graph.add_edge(partner, host)
        return graph

    def propagation_reach(self) -> Dict[str, int]:
        """How many parties each partner's data reaches (graph out-degree)."""
        graph = self.sync_graph()
        return {
            node: graph.out_degree(node)
            for node, data in graph.nodes(data=True)
            if data.get("role") == "partner"
        }


def detect_cookie_syncing(dataset: AuditDataset) -> SyncAnalysis:
    """Scan every persona's request log for cookie-sync traffic."""
    return fold_sync_events(
        event
        for artifacts in dataset.personas.values()
        for event in persona_sync_events(artifacts)
    )


def persona_sync_events(artifacts: PersonaArtifacts) -> List[SyncEvent]:
    """One persona's sync events, in request-log order.

    The per-persona unit of §5.5: extraction reads only this persona's
    request log, so segment-store workers can emit sync events at any
    batch granularity and :func:`fold_sync_events` over the roster-ordered
    stream reproduces :func:`detect_cookie_syncing` exactly.
    """
    return [
        event
        for request in artifacts.request_log
        for event in _parse_syncs(request, artifacts.persona.name)
    ]


def fold_sync_events(events, keep_events: bool = True) -> SyncAnalysis:
    """Single-pass fold of an event stream into a :class:`SyncAnalysis`.

    ``events`` is any iterable of :class:`SyncEvent` in roster order —
    an in-memory dataset scan or a segment-store stream.  With
    ``keep_events=False`` the per-event list is not retained, so memory
    stays bounded by the aggregate sets however long the stream is (the
    segment-store summary path).
    """
    analysis = SyncAnalysis(partner_downstream=defaultdict(set))
    for event in events:
        _classify(analysis, event, keep_event=keep_events)
    analysis.partner_downstream = dict(analysis.partner_downstream)
    return analysis


def _classify(
    analysis: SyncAnalysis, event: SyncEvent, keep_event: bool = True
) -> None:
    if keep_event:
        analysis.events.append(event)
    destination = event.destination_host
    if "amazon-adsystem" in destination:
        analysis.amazon_partners.add(event.source)
    elif _is_amazon_source(event):
        analysis.amazon_outbound_targets.add(destination)
    else:
        analysis.downstream_parties.add(destination)
        analysis.partner_downstream[event.source].add(destination)


def _parse_syncs(request: LoggedRequest, persona: str) -> List[SyncEvent]:
    """Every sync event a request carries — one per distinct ID value.

    Sync URLs can repeat an ID parameter (``uid=a&uid=b`` piggybacks two
    identifiers on one call); a plain ``dict(parse_qsl(...))`` would keep
    only the last value per key, silently missing the others.
    """
    parsed = urlparse(request.url)
    if not _SYNC_PATHS.search(parsed.path):
        return []
    pairs = parse_qsl(parsed.query)
    uids: List[str] = []
    for param in _ID_PARAMS:
        for name, value in pairs:
            if name == param and value not in uids:
                uids.append(value)
    if not uids:
        return []
    params = dict(pairs)
    source = params.get("bidder") or params.get("partner") or params.get("source")
    if source is None:
        # Fall back to the redirect chain's origin host.
        source = urlparse(request.chain_root).netloc
    return [
        SyncEvent(
            persona=persona,
            source=source,
            destination_host=parsed.netloc,
            uid=uid,
            url=request.url,
        )
        for uid in uids
    ]


def _is_amazon_source(event: SyncEvent) -> bool:
    return "amazon" in event.source.lower()
