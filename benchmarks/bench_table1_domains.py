"""Table 1: Amazon, skill-vendor, and third-party domains contacted by
skills, with per-domain skill counts."""

from collections import defaultdict

from repro.core.report import render_table
from repro.core.traffic import analyze_traffic, analyze_traffic_stream
from repro.netsim.endpoints import registrable_domain


def bench_table1_domains(benchmark, dataset, world, vendor_by_skill):
    analysis = benchmark.pedantic(
        analyze_traffic,
        args=(dataset, world.org_resolver(), world.filter_list, vendor_by_skill),
        rounds=2,
        iterations=1,
    )

    # Aggregate subdomains per (org class, registrable domain), as the
    # paper's *(N).domain notation does.
    grouped = defaultdict(lambda: [set(), set()])  # base -> [subdomains, skills]
    for domain, skills in analysis.skills_by_domain.items():
        base = registrable_domain(domain)
        key = (analysis.domain_class[domain], base)
        grouped[key][0].add(domain)
        grouped[key][1].update(skills)

    rows = []
    for (org_class, base), (subdomains, skills) in sorted(
        grouped.items(), key=lambda kv: (kv[0][0], -len(kv[1][1]))
    ):
        label = base if len(subdomains) == 1 else f"*({len(subdomains)}).{base}"
        flagged = any(
            analysis.domain_is_ad_tracking[d] for d in subdomains
        )
        rows.append(
            (org_class, label, len(skills), "A&T" if flagged else "")
        )
    print()
    print(render_table(["org", "domain", "skills", "class"], rows, title="Table 1"))

    amazon = analysis.skills_contacting("amazon")
    vendor = analysis.skills_contacting("skill vendor")
    third = analysis.skills_contacting("third party")
    print(
        f"\nskills contacting: amazon={len(amazon)} (paper 446), "
        f"own vendor={len(vendor)} (paper 2), third party={len(third)} (paper 31), "
        f"failed={len(analysis.failed_skills)} (paper 4)"
    )

    # Paper shape: ~99% Amazon, exactly Garmin+YouVersion on own domains,
    # ~31 third-party skills, 4 failures.
    assert len(amazon) == 446
    assert len(vendor) == 2
    assert len(third) == 31
    assert len(analysis.failed_skills) == 4


def bench_table1_domains_stream(
    benchmark, segment_store, world, vendor_by_skill
):
    """Table 1 recomputed off the segment store's merged flow stream."""
    failures = []
    for record in segment_store.iter_stream("personas"):
        failures.extend(record["install_failures"])
    resolver = world.org_resolver()

    def run():
        return analyze_traffic_stream(
            segment_store.iter_stream("flows"),
            resolver,
            world.filter_list,
            vendor_by_skill,
            install_failures=failures,
        )

    analysis = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(analysis.skills_contacting("amazon")) == 446
    assert len(analysis.skills_contacting("skill vendor")) == 2
    assert len(analysis.skills_contacting("third party")) == 31
    assert len(analysis.failed_skills) == 4
