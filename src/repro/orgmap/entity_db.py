"""Domain → organization entity database.

The auditor's equivalent of the DuckDuckGo Tracker Radar entity list
(§3.2 "Inferring origin"): a curated mapping from registrable domains to
parent organizations, with organization metadata.  It is deliberately a
*separate* source of truth from the simulation's own endpoint registry —
the auditor is only as good as its public data, and the tests exercise the
gap (unknown domains fall back to WHOIS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.netsim.endpoints import registrable_domain

__all__ = ["OrgEntity", "EntityDatabase"]


@dataclass(frozen=True)
class OrgEntity:
    """A parent organization as known to public entity lists.

    ``categories`` mirrors the ontology labels used in Table 14:
    ``analytic provider``, ``advertising network``, ``content provider``,
    ``platform provider``, ``voice assistant service``.
    """

    name: str
    categories: Tuple[str, ...] = ()
    domains: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("organization name must be non-empty")


class EntityDatabase:
    """Lookup table from registrable domain to :class:`OrgEntity`."""

    def __init__(self, entities: Iterable[OrgEntity] = ()) -> None:
        self._entities: Dict[str, OrgEntity] = {}
        self._domain_index: Dict[str, OrgEntity] = {}
        for entity in entities:
            self.add(entity)

    def add(self, entity: OrgEntity) -> None:
        """Register an entity and index all of its domains."""
        if entity.name in self._entities:
            raise ValueError(f"entity already registered: {entity.name}")
        self._entities[entity.name] = entity
        for domain in entity.domains:
            base = registrable_domain(domain)
            existing = self._domain_index.get(base)
            if existing is not None and existing.name != entity.name:
                raise ValueError(
                    f"domain {base} claimed by both {existing.name} and {entity.name}"
                )
            self._domain_index[base] = entity

    def entity_for_domain(self, domain: str) -> Optional[OrgEntity]:
        """Look up the owning entity of ``domain`` (any subdomain depth)."""
        return self._domain_index.get(registrable_domain(domain))

    def entity_by_name(self, name: str) -> Optional[OrgEntity]:
        return self._entities.get(name)

    def __iter__(self) -> Iterator[OrgEntity]:
        return iter(self._entities.values())

    def __len__(self) -> int:
        return len(self._entities)
