"""Deterministic network fault injection and client retry policy.

Real Echo traffic is dominated by retries, keepalives, and failure
recovery (Janak et al., "An Analysis of Amazon Echo's Network
Behavior"), and the paper's blocking evaluation (§7) is ultimately a
question of how skills degrade when requests fail.  The closed-world
``netsim`` originally had a binary success/:class:`NetworkError` model;
this module adds the missing failure modes without giving up the
simulation's reproducibility contract:

* a :class:`FaultProfile` names the failure mix (DNS NXDOMAIN,
  connection timeouts, 5xx responses, slow responses) as per-request
  rates;
* a :class:`FaultPlan` turns the profile into concrete per-request
  :class:`FaultDecision`\\ s.  Decisions are drawn from
  :class:`~repro.util.rng.StreamFamily` substreams keyed by
  ``(actor, domain)`` and derived from the world
  :class:`~repro.util.rng.Seed` — so an actor's fault schedule depends
  only on its own request sequence, never on which other actors share
  the world or on shard order.  That is the property that keeps
  serial and persona-sharded parallel campaigns byte-identical under
  every fault profile;
* a :class:`RetryPolicy` gives clients capped exponential backoff
  driven entirely by the :class:`~repro.util.clock.SimClock` — library
  code never sleeps on the host clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.netsim.http import HttpResponse
from repro.util.clock import SimClock
from repro.util.rng import Seed, StreamFamily

__all__ = [
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "DEFAULT_RETRY_POLICY",
    "FaultDecision",
    "FaultPlan",
    "FaultProfile",
    "RetryPolicy",
]

#: The injectable failure modes, in the order the decision draw checks
#: them (the order is part of the deterministic contract — reordering
#: would reshuffle every seeded fault schedule).
FAULT_KINDS = ("nxdomain", "timeout", "http_5xx", "slow")


@dataclass(frozen=True)
class FaultProfile:
    """A named mix of per-request fault rates.

    Rates are independent probabilities partitioning each request draw:
    their sum must stay ≤ 1 and the remainder is a healthy request.
    ``timeout_seconds`` is the connect timeout a client burns before a
    timed-out request fails; slow responses inflate service latency by
    an extra delay drawn uniformly from ``slow_extra_seconds``.
    """

    name: str
    nxdomain_rate: float = 0.0
    timeout_rate: float = 0.0
    http_5xx_rate: float = 0.0
    slow_rate: float = 0.0
    timeout_seconds: float = 2.0
    slow_extra_seconds: Tuple[float, float] = (0.2, 2.0)

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.total_rate > 1.0:
            raise ValueError(
                f"fault rates must sum to <= 1, got {self.total_rate}"
            )
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        lo, hi = self.slow_extra_seconds
        if lo < 0 or hi < lo:
            raise ValueError(
                f"slow_extra_seconds must be a (lo, hi) range, got "
                f"{self.slow_extra_seconds}"
            )

    @property
    def total_rate(self) -> float:
        return (
            self.nxdomain_rate
            + self.timeout_rate
            + self.http_5xx_rate
            + self.slow_rate
        )

    @property
    def enabled(self) -> bool:
        """Whether this profile can ever inject a fault."""
        return self.total_rate > 0.0

    @classmethod
    def from_rate(cls, rate: float) -> "FaultProfile":
        """A custom profile from one overall fault rate.

        The rate is split across kinds in a fixed 1:2:3:4 ratio
        (nxdomain : timeout : 5xx : slow) — rarest first, mirroring how
        the named profiles weight hard failures below soft ones.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        return cls(
            name=f"rate:{rate:g}",
            nxdomain_rate=rate * 0.1,
            timeout_rate=rate * 0.2,
            http_5xx_rate=rate * 0.3,
            slow_rate=rate * 0.4,
        )

    @classmethod
    def parse(cls, text: str) -> "FaultProfile":
        """Resolve a ``--faults`` value: a profile name or a float rate."""
        if isinstance(text, FaultProfile):
            return text
        key = str(text).strip().lower()
        profile = FAULT_PROFILES.get(key)
        if profile is not None:
            return profile
        try:
            rate = float(key)
        except ValueError:
            raise ValueError(
                f"unknown fault profile {text!r}: expected one of "
                f"{sorted(FAULT_PROFILES)} or a float rate in [0, 1]"
            ) from None
        return cls.from_rate(rate)


#: The named profiles the CLI exposes.  ``mild`` keeps a small campaign
#: comfortably completable (soft faults dominate); ``harsh`` is the
#: stress setting later scale-out work benchmarks against.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "mild": FaultProfile(
        name="mild",
        nxdomain_rate=0.002,
        timeout_rate=0.008,
        http_5xx_rate=0.02,
        slow_rate=0.04,
    ),
    "harsh": FaultProfile(
        name="harsh",
        nxdomain_rate=0.01,
        timeout_rate=0.04,
        http_5xx_rate=0.08,
        slow_rate=0.12,
    ),
}


@dataclass(frozen=True)
class FaultDecision:
    """One injected fault: what goes wrong and how much sim time it burns."""

    kind: str  # one of FAULT_KINDS
    #: Simulated seconds the fault consumes: the connect timeout for
    #: ``timeout``, the failed-resolution round trip for ``nxdomain``,
    #: the extra service latency for ``slow``/``http_5xx``.
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")


#: Sim seconds a failed DNS resolution costs the client.
DNS_FAILURE_SECONDS = 0.05


class FaultPlan:
    """Seeded per-``(actor, domain)`` fault schedule for one world.

    Every request attempt draws one decision from the stream named by
    the requesting actor (device id or browser profile id) and the
    target domain.  Because each ``(actor, domain)`` pair owns an
    independent substream, an actor's Nth request to a domain gets the
    same decision in every run of the same seed — regardless of what
    other actors are doing, which is what keeps fault schedules
    invariant across persona shards.
    """

    def __init__(self, seed: Seed, profile: FaultProfile) -> None:
        self.profile = profile
        self._streams = StreamFamily(seed.derive("faults"), profile.name)

    def decide(self, actor: str, domain: str) -> Optional[FaultDecision]:
        """The fault (if any) for this actor's next request to ``domain``."""
        profile = self.profile
        if not profile.enabled:
            return None
        stream = self._streams.stream(actor, domain)
        draw = stream.random()
        edge = profile.nxdomain_rate
        if draw < edge:
            return FaultDecision("nxdomain", seconds=DNS_FAILURE_SECONDS)
        edge += profile.timeout_rate
        if draw < edge:
            return FaultDecision("timeout", seconds=profile.timeout_seconds)
        edge += profile.http_5xx_rate
        if draw < edge:
            return FaultDecision("http_5xx", seconds=0.0)
        edge += profile.slow_rate
        if draw < edge:
            lo, hi = profile.slow_extra_seconds
            return FaultDecision("slow", seconds=stream.uniform(lo, hi))
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over the simulated clock.

    ``max_attempts`` counts the initial try; backoff before retry *n*
    (1-based) is ``min(base_backoff * multiplier**(n-1), max_backoff)``
    simulated seconds.  Deterministic — no jitter — so retry timelines
    reproduce from the seed alone.
    """

    max_attempts: int = 3
    base_backoff: float = 0.5
    multiplier: float = 2.0
    max_backoff: float = 4.0
    #: Response statuses treated as transient failures worth retrying.
    retry_statuses: Tuple[int, ...] = (500, 502, 503, 504)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def backoff(self, retry_number: int) -> float:
        """Sim seconds to wait before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ValueError(f"retry_number is 1-based, got {retry_number}")
        return min(
            self.base_backoff * self.multiplier ** (retry_number - 1),
            self.max_backoff,
        )

    def call(
        self,
        clock: SimClock,
        attempt: Callable[[], HttpResponse],
        obs=None,
        scope: str = "net",
    ) -> HttpResponse:
        """Run ``attempt`` under this policy, backing off on sim time.

        Retries on :class:`~repro.netsim.router.NetworkError` and on
        retryable statuses.  Returns the first healthy response, or the
        last retryable-status response once attempts are exhausted
        (callers check ``response.ok`` and degrade); re-raises the last
        :class:`~repro.netsim.router.NetworkError` once exhausted.
        Retry counts land in ``<scope>.retries`` /
        ``<scope>.retry_exhausted`` on ``obs`` when given.
        """
        from repro.netsim.router import NetworkError  # avoid import cycle

        last_error: Optional[NetworkError] = None
        last_response: Optional[HttpResponse] = None
        for attempt_number in range(1, self.max_attempts + 1):
            if attempt_number > 1:
                clock.advance(self.backoff(attempt_number - 1))
                if obs is not None:
                    obs.inc(f"{scope}.retries")
            try:
                response = attempt()
            except NetworkError as exc:
                last_error = exc
                last_response = None
                continue
            if response.status not in self.retry_statuses:
                return response
            last_error = None
            last_response = response
        if obs is not None:
            obs.inc(f"{scope}.retry_exhausted")
        if last_error is not None:
            raise last_error
        assert last_response is not None
        return last_response


#: The shared client policy: Echo devices, the AVS Echo, and the
#: OpenWPM-style crawler all retry with this unless configured otherwise.
DEFAULT_RETRY_POLICY = RetryPolicy()
