"""Data-type vocabulary shared by skills, AVS traffic, and PoliCheck.

The seven data types of Table 13, grouped into the paper's four categories
(voice inputs, persistent identifiers, user preferences, device events).
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "VOICE_RECORDING",
    "CUSTOMER_ID",
    "SKILL_ID",
    "LANGUAGE",
    "TIMEZONE",
    "OTHER_PREFERENCES",
    "AUDIO_PLAYER_EVENTS",
    "ALL_DATA_TYPES",
    "DATA_TYPE_CATEGORIES",
    "PERSISTENT_ID_TYPES",
]

VOICE_RECORDING = "voice recording"
CUSTOMER_ID = "customer id"
SKILL_ID = "skill id"
LANGUAGE = "language"
TIMEZONE = "timezone"
OTHER_PREFERENCES = "other preferences"
AUDIO_PLAYER_EVENTS = "audio player events"

ALL_DATA_TYPES: Tuple[str, ...] = (
    VOICE_RECORDING,
    CUSTOMER_ID,
    SKILL_ID,
    LANGUAGE,
    TIMEZONE,
    OTHER_PREFERENCES,
    AUDIO_PLAYER_EVENTS,
)

PERSISTENT_ID_TYPES: Tuple[str, ...] = (CUSTOMER_ID, SKILL_ID)

#: Table 13 row grouping.
DATA_TYPE_CATEGORIES: Dict[str, str] = {
    VOICE_RECORDING: "Voice inputs",
    CUSTOMER_ID: "Persistent IDs",
    SKILL_ID: "Persistent IDs",
    LANGUAGE: "User preferences",
    TIMEZONE: "User preferences",
    OTHER_PREFERENCES: "User preferences",
    AUDIO_PLAYER_EVENTS: "Device events",
}
