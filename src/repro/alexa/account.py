"""Amazon accounts and their client-side identifiers.

One account per persona (§3.1.1).  The account owns the customer id that
appears in device traffic and the session cookie that links the persona's
browser profile to Amazon during web crawls (§3.3) — the cross-device
identifier that makes off-platform targeting possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.util.ids import stable_hash

__all__ = ["AmazonAccount"]


@dataclass
class AmazonAccount:
    """A dedicated Amazon account for one persona."""

    email: str
    persona: str
    customer_id: str = ""
    session_cookie: str = ""
    #: Alexa web companion app linkage (§3.1.1 step 1-4).
    companion_linked: bool = False
    #: Number of DSAR data requests issued so far, per exposure epoch.
    dsar_requests: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "@" not in self.email:
            raise ValueError(f"invalid account email: {self.email}")
        if not self.customer_id:
            self.customer_id = "A" + stable_hash("customer", self.email, length=13).upper()
        if not self.session_cookie:
            self.session_cookie = stable_hash("session-cookie", self.email, length=24)

    @property
    def amazon_cookies(self) -> Dict[str, str]:
        """Cookies a logged-in browser profile sends to Amazon properties."""
        return {"session-id": self.session_cookie, "x-main": self.customer_id}
