"""§7.2.3: PoliCheck validation against manual inspection of 100 skills
(multi-class micro/macro precision, recall, F1)."""

from paper_targets import VALIDATION_MACRO, VALIDATION_MICRO_F1

from repro.core.compliance import analyze_compliance, run_validation_study
from repro.core.report import render_kv
from repro.util.rng import Seed


def bench_policheck_validation(benchmark, dataset, world):
    compliance = analyze_compliance(
        dataset, world.corpus, world.org_resolver(), world.org_categories()
    )
    report = benchmark.pedantic(
        run_validation_study,
        args=(compliance, world.corpus, Seed(42)),
        rounds=2,
        iterations=1,
    )
    paper_p, paper_r, paper_f1 = VALIDATION_MACRO
    print()
    print(
        render_kv(
            {
                "flows validated": report.n_flows,
                "micro P/R/F1": f"{report.micro_f1:.4f} (paper {VALIDATION_MICRO_F1})",
                "macro precision": f"{report.macro_precision:.4f} (paper {paper_p})",
                "macro recall": f"{report.macro_recall:.4f} (paper {paper_r})",
                "macro F1": f"{report.macro_f1:.4f} (paper {paper_f1})",
            },
            title="§7.2.3 PoliCheck validation",
        )
    )

    # Shape: high-but-imperfect accuracy, with precision exceeding recall
    # (the analyzer misses human-visible disclosures more than it invents
    # them).
    assert 0.82 <= report.micro_f1 <= 0.95
    assert report.macro_precision > report.macro_recall
    assert 0.70 <= report.macro_f1 <= 0.92
