"""The one campaign entrypoint: :func:`run_campaign` on a
:class:`CampaignSpec`.

The framework grew three ways to run the measurement campaign — serial
(``run_experiment``), persona-sharded parallel
(``run_parallel_experiment``), and disk-cached
(``run_cached_experiment``) — each with its own argument order and no
shared observability story.  ``run_campaign`` collapsed them behind one
signature, and then accreted thirteen keyword arguments that could not
cross a process boundary.  :class:`CampaignSpec` is the redesign: one
frozen, validated, JSON-round-trippable object holding *everything* that
defines a campaign execution — config, seed, worker topology, cache,
observability, crash-safety knobs, and store selection — shared verbatim
by the Python API, the CLI, and the HTTP service
(:mod:`repro.service`)::

    spec = CampaignSpec(config=ExperimentConfig(), seed=42,
                        parallel=True, workers=4)
    dataset = run_campaign(spec)                    # the one entrypoint
    spec == CampaignSpec.from_json(spec.to_json())  # exact round trip
    spec.fingerprint()                              # stable job identity

The kwargs form survives as a thin shim that builds a spec and
delegates::

    dataset = run_campaign(config, seed)                     # serial
    dataset = run_campaign(config, seed, parallel=True,
                           workers=4, backend="process")     # sharded
    dataset = run_campaign(config, seed, cache=True)         # cached

Observability is on by default: every run traces into an
:class:`~repro.obs.ObsCollector` (spans, counters, events, manifest)
exposed as ``dataset.obs``.  Parallel runs merge per-shard collectors so
the simulated-time span tree is byte-identical to the serial run's for
the same seed.

:func:`execute_spec` is the run-and-export path on top: it executes a
spec (memory or segment store) and writes the export files to a
directory — the CLI's ``run`` command and the HTTP service both call it,
which is what makes an HTTP-submitted spec's exports byte-identical to
the same spec run locally.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.experiment import (
    AuditDataset,
    ExperimentConfig,
    _run_serial_experiment,
)
from repro.core.iosim import current_storage_faults, is_enospc
from repro.core.parallel import (
    BACKENDS,
    ON_SHARD_FAILURE,
    SupervisorPolicy,
    WorkerFaultPlan,
    _run_parallel_experiment,
    shard_personas,
)
from repro.core.personas import scaled_roster
from repro.obs import NULL_OBS, ObsCollector, RunManifest
from repro.util.rng import Seed

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "STORES",
    "CampaignSpec",
    "execute_spec",
    "run_campaign",
    "run_segment_campaign",
    "run_segment_positions",
]

#: Bump whenever the serialized CampaignSpec layout changes shape; a
#: stale or foreign spec document fails :meth:`CampaignSpec.from_dict`.
SPEC_SCHEMA_VERSION = 1

#: Campaign result stores: ``"memory"`` materializes one in-RAM
#: ``AuditDataset``; ``"segments"`` streams persona batches through the
#: on-disk :class:`~repro.core.segments.SegmentStore`.
STORES = ("memory", "segments")

#: Default worker count when ``parallel=True`` and ``workers`` is unset.
_DEFAULT_WORKERS = 2


def _resolve_seed(seed: Union[int, Seed]) -> Seed:
    if isinstance(seed, Seed):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be an int or Seed, got {type(seed).__name__}")
    return Seed(seed)


def _resolve_obs(obs: Union[None, bool, ObsCollector]):
    """``None`` → fresh collector, ``False`` → disabled, collector → as-is."""
    if obs is None or obs is True:
        return ObsCollector()
    if obs is False:
        return NULL_OBS
    if isinstance(obs, ObsCollector):
        return obs
    raise TypeError(
        f"obs must be None, a bool, or an ObsCollector, got {type(obs).__name__}"
    )


def _resolve_cache(cache):
    """``None``/``False`` → off, ``True`` → default root, path → that root,
    :class:`~repro.core.cache.DatasetCache` → as-is."""
    from repro.core.cache import DatasetCache

    if cache is None or cache is False:
        return None
    if cache is True:
        return DatasetCache()
    if isinstance(cache, (str, Path)):
        return DatasetCache(Path(cache))
    if isinstance(cache, DatasetCache):
        return cache
    raise TypeError(
        "cache must be None, a bool, a path, or a DatasetCache, got "
        f"{type(cache).__name__}"
    )


# ---------------------------------------------------------------------- #
# CampaignSpec
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class CampaignSpec:
    """One complete, serializable description of a campaign execution.

    Every field is a JSON scalar, a nested :class:`ExperimentConfig`, or
    ``None`` — ``CampaignSpec.from_json(spec.to_json())`` round-trips
    exactly, and :meth:`fingerprint` is a stable identity usable as a
    cache/job key across processes and machines.  Validation happens at
    construction (``__post_init__``), so an invalid spec can never be
    submitted, scheduled, or executed: the CLI, the Python API, and the
    HTTP body all fail with the same message.

    Non-serializable runtime companions (a live
    :class:`~repro.obs.ObsCollector`, a
    :class:`~repro.core.parallel.WorkerFaultPlan`) are deliberately NOT
    spec fields — they are per-process overrides accepted by the kwargs
    form of :func:`run_campaign` only.
    """

    #: Scale knobs; the paper-scale default when omitted.
    config: ExperimentConfig = dataclasses.field(default_factory=ExperimentConfig)
    #: Root seed (int — :class:`~repro.util.rng.Seed` is reconstructed
    #: at execution time so the spec stays JSON-scalar).
    seed: int = 42
    #: Shard the persona roster across workers.
    parallel: bool = False
    #: Worker count (``None`` → default 2; only valid with ``parallel``).
    workers: Optional[int] = None
    #: Parallel backend: ``"process"`` or ``"thread"``.
    backend: str = "process"
    #: Dataset-cache root directory, or ``None`` for no cache.  Serial
    #: memory-store campaigns only.
    cache: Optional[str] = None
    #: On a cache hit, deep-copy (``True``) or alias (``False``) the
    #: cached dataset.  ``False`` requires ``cache``.
    cache_copy: bool = True
    #: Collect the observability trace (``dataset.obs``).  Memory store
    #: only; segment-store workers never trace.
    obs: bool = True
    #: Durable shard-journal directory (parallel memory store only).
    checkpoint_dir: Optional[str] = None
    #: Load valid checkpointed shards from ``checkpoint_dir`` instead of
    #: recomputing them.
    resume: bool = False
    #: Supervisor policy when a shard exhausts its attempts:
    #: ``"retry"`` / ``"degrade"`` / ``"raise"``.
    on_shard_failure: str = "retry"
    #: Wall-clock watchdog seconds per shard attempt (``None`` → off).
    shard_timeout: Optional[float] = None
    #: Requeues per shard after its first failed attempt.
    max_shard_retries: int = 2
    #: Result store: ``"memory"`` or ``"segments"``.
    store: str = "memory"
    #: Segment-store root (``store="segments"`` only; ``None`` lets
    #: :func:`execute_spec` default it to ``<out>/_segments``).
    store_dir: Optional[str] = None
    #: Personas per streamed batch (``store="segments"`` only).
    batch_personas: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.config, ExperimentConfig):
            raise TypeError(
                "config must be an ExperimentConfig, got "
                f"{type(self.config).__name__}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.on_shard_failure not in ON_SHARD_FAILURE:
            raise ValueError(
                f"on_shard_failure must be one of {ON_SHARD_FAILURE}, got "
                f"{self.on_shard_failure!r}"
            )
        if self.store not in STORES:
            raise ValueError(f"store must be one of {STORES}, got {self.store!r}")
        if self.workers is not None:
            if isinstance(self.workers, bool) or not isinstance(self.workers, int):
                raise TypeError(
                    f"workers must be an int, got {type(self.workers).__name__}"
                )
            if self.workers < 1:
                raise ValueError(f"workers must be >= 1, got {self.workers}")
            if not self.parallel:
                raise ValueError("workers requires parallel=True")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )
        if self.batch_personas < 1:
            raise ValueError(
                f"batch_personas must be >= 1, got {self.batch_personas}"
            )
        if not self.parallel:
            supervisor_knobs = {
                "checkpoint_dir": (self.checkpoint_dir, None),
                "resume": (self.resume, False),
                "on_shard_failure": (self.on_shard_failure, "retry"),
                "shard_timeout": (self.shard_timeout, None),
                "max_shard_retries": (self.max_shard_retries, 2),
            }
            offending = [
                name
                for name, (value, default) in supervisor_knobs.items()
                if value != default
            ]
            if offending:
                raise ValueError(
                    f"{', '.join(offending)} require(s) parallel=True — the "
                    "checkpoint journal and shard supervisor only exist for "
                    "sharded runs"
                )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir=...")
        if not self.cache_copy and self.cache is None:
            raise ValueError("cache_copy=False requires cache=...")
        if self.parallel and self.cache is not None:
            raise ValueError(
                "cache=... is mutually exclusive with parallel=True; the cache "
                "stores serial campaigns (a cached parallel run would never "
                "exercise the shard merge it exists to verify)"
            )
        if self.store == "segments":
            offending = [
                name
                for name, active in (
                    ("cache", self.cache is not None),
                    ("checkpoint_dir", self.checkpoint_dir is not None),
                    ("resume", self.resume),
                )
                if active
            ]
            if offending:
                raise ValueError(
                    f"{', '.join(offending)} do(es) not apply to "
                    "store='segments': the store's content-addressed batches "
                    "already provide reuse and resume"
                )
        elif self.batch_personas != 1:
            raise ValueError("batch_personas requires store='segments'")
        for name in ("cache", "checkpoint_dir", "store_dir"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise TypeError(
                    f"{name} must be a string path or None in a CampaignSpec, "
                    f"got {type(value).__name__} (the kwargs form of "
                    "run_campaign accepts Path/DatasetCache objects)"
                )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (nested config expanded field by field)."""
        payload = dataclasses.asdict(self)
        payload["config"]["audio_personas"] = list(
            payload["config"]["audio_personas"]
        )
        payload["schema"] = SPEC_SCHEMA_VERSION
        return payload

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        """Build and validate a spec from its :meth:`to_dict` form.

        Unknown keys — top-level or inside ``config`` — are an error,
        never silently dropped: a typo'd knob in an HTTP body must fail
        the submit, not run a subtly different campaign.
        """
        if not isinstance(payload, dict):
            raise TypeError(
                f"campaign spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        payload = dict(payload)
        schema = payload.pop("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"campaign spec schema {schema!r} is not supported "
                f"(this build speaks schema {SPEC_SCHEMA_VERSION})"
            )
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise ValueError(f"unknown campaign spec fields: {unknown}")
        config = payload.get("config", {})
        if isinstance(config, dict):
            config_fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
            bad = sorted(set(config) - config_fields)
            if bad:
                raise ValueError(f"unknown config fields: {bad}")
            payload["config"] = ExperimentConfig(**config)
        elif not isinstance(config, ExperimentConfig):
            raise TypeError(
                "config must be a JSON object or ExperimentConfig, got "
                f"{type(config).__name__}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"campaign spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def fingerprint(self) -> str:
        """Stable content digest of the spec (16 hex chars).

        Canonical-JSON based (sorted keys, compact separators), so the
        same spec fingerprints identically in every process, on every
        machine, and across submissions — job identity for the service
        layer and a reuse key everywhere else.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def replace(self, **changes: object) -> "CampaignSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #


def run_campaign(
    config: Union[None, ExperimentConfig, CampaignSpec] = None,
    seed: Union[int, Seed] = 42,
    *,
    parallel: bool = False,
    workers: Optional[int] = None,
    backend: str = "process",
    cache=None,
    cache_copy: bool = True,
    obs: Union[None, bool, ObsCollector] = None,
    checkpoint_dir: Union[None, str, Path] = None,
    resume: bool = False,
    on_shard_failure: str = "retry",
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 2,
    worker_faults: Optional[WorkerFaultPlan] = None,
):
    """Run the full measurement campaign described by a spec.

    The one true entrypoint takes a :class:`CampaignSpec`::

        dataset = run_campaign(spec)

    and returns the :class:`~repro.core.experiment.AuditDataset`
    (``spec.store == "memory"``) or the
    :class:`~repro.core.segments.SegmentStore` (``spec.store ==
    "segments"``).

    The historical kwargs form is kept as a thin shim: it normalises its
    arguments into a :class:`CampaignSpec` plus the non-serializable
    runtime companions and delegates.  See :class:`CampaignSpec` for the
    meaning of every knob; the runtime-only extras are:

    obs:
        ``None``/``True``/``False`` map onto ``spec.obs``; an existing
        :class:`~repro.obs.ObsCollector` traces into it (serial/cached
        only).
    cache:
        ``True`` → the default cache root, a path → that root, or a live
        :class:`~repro.core.cache.DatasetCache` instance.
    cache_copy:
        On a cache hit, ``True`` (default) returns an independent deep
        copy; ``False`` aliases the cached instance (read-only
        consumers).
    worker_faults:
        Seeded :class:`~repro.core.parallel.WorkerFaultPlan` injecting
        worker-level crash/hang/poison faults (tests, chaos CI).  Never
        part of a spec: fault injection is a property of the harness,
        not of the campaign.
    """
    if isinstance(config, CampaignSpec):
        spec = config
        extras = {
            "seed": (seed, 42),
            "parallel": (parallel, False),
            "workers": (workers, None),
            "backend": (backend, "process"),
            "cache": (cache, None),
            "cache_copy": (cache_copy, True),
            "obs": (obs, None),
            "checkpoint_dir": (checkpoint_dir, None),
            "resume": (resume, False),
            "on_shard_failure": (on_shard_failure, "retry"),
            "shard_timeout": (shard_timeout, None),
            "max_shard_retries": (max_shard_retries, 2),
        }
        offending = [
            name for name, (value, default) in extras.items() if value != default
        ]
        if offending:
            raise TypeError(
                "run_campaign(spec) takes the whole campaign from the spec; "
                f"also passing {', '.join(offending)} is ambiguous — use "
                "spec.replace(...) instead"
            )
        return _execute(spec, worker_faults=worker_faults)

    # Legacy kwargs form: normalise into a spec + runtime companions.
    if config is None:
        config = ExperimentConfig()
    seed_obj = _resolve_seed(seed)
    cache_store = _resolve_cache(cache)
    if obs is not None and not isinstance(obs, (bool, ObsCollector)):
        raise TypeError(
            f"obs must be None, a bool, or an ObsCollector, got {type(obs).__name__}"
        )
    obs_override = obs if isinstance(obs, ObsCollector) else None
    if not parallel and workers is not None:
        raise ValueError("workers requires parallel=True")
    spec = CampaignSpec(
        config=config,
        seed=seed_obj.root,
        parallel=parallel,
        workers=workers,
        backend=backend,
        cache=None if cache_store is None else str(cache_store.root),
        cache_copy=cache_copy,
        obs=obs is not False,
        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
        resume=resume,
        on_shard_failure=on_shard_failure,
        shard_timeout=shard_timeout,
        max_shard_retries=max_shard_retries,
    )
    return _execute(
        spec,
        obs_override=obs_override,
        cache_override=cache_store,
        worker_faults=worker_faults,
    )


def _execute(
    spec: CampaignSpec,
    *,
    obs_override: Optional[ObsCollector] = None,
    cache_override=None,
    worker_faults: Optional[WorkerFaultPlan] = None,
):
    """Execute a validated spec (plus runtime-only companions)."""
    from repro import __version__
    from repro.core.cache import config_fingerprint

    if spec.store == "segments":
        if spec.store_dir is None:
            raise ValueError(
                "store='segments' needs store_dir — set it on the spec, or "
                "run through execute_spec(spec, out_dir) which defaults it "
                "to <out>/_segments"
            )
        return run_segment_campaign(
            spec.config,
            spec.seed,
            store_dir=spec.store_dir,
            parallel=spec.parallel,
            workers=spec.workers,
            backend=spec.backend,
            batch_personas=spec.batch_personas,
            on_shard_failure=spec.on_shard_failure,
            shard_timeout=spec.shard_timeout,
            max_shard_retries=spec.max_shard_retries,
            worker_faults=worker_faults,
        )

    config = spec.config
    seed = Seed(spec.seed)
    collector = obs_override if obs_override is not None else _resolve_obs(spec.obs)
    cache_store = (
        cache_override if cache_override is not None else _resolve_cache(spec.cache)
    )
    if spec.parallel and obs_override is not None:
        raise ValueError(
            "cannot trace a parallel run into a caller-supplied collector; "
            "pass obs=None and read the merged collector from dataset.obs"
        )

    fingerprint = config_fingerprint(config)
    roster = tuple(p.name for p in scaled_roster(config.roster_scale))

    if spec.parallel:
        n_workers = _DEFAULT_WORKERS if spec.workers is None else spec.workers
        policy = SupervisorPolicy(
            on_shard_failure=spec.on_shard_failure,
            shard_timeout=spec.shard_timeout,
            max_shard_retries=spec.max_shard_retries,
            worker_faults=worker_faults,
        )
        dataset, report = _run_parallel_experiment(
            seed,
            config,
            workers=n_workers,
            backend=spec.backend,
            collect_obs=collector.enabled,
            checkpoint_dir=spec.checkpoint_dir,
            resume=spec.resume,
            policy=policy,
        )
        shards = tuple(
            tuple(p.name for p in shard)
            for shard in shard_personas(scaled_roster(config.roster_scale), n_workers)
        )
        manifest = RunManifest(
            seed_root=seed.root,
            config_fingerprint=fingerprint,
            entrypoint="parallel",
            workers=len(shards),
            backend=spec.backend,
            shards=shards,
            package_version=__version__,
            fault_profile=config.fault_profile,
            shard_attempts=tuple(
                tuple(report.attempts.get(index, []))
                for index in range(len(shards))
            ),
            missing_personas=report.missing_personas,
            resumed=spec.resume,
            checkpointed=spec.checkpoint_dir is not None,
        )
    elif cache_store is not None:
        dataset = cache_store.read(
            seed.root,
            config,
            copy=spec.cache_copy,
            compute=lambda: _run_serial_experiment(seed, config, obs=collector),
        )
        manifest = RunManifest(
            seed_root=seed.root,
            config_fingerprint=fingerprint,
            entrypoint="cached",
            shards=(roster,),
            cache_hit=cache_store.last_hit,
            package_version=__version__,
            fault_profile=config.fault_profile,
        )
    else:
        dataset = _run_serial_experiment(seed, config, obs=collector)
        manifest = RunManifest(
            seed_root=seed.root,
            config_fingerprint=fingerprint,
            entrypoint="serial",
            shards=(roster,),
            package_version=__version__,
            fault_profile=config.fault_profile,
        )

    if dataset.obs is not None:
        plan = current_storage_faults()
        if plan is not None:
            # Fold the storage fault accounting into the run's trace so
            # `--metrics-out` and the service events surface it.
            for name, value in plan.snapshot().items():
                dataset.obs.inc(name, value)
        manifest.phase_real_seconds = {
            name: seconds
            for name, seconds in dataset.timings.items()
            if "." not in name  # skip shard-prefixed worker timings
        }
        dataset.obs.manifest = manifest
    return dataset


def execute_spec(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    *,
    worker_faults: Optional[WorkerFaultPlan] = None,
) -> Tuple[Dict[str, int], object]:
    """Run ``spec`` and export its artifacts to ``out_dir``.

    The single run-and-export code path shared by ``repro run``, the
    Python API, and the HTTP service (:mod:`repro.service`): because
    export content is seed-deterministic and every consumer funnels
    through here, the export directory for a given spec is byte-
    identical no matter which surface submitted it.

    Returns ``(counts, result)`` where ``counts`` maps export file name
    to row count and ``result`` is the
    :class:`~repro.core.experiment.AuditDataset` (memory store) or
    :class:`~repro.core.segments.SegmentStore` (segment store).
    """
    from repro.core.export import export_dataset, export_segment_store

    out = Path(out_dir)
    if spec.store == "segments":
        if spec.store_dir is None:
            spec = spec.replace(store_dir=str(out / "_segments"))
        store = run_campaign(spec, worker_faults=worker_faults)
        return export_segment_store(store, out), store
    dataset = run_campaign(spec, worker_faults=worker_faults)
    return export_dataset(dataset, out), dataset


def run_segment_campaign(
    config: Optional[ExperimentConfig] = None,
    seed: Union[int, Seed] = 42,
    *,
    store_dir: Union[str, Path],
    parallel: bool = False,
    workers: Optional[int] = None,
    backend: str = "process",
    batch_personas: int = 1,
    on_shard_failure: str = "retry",
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 2,
    worker_faults: Optional[WorkerFaultPlan] = None,
):
    """Run the campaign into a segment store instead of memory.

    The flat-memory entrypoint: personas are executed in
    ``batch_personas``-sized batches, each batch's artifacts are
    flattened to segment records and published to the
    :class:`~repro.core.segments.SegmentStore` under ``store_dir``, and
    the batch is dropped before the next one starts — peak memory is
    bounded by one batch, not the roster.  Export the result with
    :func:`repro.core.export.export_segment_store`; for the same seed
    and config the files are byte-identical to the in-memory path's.

    Coverage is content-addressed per batch, which subsumes the
    dataset cache and the shard checkpoint journal at once: re-running
    the same ``(seed, config)`` skips covered personas (reuse), and a
    killed campaign — serial or parallel — resumes from its completed
    batches without any extra flags.

    With ``parallel=True`` the roster is sharded under the same
    supervisor as :func:`run_campaign` (``on_shard_failure`` /
    ``shard_timeout`` / ``max_shard_retries`` / ``worker_faults``
    behave identically); workers write segments directly to the shared
    store and return artifact-free shard results, so nothing
    persona-sized ever crosses the process boundary.

    Returns the :class:`~repro.core.segments.SegmentStore`; its
    manifest status is ``"complete"``, or ``"partial"`` when a degraded
    parallel run dropped personas.
    """
    from repro.core.cache import config_fingerprint
    from repro.core.segments import SegmentStore

    if config is None:
        config = ExperimentConfig()
    seed = _resolve_seed(seed)
    if batch_personas < 1:
        raise ValueError(f"batch_personas must be >= 1, got {batch_personas}")
    if not parallel and workers is not None:
        raise ValueError("workers requires parallel=True")

    fingerprint = config_fingerprint(config)
    roster = scaled_roster(config.roster_scale)
    names = tuple(p.name for p in roster)
    store = SegmentStore(store_dir, seed.root, fingerprint, names)
    store.ensure_manifest()

    missing = run_segment_positions(
        store,
        seed,
        config,
        range(len(names)),
        parallel=parallel,
        workers=workers,
        backend=backend,
        batch_personas=batch_personas,
        on_shard_failure=on_shard_failure,
        shard_timeout=shard_timeout,
        max_shard_retries=max_shard_retries,
        worker_faults=worker_faults,
    )
    extras: Dict[str, object] = {}
    if missing:
        extras["missing_personas"] = sorted(missing)
    plan = current_storage_faults()
    if plan is not None and plan.snapshot():
        # Segment workers never trace, so the manifest carries the
        # storage fault accounting the memory path puts on dataset.obs.
        extras["storage"] = plan.summary()
    store.write_manifest("partial" if missing else "complete", extras or None)
    return store


def run_segment_positions(
    store,
    seed: Seed,
    config: ExperimentConfig,
    positions,
    *,
    parallel: bool = False,
    workers: Optional[int] = None,
    backend: str = "process",
    batch_personas: int = 1,
    on_shard_failure: str = "retry",
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 2,
    worker_faults: Optional[WorkerFaultPlan] = None,
) -> Tuple[str, ...]:
    """Execute a subset of roster positions into a segment store.

    The execution core shared by :func:`run_segment_campaign` (which
    passes the full roster) and the timeline layer's incremental epoch
    runner (which passes only the dirty set).  Already-covered positions
    are skipped either way; the caller owns the manifest.  Returns the
    persona names a degraded parallel run dropped (empty on success —
    the serial path either completes or raises).
    """
    import functools
    import gc
    import shutil
    import tempfile

    from repro import __version__
    from repro.core.checkpoint import ShardJournal
    from repro.core.parallel import _ShardSupervisor
    from repro.core.segments import run_segment_shard, write_segment_batch

    roster = scaled_roster(config.roster_scale)
    positions = sorted(set(int(pos) for pos in positions))
    for pos in positions:
        if not 0 <= pos < len(roster):
            raise ValueError(
                f"position {pos} outside roster of {len(roster)}"
            )

    if not parallel:
        covered = store.covered_positions()
        pending = [pos for pos in positions if pos not in covered]
        for start in range(0, len(pending), batch_personas):
            try:
                write_segment_batch(
                    store, seed, config, pending[start : start + batch_personas]
                )
            except OSError as exc:
                if not is_enospc(exc):
                    raise
                # Disk exhaustion does not heal on retry: degrade to the
                # same partial semantics as on_shard_failure="degrade".
                # Whatever the failed batch published before running out
                # of space stayed atomic, so a fresh coverage scan tells
                # exactly which personas are durably stored; the rest
                # are reported missing and the caller stamps a partial
                # manifest.
                store.invalidate_scan()
                fresh = store.covered_positions()
                return tuple(
                    roster[pos].name
                    for pos in pending[start:]
                    if pos not in fresh
                )
            # The dead world/runner graph is cyclic; collect it now so
            # peak memory stays one-batch-sized instead of riding the
            # generational GC's schedule across a long roster.
            gc.collect()
        return ()

    n_workers = _DEFAULT_WORKERS if workers is None else workers
    if n_workers < 1:
        raise ValueError(f"workers must be >= 1, got {n_workers}")
    if not positions:
        return ()
    policy = SupervisorPolicy(
        on_shard_failure=on_shard_failure,
        shard_timeout=shard_timeout,
        max_shard_retries=max_shard_retries,
        worker_faults=worker_faults,
    )
    plan = [
        [p.name for p in shard]
        for shard in shard_personas([roster[pos] for pos in positions], n_workers)
    ]
    # The journal here is supervisor bookkeeping only (attempt history,
    # crash/hang/poison recovery) — durability lives in the store's
    # content-addressed batches, so the journal is ephemeral.
    journal_root = tempfile.mkdtemp(prefix="repro-segment-journal-")
    try:
        journal = ShardJournal(
            journal_root, seed.root, store.config_fingerprint, plan
        )
        journal.reset()
        journal.write_manifest(status="running", package_version=__version__)
        supervisor = _ShardSupervisor(
            journal,
            seed,
            config,
            backend,
            False,  # collect_obs: segment shards never trace
            policy,
            shard_fn=functools.partial(
                run_segment_shard,
                store_root=str(store.root),
                batch_personas=batch_personas,
            ),
        )
        _, report = supervisor.run({})
    finally:
        shutil.rmtree(journal_root, ignore_errors=True)
    # Workers wrote batches from other processes; drop any coverage scan
    # the caller's handle took before the run.
    store.invalidate_scan()
    return tuple(report.missing_personas)
