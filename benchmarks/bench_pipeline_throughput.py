"""Pipeline-cost benchmarks: what the framework itself costs to run.

Not a paper table — these time the reproduction's own moving parts so
regressions in the simulator or the analyses are caught: world build,
one skill-session audit, one crawl iteration, and a DSAR round trip.
"""

from repro.alexa import AmazonAccount, EchoDevice
from repro.core.world import build_world
from repro.util.rng import Seed
from repro.web import BrowserProfile, OpenWPMCrawler, discover_prebid_sites


def bench_world_build(benchmark):
    world = benchmark(lambda: build_world(Seed(101)))
    assert len(world.catalog) == 450


def bench_skill_session_audit(benchmark):
    world = build_world(Seed(102))
    account = AmazonAccount(email="perf@persona.example.com", persona="perf")
    device = EchoDevice("echo-perf", account, world.router, world.cloud, world.seed)
    spec = world.catalog.by_name("Garmin")
    world.marketplace.install(account, spec.skill_id)

    def run_session():
        capture = world.router.start_capture("perf", device_filter="echo-perf")
        device.run_skill_session(spec)
        device.background_sync(list(spec.amazon_endpoints))
        world.router.stop_capture(capture)
        return capture

    capture = benchmark(run_session)
    assert len(capture) > 10


def bench_crawl_iteration(benchmark):
    world = build_world(Seed(103))
    probe = BrowserProfile("probe-perf", "probe")
    world.adtech.register_profile(probe)
    sites = discover_prebid_sites(
        world.toplist, world.universe, world.adtech, probe, world.clock, target=20
    )
    profile = BrowserProfile("prof-perf", "fashion-and-style")
    crawler = OpenWPMCrawler(
        profile,
        world.universe,
        world.adtech,
        world.clock,
        world.seed,
        bot_mitigation=False,
    )
    counter = iter(range(10_000))

    result = benchmark(lambda: crawler.crawl_iteration(sites, next(counter)))
    assert result.bids


def bench_dsar_round_trip(benchmark):
    world = build_world(Seed(104))
    account = AmazonAccount(email="dsar@persona.example.com", persona="dsar")
    world.cloud.register_account(account)
    export = benchmark(lambda: world.dsar.request_data(account.customer_id))
    assert export.files
