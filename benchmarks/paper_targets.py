"""The paper's reported numbers, used by benchmarks for side-by-side
printing and shape assertions.  Values transcribed from Iqbal et al.
(IMC 2023), Tables 1-14."""

from repro.data import categories as cat

# Table 5: persona -> (median, mean) CPM with interaction.
TABLE5 = {
    cat.CONNECTED_CAR: (0.099, 0.267),
    cat.DATING: (0.099, 0.198),
    cat.FASHION: (0.090, 0.403),
    cat.PETS: (0.156, 0.223),
    cat.RELIGION: (0.120, 0.323),
    cat.SMART_HOME: (0.071, 0.218),
    cat.WINE: (0.065, 0.313),
    cat.HEALTH: (0.057, 0.310),
    cat.NAVIGATION: (0.099, 0.255),
    cat.VANILLA: (0.030, 0.153),
}

# Table 6: persona -> (no-interaction mean, interaction mean), adjacent windows.
TABLE6 = {
    cat.CONNECTED_CAR: (0.364, 0.311),
    cat.DATING: (0.519, 0.297),
    cat.FASHION: (0.572, 0.404),
    cat.PETS: (0.492, 0.373),
    cat.RELIGION: (0.477, 0.231),
    cat.SMART_HOME: (0.452, 0.349),
    cat.WINE: (0.418, 0.522),
    cat.HEALTH: (0.564, 0.826),
    cat.NAVIGATION: (0.533, 0.268),
    cat.VANILLA: (0.539, 0.232),
}

# Table 7: persona -> (p-value, rank-biserial effect size).
TABLE7 = {
    cat.CONNECTED_CAR: (0.003, 0.354),
    cat.DATING: (0.006, 0.363),
    cat.FASHION: (0.010, 0.319),
    cat.PETS: (0.005, 0.428),
    cat.RELIGION: (0.004, 0.356),
    cat.SMART_HOME: (0.075, 0.210),
    cat.WINE: (0.083, 0.192),
    cat.HEALTH: (0.149, 0.139),
    cat.NAVIGATION: (0.002, 0.410),
}

SIGNIFICANT_PERSONAS = {
    cat.CONNECTED_CAR,
    cat.DATING,
    cat.FASHION,
    cat.PETS,
    cat.RELIGION,
    cat.NAVIGATION,
}
NON_SIGNIFICANT_PERSONAS = {cat.SMART_HOME, cat.WINE, cat.HEALTH}

# Table 9: (skill, persona) -> fraction of that skill's audio ads.
TABLE9 = {
    ("Amazon Music", cat.CONNECTED_CAR): 0.3333,
    ("Amazon Music", cat.FASHION): 0.3441,
    ("Amazon Music", cat.VANILLA): 0.3226,
    ("Spotify", cat.CONNECTED_CAR): 0.0899,
    ("Spotify", cat.FASHION): 0.5056,
    ("Spotify", cat.VANILLA): 0.4045,
    ("Pandora", cat.CONNECTED_CAR): 0.2617,
    ("Pandora", cat.FASHION): 0.4392,
    ("Pandora", cat.VANILLA): 0.2991,
}

# Table 13: data type -> (clear, vague, omitted, no policy).
TABLE13 = {
    "voice recording": (20, 18, 147, 258),
    "customer id": (11, 9, 38, 84),
    "skill id": (0, 11, 85, 230),
    "language": (0, 3, 5, 10),
    "timezone": (0, 3, 5, 10),
    "other preferences": (0, 40, 139, 255),
    "audio player events": (0, 60, 99, 226),
}

# Headline counts.
TOTAL_ADS = 20210
N_SYNC_PARTNERS = 41
N_DOWNSTREAM = 247
POLICY_LINKS = 214
POLICIES_DOWNLOADED = 188
POLICIES_GENERIC = 129
POLICIES_LINK_AMAZON = 10
VALIDATION_MICRO_F1 = 0.8741
VALIDATION_MACRO = (0.9396, 0.7785, 0.8515)
AUDIO_TOTAL_ADS = 289
PREMIUM_UPSELL_SHARE = 0.1661
MAX_BID_FACTOR = 30  # Health & Fitness peak vs vanilla mean
