"""Simulated web publisher universe (Tranco-like toplist + prebid support).

The paper crawls the Tranco toplist probing for ``prebid.js`` until 200
supporting websites are found (§3.3), then collects bids on those.  We
generate a deterministic toplist where roughly a third of sites support
prebid, so the probing loop in :mod:`repro.web` exercises the same logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.util.rng import Seed

__all__ = ["WebsiteSpec", "build_toplist", "N_PREBID_TARGET", "WEB_PRIMING_SITES"]

#: The paper stops probing after identifying this many prebid sites.
N_PREBID_TARGET = 200

_SITE_WORDS = (
    "daily", "global", "metro", "prime", "urban", "alpha", "rapid", "vivid",
    "nova", "clear", "bright", "solid", "smart", "quick", "fresh", "true",
)
_SITE_TOPICS = (
    "news", "times", "post", "herald", "journal", "tribune", "report",
    "gazette", "review", "digest", "wire", "chronicle",
)


@dataclass(frozen=True)
class WebsiteSpec:
    """One publisher site on the toplist."""

    domain: str
    rank: int
    supports_prebid: bool
    prebid_version: str
    #: Number of header-bidding ad slots on the page.
    ad_slots: int


def build_toplist(seed: Seed, size: int = 1000) -> List[WebsiteSpec]:
    """Generate the Tranco-like toplist.

    ~33% of sites support prebid with 2-4 ad slots each, so probing the
    first ~600 ranks yields the 200-site crawl set.
    """
    rng = seed.rng("websites", "toplist")
    sites: List[WebsiteSpec] = []
    seen = set()
    rank = 0
    while len(sites) < size:
        word = rng.choice(_SITE_WORDS)
        topic = rng.choice(_SITE_TOPICS)
        number = rng.randint(1, 999)
        domain = f"{word}{topic}{number}.com"
        if domain in seen:
            continue
        seen.add(domain)
        rank += 1
        supports = rng.random() < 0.33
        sites.append(
            WebsiteSpec(
                domain=domain,
                rank=rank,
                supports_prebid=supports,
                prebid_version="6.18.0" if supports else "",
                ad_slots=rng.randint(2, 4) if supports else 0,
            )
        )
    return sites


#: Top-50 priming sites per web-control category (§3.1.2).
def WEB_PRIMING_SITES(category: str) -> Tuple[str, ...]:
    """Top-50 sites for a web persona's priming crawl."""
    short = category.replace("web-", "")
    return tuple(f"top-{short}-{i:02d}.example.org" for i in range(1, 51))
