"""Ad-content analysis: personalized display ads (§5.3, Table 8) and
audio ads (§5.4, Table 9, Figure 5).

The display-ad side reproduces the paper's three-condition rule for
calling an ad *personalized*: (i) the advertiser is an installed skill's
vendor (including Amazon itself), (ii) the ad is exclusive to one
persona, and (iii) it references a product in the same industry as an
installed skill.  Condition (iii) is the human-coder step; it is
implemented as a keyword thesaurus over installed-skill names.

The audio side transcribes recorded streaming sessions and extracts ads
from the transcripts by their sponsorship markers, then aggregates
per-skill / per-persona counts and brand distributions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.adtech.audio import StreamSession
from repro.core.experiment import AuditDataset
from repro.web.openwpm import AdRecord

__all__ = [
    "ExclusiveAd",
    "DisplayAdAnalysis",
    "analyze_display_ads",
    "TranscriptEntry",
    "transcribe_session",
    "extract_audio_ads",
    "AudioAdAnalysis",
    "analyze_audio_ads",
    "vendor_retargeting_check",
]

# --------------------------------------------------------------------- #
# Display ads (§5.3)
# --------------------------------------------------------------------- #

#: Product-keyword → skill-keyword thesaurus standing in for the human
#: coder's judgement of "same industry as the installed skill".
_RELEVANCE_THESAURUS: Mapping[str, Tuple[str, ...]] = {
    "dehumidifier": ("air quality",),
    "essential oils": ("essential oil",),
    "vacuum": ("dyson",),
    "security": ("simplisafe",),
    "vehicle": ("ford", "jeep", "genesis", "tesla", "garmin"),
    "pickup": ("ford",),
}


@dataclass(frozen=True)
class ExclusiveAd:
    """An ad creative that appeared in exactly one persona."""

    persona: str
    advertiser: str
    product: str
    impressions: int
    iterations: int
    #: Human-coder judgement: apparent relevance to the persona's skills.
    apparent_relevance: bool
    related_skill: Optional[str]


@dataclass
class DisplayAdAnalysis:
    """§5.3 results."""

    total_ads: int
    #: Ads from installed skills' vendors, counted in the persona whose
    #: skill shares the vendor (the paper's 79).
    vendor_ad_counts: Dict[Tuple[str, str], int]  # (persona, advertiser) -> count
    #: Whether any vendor ad was exclusive to the persona with the skill.
    vendor_ads_exclusive: bool
    #: Amazon ads filtered per persona (the paper's 255).
    amazon_ad_count: int
    #: Amazon ads exclusive to a single persona, with relevance labels.
    exclusive_amazon_ads: List[ExclusiveAd]


def analyze_display_ads(
    dataset: AuditDataset,
    vendors_by_persona: Mapping[str, Set[str]],
    skills_by_persona: Mapping[str, Sequence[str]],
) -> DisplayAdAnalysis:
    """Run the §5.3 pipeline over collected ads.

    ``vendors_by_persona`` and ``skills_by_persona`` come from the
    marketplace listings of each persona's installed skills (vendor
    names and skill names respectively).
    """
    echo_personas = [
        a for a in dataset.personas.values() if a.persona.kind != "web"
    ]
    total = sum(len(a.ads) for a in echo_personas)

    # Which personas saw each creative (exclusivity check).
    creative_personas: Dict[str, Set[str]] = defaultdict(set)
    for artifacts in echo_personas:
        for ad in artifacts.ads:
            creative_personas[ad.creative.creative_id].add(artifacts.persona.name)

    vendor_counts: Counter = Counter()
    vendor_exclusive = False
    amazon_count = 0
    amazon_by_persona: Dict[Tuple[str, str, str], List[AdRecord]] = defaultdict(list)

    for artifacts in echo_personas:
        persona = artifacts.persona.name
        vendors = {v.lower() for v in vendors_by_persona.get(persona, set())}
        for ad in artifacts.ads:
            advertiser = ad.creative.advertiser
            if advertiser == "Amazon":
                amazon_count += 1
                amazon_by_persona[(persona, advertiser, ad.creative.product)].append(ad)
            elif any(advertiser.lower() in v or v in advertiser.lower() for v in vendors):
                vendor_counts[(persona, advertiser)] += 1
                if creative_personas[ad.creative.creative_id] == {persona}:
                    vendor_exclusive = True

    exclusive: List[ExclusiveAd] = []
    for (persona, advertiser, product), ads in sorted(amazon_by_persona.items()):
        creative_id = ads[0].creative.creative_id
        if creative_personas[creative_id] != {persona}:
            continue
        relevance, related = _judge_relevance(product, skills_by_persona.get(persona, ()))
        exclusive.append(
            ExclusiveAd(
                persona=persona,
                advertiser=advertiser,
                product=product,
                impressions=len(ads),
                iterations=len({a.iteration for a in ads}),
                apparent_relevance=relevance,
                related_skill=related,
            )
        )
    return DisplayAdAnalysis(
        total_ads=total,
        vendor_ad_counts=dict(vendor_counts),
        vendor_ads_exclusive=vendor_exclusive,
        amazon_ad_count=amazon_count,
        exclusive_amazon_ads=exclusive,
    )


def _judge_relevance(
    product: str, skill_names: Sequence[str]
) -> Tuple[bool, Optional[str]]:
    """The simulated human coder's relevance call (condition iii)."""
    lowered = product.lower()
    names = [s.lower() for s in skill_names]
    for keyword, skill_keywords in _RELEVANCE_THESAURUS.items():
        if keyword not in lowered:
            continue
        for skill_keyword in skill_keywords:
            for name in names:
                if skill_keyword in name:
                    return True, name
    return False, None


def vendor_retargeting_check(
    dataset: AuditDataset,
    vendors_by_persona: Mapping[str, Set[str]],
) -> Dict[str, bool]:
    """§6.2: do any skill vendors *re-target* ads at the personas that
    installed their skills?

    Returns vendor → True when the vendor's ads appeared exclusively in
    personas holding its skill (the retargeting signature).  The paper
    finds none — evidence that Amazon is not sharing data with skills.
    """
    vendor_personas: Dict[str, Set[str]] = defaultdict(set)
    for artifacts in dataset.personas.values():
        if artifacts.persona.kind == "web":
            continue
        for ad in artifacts.ads:
            advertiser = ad.creative.advertiser
            if advertiser == "Amazon" or ad.creative.source == "generic":
                continue
            vendor_personas[advertiser].add(artifacts.persona.name)

    verdicts: Dict[str, bool] = {}
    for advertiser, seen_in in vendor_personas.items():
        holders = {
            persona
            for persona, vendors in vendors_by_persona.items()
            if any(
                advertiser.lower() in v.lower() or v.lower() in advertiser.lower()
                for v in vendors
            )
        }
        if not holders:
            continue
        verdicts[advertiser] = seen_in <= holders  # exclusivity = retargeting
    return verdicts


# --------------------------------------------------------------------- #
# Audio ads (§5.4)
# --------------------------------------------------------------------- #

_AD_MARKERS = ("brought to you by", "visit our store")


@dataclass(frozen=True)
class TranscriptEntry:
    """One transcribed stretch of recorded audio."""

    start: float
    text: str


def transcribe_session(session: StreamSession) -> List[TranscriptEntry]:
    """Automated transcription of a recorded session (§3.3)."""
    return [
        TranscriptEntry(start=segment.start, text=segment.audio_text)
        for segment in session.segments
    ]


def extract_audio_ads(transcript: Sequence[TranscriptEntry]) -> List[str]:
    """Manual ad extraction, simulated: find sponsorship language and
    recover the advertised brand."""
    brands: List[str] = []
    for entry in transcript:
        lowered = entry.text.lower()
        if not any(marker in lowered for marker in _AD_MARKERS):
            continue
        # "... brought to you by <brand> visit our store today"
        after = lowered.split("brought to you by", 1)
        if len(after) != 2:
            continue
        brand = after[1].split("visit our store")[0].strip()
        if brand:
            brands.append(brand)
    return brands


@dataclass
class AudioAdAnalysis:
    """§5.4 results."""

    #: (skill, persona) -> ad count.
    counts: Dict[Tuple[str, str], int]
    #: (skill, persona) -> brand -> count (Figure 5, brands with >= 2 plays).
    brand_distributions: Dict[Tuple[str, str], Dict[str, int]]
    total_ads: int
    #: Share of all ads upselling the streaming services' premium tiers.
    premium_upsell_share: float

    def skill_fractions(self) -> Dict[Tuple[str, str], float]:
        """Table 9: per-skill fraction of ads by persona."""
        totals: Dict[str, int] = defaultdict(int)
        for (skill, _persona), count in self.counts.items():
            totals[skill] += count
        return {
            (skill, persona): count / totals[skill] if totals[skill] else 0.0
            for (skill, persona), count in self.counts.items()
        }

    def exclusive_brands(self, skill: str, persona: str) -> Set[str]:
        """Brands streamed only to ``persona`` on ``skill``."""
        mine = set(self.brand_distributions.get((skill, persona), {}))
        for (other_skill, other_persona), brands in self.brand_distributions.items():
            if other_skill == skill and other_persona != persona:
                mine -= set(brands)
        return mine


def analyze_audio_ads(
    dataset: AuditDataset, min_repetitions: int = 2
) -> AudioAdAnalysis:
    """Transcribe + label every recorded session, then aggregate."""
    counts: Dict[Tuple[str, str], int] = {}
    distributions: Dict[Tuple[str, str], Dict[str, int]] = {}
    total = 0
    premium = 0
    for artifacts in dataset.personas.values():
        for session in artifacts.audio_sessions:
            transcript = transcribe_session(session)
            brands = extract_audio_ads(transcript)
            key = (session.skill_name, session.persona)
            counts[key] = counts.get(key, 0) + len(brands)
            total += len(brands)
            premium += sum(
                1 for b in brands if "premium" in b or "unlimited" in b
            )
            tally = Counter(brands)
            kept = {
                brand: count
                for brand, count in tally.items()
                if count >= min_repetitions
            }
            if kept:
                merged = distributions.setdefault(key, {})
                for brand, count in kept.items():
                    merged[brand] = merged.get(brand, 0) + count
    return AudioAdAnalysis(
        counts=counts,
        brand_distributions=distributions,
        total_ads=total,
        premium_upsell_share=premium / total if total else 0.0,
    )
