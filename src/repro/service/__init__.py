"""Audit-as-a-service: run measurement campaigns over HTTP.

The paper's audit framework is useful to people who don't want to drive
a Python API: this package turns a :class:`~repro.core.campaign.
CampaignSpec` — the one serializable description of a campaign — into a
job you can submit, watch, and download over plain HTTP.

Three layers, one per module:

* :mod:`repro.service.jobs` — durable job state.  Each job owns a
  directory (spec, state, event log, exports, checkpoint/segment
  namespaces); state writes are atomic, so a killed service recovers
  every in-flight job on restart and resumes it from its own
  crash-safe checkpoints.
* :mod:`repro.service.scheduler` — fair-share execution.  Strict-FIFO
  admission under a worker-token budget bounds total concurrency while
  letting multiple tenants' campaigns (different seeds, isolated
  namespaces) run side by side.
* :mod:`repro.service.app` — the HTTP surface.  Stdlib
  ``ThreadingHTTPServer``; submit specs as JSON, tail progress as
  Server-Sent Events, download export files whose bytes are identical
  to a local ``repro run`` of the same spec.

Start one from the CLI (``repro serve --root jobs/``) or in process::

    from repro.service import AuditService
    with AuditService("jobs", port=0, total_workers=4) as service:
        print(service.url)
"""

from repro.service.app import AuditService
from repro.service.jobs import (
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobEventWriter,
    JobStore,
    SubmitError,
)
from repro.service.scheduler import CampaignScheduler, worker_cost

__all__ = [
    "AuditService",
    "CampaignScheduler",
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "Job",
    "JobEventWriter",
    "JobStore",
    "SubmitError",
    "TERMINAL_STATES",
    "worker_cost",
]
