"""Exports must pin UTF-8 explicitly on every file they write.

Without an explicit ``encoding=``, Python falls back to the locale's
preferred encoding — exports produced on a C.UTF-8 CI runner and a
cp1252 Windows box would differ byte-for-byte (and non-ASCII skill or
advertiser names would crash outright).  These tests spy on the two
write primitives the export layer uses and fail if any write slips
through without UTF-8 pinned.
"""

from pathlib import Path

from repro.core.export import EXPORT_FILES, export_dataset, export_segment_store
from repro.core.segments import SegmentStore, write_dataset_segments


def _spy_writes(monkeypatch):
    """Record (path, encoding) for every text-mode write through Path."""
    writes = []
    real_open = Path.open
    real_write_text = Path.write_text

    def spy_open(self, mode="r", *args, **kwargs):
        if "w" in mode and "b" not in mode:
            writes.append((self.name, kwargs.get("encoding")))
        return real_open(self, mode, *args, **kwargs)

    def spy_write_text(self, data, *args, **kwargs):
        writes.append((self.name, kwargs.get("encoding")))
        return real_write_text(self, data, *args, **kwargs)

    monkeypatch.setattr(Path, "open", spy_open)
    monkeypatch.setattr(Path, "write_text", spy_write_text)
    return writes


class TestExportEncoding:
    def test_export_dataset_pins_utf8_everywhere(
        self, small_dataset, tmp_path, monkeypatch
    ):
        writes = _spy_writes(monkeypatch)
        export_dataset(small_dataset, tmp_path)
        written = {name for name, _ in writes}
        assert set(EXPORT_FILES) <= written
        offenders = [name for name, enc in writes if enc != "utf-8"]
        assert not offenders, f"writes without encoding='utf-8': {offenders}"

    def test_export_segment_store_pins_utf8_everywhere(
        self, small_dataset, tmp_path, monkeypatch
    ):
        store = SegmentStore(
            tmp_path / "store",
            7,
            "enc0000000000000",
            tuple(small_dataset.personas),
        )
        write_dataset_segments(store, small_dataset)
        writes = _spy_writes(monkeypatch)
        export_segment_store(store, tmp_path / "out")
        written = {name for name, _ in writes}
        assert set(EXPORT_FILES) <= written
        offenders = [name for name, enc in writes if enc != "utf-8"]
        assert not offenders, f"writes without encoding='utf-8': {offenders}"

    def test_summary_json_decodes_as_utf8(self, small_dataset, tmp_path):
        export_dataset(small_dataset, tmp_path)
        # Decodes strictly as UTF-8 — independent of the locale default.
        (tmp_path / "summary.json").read_bytes().decode("utf-8", errors="strict")
