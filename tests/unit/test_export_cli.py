"""Tests for results export and the CLI."""

import csv
import json

import pytest

from repro.cli import build_parser, main
from repro.core.export import EXPORT_FILES, export_dataset, export_summary


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, small_dataset, tmp_path_factory):
        out = tmp_path_factory.mktemp("export")
        counts = export_dataset(small_dataset, out)
        return out, counts

    def test_all_files_written(self, exported):
        out, counts = exported
        for name in EXPORT_FILES:
            assert (out / name).exists(), name
            assert counts[name] >= 1

    def test_bids_csv_matches_dataset(self, exported, small_dataset):
        out, counts = exported
        expected = sum(len(a.bids) for a in small_dataset.personas.values())
        assert counts["bids.csv"] == expected
        with (out / "bids.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == expected
        assert float(rows[0]["cpm"]) > 0

    def test_sync_events_have_uids(self, exported):
        out, _ = exported
        with (out / "sync_events.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        assert all(r["uid"] for r in rows)

    def test_summary_json_structure(self, exported):
        out, _ = exported
        summary = json.loads((out / "summary.json").read_text())
        assert summary["cookie_sync"]["amazon_outbound"] == 0
        assert "vanilla" in summary["bid_summaries"]
        assert summary["policy_availability"]["total_skills"] == 54

    def test_summary_function_direct(self, small_dataset):
        summary = export_summary(small_dataset)
        assert set(summary["significance_vs_vanilla"]) == {
            p.name
            for p in (a.persona for a in small_dataset.interest_personas)
        }

    def test_export_creates_directory(self, small_dataset, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_dataset(small_dataset, target)
        assert (target / "summary.json").exists()


class TestCli:
    def test_version_command(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_small_exports(self, tmp_path, capsys):
        # Use an even smaller footprint than --small via monkey knobs is
        # overkill; --small finishes in a few seconds.
        code = main(["run", "--small", "--seed", "7", "--out", str(tmp_path / "r")])
        assert code == 0
        assert (tmp_path / "r" / "bids.csv").exists()
        assert "exported" in capsys.readouterr().out

    def test_run_segments_store_matches_memory(self, tmp_path, capsys):
        mem = tmp_path / "mem"
        seg = tmp_path / "seg"
        assert main(["run", "--small", "--seed", "7", "--out", str(mem)]) == 0
        code = main(
            [
                "run", "--small", "--seed", "7",
                "--store", "segments",
                "--store-dir", str(tmp_path / "store"),
                "--out", str(seg),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "segment store" in out
        for name in sorted(p.name for p in mem.iterdir()):
            assert (mem / name).read_bytes() == (seg / name).read_bytes(), name

    def test_run_segments_rejects_cache_flag(self, tmp_path):
        code = main(
            [
                "run", "--small", "--seed", "7", "--cache",
                "--store", "segments", "--out", str(tmp_path / "x"),
            ]
        )
        assert code == 2

    def test_tables_small(self, capsys):
        assert main(["tables", "--small", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "Table 7" in out
        assert "partners syncing with Amazon" in out

    def test_defend(self, capsys):
        assert main(["defend", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "breakage rate" in out

    def test_sync_small(self, capsys):
        assert main(["sync", "--small", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "partners syncing with Amazon" in out

    def test_audio(self, capsys):
        assert main(["audio", "--hours", "0.5", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Pandora" in out

    def test_policheck(self, capsys):
        assert main(["policheck", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 13" in out and "voice recording" in out
