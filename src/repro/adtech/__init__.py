"""The simulated advertising ecosystem: header bidding, DSPs, cookie
syncing, display creatives, and audio-ad insertion."""

from repro.adtech.ads import AdCreative, AdServer
from repro.adtech.audio import AudioAdServer, AudioSegment, StreamSession
from repro.adtech.bidder import AuctionContext, Bidder, WEB_SIGNAL_FRACTION
from repro.adtech.exchange import (
    BIDDERS_PER_SLOT,
    SLOT_FAILURE_RATE,
    AdTechWorld,
    PersonaState,
)
from repro.adtech.prebid import (
    AdUnit,
    BidResponse,
    PrebidSession,
    register_publisher,
    slot_id,
)

__all__ = [
    "AdCreative",
    "AdServer",
    "AdTechWorld",
    "AdUnit",
    "AuctionContext",
    "AudioAdServer",
    "AudioSegment",
    "BIDDERS_PER_SLOT",
    "Bidder",
    "BidResponse",
    "PersonaState",
    "PrebidSession",
    "SLOT_FAILURE_RATE",
    "StreamSession",
    "WEB_SIGNAL_FRACTION",
    "register_publisher",
    "slot_id",
]
