"""Tests for audio-ad insertion and streaming sessions."""

import pytest

from repro.adtech.audio import AudioAdServer, AudioSegment, StreamSession
from repro.data import categories as cat
from repro.util.rng import Seed


@pytest.fixture(scope="module")
def server():
    return AudioAdServer(Seed(17))


class TestStreamSessions:
    def test_session_fills_requested_hours(self, server):
        session = server.stream("Spotify", cat.FASHION, hours=2.0)
        total = sum(s.duration for s in session.segments)
        assert total >= 2.0 * 3600.0

    def test_segments_contiguous(self, server):
        session = server.stream("Pandora", cat.VANILLA, hours=1.0)
        elapsed = 0.0
        for segment in session.segments:
            assert segment.start == pytest.approx(elapsed)
            elapsed += segment.duration

    def test_songs_and_ads_interleaved(self, server):
        session = server.stream("Spotify", cat.FASHION, hours=6.0)
        kinds = [s.kind for s in session.segments]
        assert "ad" in kinds and "song" in kinds
        # Never two consecutive ads (insertion happens between songs).
        for a, b in zip(kinds, kinds[1:]):
            assert not (a == "ad" and b == "ad")

    def test_ad_rate_tracks_calibration(self, server):
        fashion = server.stream("Spotify", cat.FASHION, hours=6.0)
        cc = server.stream("Spotify", cat.CONNECTED_CAR, hours=6.0)
        # Table 9: Connected Car draws far fewer Spotify ads.
        assert len(cc.ad_segments) * 3 < len(fashion.ad_segments)

    def test_deterministic(self):
        a = AudioAdServer(Seed(1)).stream("Pandora", cat.FASHION, hours=1.0)
        b = AudioAdServer(Seed(1)).stream("Pandora", cat.FASHION, hours=1.0)
        assert [s.label for s in a.segments] == [s.label for s in b.segments]

    def test_unknown_skill_rejected(self, server):
        with pytest.raises(KeyError):
            server.stream("Tidal", cat.FASHION)

    def test_unknown_persona_rejected(self, server):
        with pytest.raises(KeyError):
            server.stream("Spotify", cat.WINE)

    def test_ad_text_carries_brand(self, server):
        session = server.stream("Amazon Music", cat.VANILLA, hours=6.0)
        for ad in session.ad_segments:
            assert ad.label.lower() in ad.audio_text

    def test_exclusive_brands_respected(self, server):
        vanilla = server.stream("Spotify", cat.VANILLA, hours=6.0)
        brands = {a.label for a in vanilla.ad_segments}
        assert "Ashley" not in brands and "Ross" not in brands

    def test_invalid_segment_kind_rejected(self):
        with pytest.raises(ValueError):
            AudioSegment(kind="jingle", start=0, duration=1, label="x", audio_text="y")
