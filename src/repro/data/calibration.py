"""Calibration tables for the simulated ad economy.

The simulation's generative parameters are derived from the paper's
reported statistics so that re-measuring the simulated world reproduces
the *shape* of every table and figure:

* **Bid levels** (Tables 5/6, Figures 3/6/7): per-persona lognormal
  parameters derived from the paper's median/mean pairs —
  ``mu = ln(median)``, ``sigma = sqrt(2 ln(mean/median))``.
* **Statistical pattern** (Table 7): an *informed-bidder fraction* per
  persona.  An informed bidder draws from the persona's interest
  distribution; an uninformed one from the vanilla distribution.  The
  rank-biserial correlation of the blend is ``q * r_full`` where
  ``r_full = 2 Phi(delta_mu / sqrt(sig_p^2 + sig_v^2)) - 1``, so ``q`` is
  solved per persona from the paper's effect sizes.  This reproduces the
  six-significant / three-not pattern of Table 7.
* **Holiday effect** (Table 6, Figure 3a): a piecewise-linear seasonal
  multiplier peaking before Christmas 2021.
* **Ad catalogs** (Tables 8/9, Figure 5): Amazon house-ad campaigns with
  persona targeting and audio-ad brand catalogs with per-persona weights.
* **Interest inference** (Table 12): rules mapping skill categories to
  Amazon advertising interests by exposure level.
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.data import categories as cat

__all__ = [
    "BidParams",
    "PERSONA_BID_TARGETS",
    "VANILLA_BID_TARGETS",
    "WEB_PERSONA_BID_TARGETS",
    "INFORMED_FRACTION",
    "NON_PARTNER_SIGNAL_FACTOR",
    "bid_params",
    "holiday_factor",
    "holiday_window",
    "N_PARTNERS",
    "N_NON_PARTNERS",
    "N_DOWNSTREAM_THIRD_PARTIES",
    "AMAZON_HOUSE_CAMPAIGNS",
    "VENDOR_CAMPAIGNS",
    "AUDIO_AD_RATE",
    "AUDIO_BRAND_WEIGHTS",
    "PREMIUM_UPSELL_SHARE",
    "INTEREST_RULES",
    "MISSING_INTEREST_FILE_PERSONAS",
]


# --------------------------------------------------------------------- #
# Bid distributions
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BidParams:
    """Lognormal bid distribution in CPM."""

    mu: float
    sigma: float

    @classmethod
    def from_median_mean(cls, median: float, mean: float) -> "BidParams":
        if median <= 0 or mean < median:
            raise ValueError(
                f"need 0 < median <= mean, got median={median}, mean={mean}"
            )
        return cls(mu=math.log(median), sigma=math.sqrt(2.0 * math.log(mean / median)))

    @property
    def median(self) -> float:
        return math.exp(self.mu)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)


#: Table 5 targets: persona -> (median, mean), bids in CPM, with interaction.
PERSONA_BID_TARGETS: Dict[str, Tuple[float, float]] = {
    cat.CONNECTED_CAR: (0.099, 0.267),
    cat.DATING: (0.099, 0.198),
    cat.FASHION: (0.090, 0.403),
    cat.PETS: (0.156, 0.223),
    cat.RELIGION: (0.120, 0.323),
    cat.SMART_HOME: (0.071, 0.218),
    cat.WINE: (0.065, 0.313),
    cat.HEALTH: (0.057, 0.310),
    cat.NAVIGATION: (0.099, 0.255),
}

VANILLA_BID_TARGETS: Tuple[float, float] = (0.030, 0.153)

#: Web control personas (§5.6): targeted like mid-range Echo personas.
WEB_PERSONA_BID_TARGETS: Dict[str, Tuple[float, float]] = {
    cat.WEB_HEALTH: (0.085, 0.260),
    cat.WEB_SCIENCE: (0.080, 0.250),
    cat.WEB_COMPUTERS: (0.062, 0.220),
}

#: Fraction of bidders holding the persona's interest signal, solved from
#: Table 7 effect sizes (q = r_paper / r_full; see module docstring).
#: The three q's below ~0.75 are what make Smart Home, Wine & Beverages,
#: and Health & Fitness statistically indistinguishable from vanilla.
INFORMED_FRACTION: Dict[str, float] = {
    cat.CONNECTED_CAR: 0.89,
    cat.DATING: 0.86,
    cat.FASHION: 0.94,
    cat.PETS: 0.72,
    cat.RELIGION: 0.78,
    cat.SMART_HOME: 0.73,
    cat.WINE: 0.80,
    cat.HEALTH: 0.71,
    cat.NAVIGATION: 1.00,
}

#: Non-partner advertisers (no cookie sync with Amazon) receive the
#: interest signal far less reliably (§5.5, Table 10).
NON_PARTNER_SIGNAL_FACTOR = 0.45


def bid_params(persona_category: str) -> BidParams:
    """Interest-distribution parameters for a persona category."""
    if persona_category == cat.VANILLA:
        median, mean = VANILLA_BID_TARGETS
    elif persona_category in PERSONA_BID_TARGETS:
        median, mean = PERSONA_BID_TARGETS[persona_category]
    elif persona_category in WEB_PERSONA_BID_TARGETS:
        median, mean = WEB_PERSONA_BID_TARGETS[persona_category]
    else:
        raise KeyError(f"no bid calibration for persona {persona_category}")
    return BidParams.from_median_mean(median, mean)


# --------------------------------------------------------------------- #
# Holiday season (Table 6 / Figure 3a)
# --------------------------------------------------------------------- #

_HOLIDAY_RAMP: Tuple[Tuple[_dt.date, float], ...] = (
    (_dt.date(2021, 12, 5), 1.0),
    (_dt.date(2021, 12, 21), 3.5),
    (_dt.date(2021, 12, 28), 1.5),
    (_dt.date(2022, 1, 3), 1.0),
)


def holiday_window() -> Tuple[_dt.date, _dt.date]:
    """First and last anchor dates of the seasonal ramp.

    The multiplier is 1.0 on and outside both endpoints, so a campaign
    whose day range misses ``[start, end]`` sees flat seasonal pricing.
    The timeline layer uses this to report whether each epoch's shifted
    clock still overlaps the holiday surge.
    """
    return _HOLIDAY_RAMP[0][0], _HOLIDAY_RAMP[-1][0]


def holiday_factor(when: _dt.datetime) -> float:
    """Seasonal bid multiplier: ramps to ~3.5x before Christmas 2021.

    Piecewise linear through the anchor points above; 1.0 outside the
    window.  This is the mechanism behind the paper's observation that
    pre-interaction (holiday) bids were as high as post-interaction ones
    (§5.1, Table 6).
    """
    day = when.date()
    if day <= _HOLIDAY_RAMP[0][0] or day >= _HOLIDAY_RAMP[-1][0]:
        return 1.0
    for (d0, f0), (d1, f1) in zip(_HOLIDAY_RAMP, _HOLIDAY_RAMP[1:]):
        if d0 <= day <= d1:
            span = (d1 - d0).days
            progress = (day - d0).days / span
            return f0 + (f1 - f0) * progress
    return 1.0


# --------------------------------------------------------------------- #
# Advertiser population (§5.5)
# --------------------------------------------------------------------- #

#: Advertisers that cookie-sync with Amazon.
N_PARTNERS = 41
#: Advertisers that never sync with Amazon.
N_NON_PARTNERS = 19
#: Distinct downstream third parties the partners sync with.
N_DOWNSTREAM_THIRD_PARTIES = 247


# --------------------------------------------------------------------- #
# Display-ad campaigns (Table 8 / §5.3)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class HouseCampaign:
    """An Amazon house ad targeted at one persona (Table 8)."""

    product: str
    target_persona: str
    #: Impressions across the 25 post-interaction iterations.
    impressions: int
    iterations: int
    #: Whether the paper judged the ad relevant to the persona (green rows).
    apparent_relevance: bool
    related_skill: str = ""


AMAZON_HOUSE_CAMPAIGNS: Tuple[HouseCampaign, ...] = (
    HouseCampaign("Dehumidifier", cat.HEALTH, 7, 5, True, "Air Quality Report"),
    HouseCampaign("Essential oils", cat.HEALTH, 1, 1, True, "Essential Oil Benefits"),
    HouseCampaign("Vacuum cleaner", cat.SMART_HOME, 1, 1, True, "Dyson"),
    HouseCampaign("Vacuum cleaner accessories", cat.SMART_HOME, 1, 1, True, "Dyson"),
    HouseCampaign("Eero WiFi router", cat.RELIGION, 12, 8, False),
    HouseCampaign("Kindle", cat.RELIGION, 14, 4, False),
    HouseCampaign("Swarovski", cat.RELIGION, 2, 2, False),
    HouseCampaign("PC files copying/switching software", cat.PETS, 4, 2, False),
)


@dataclass(frozen=True)
class VendorCampaign:
    """A display campaign from a skill vendor (shown across personas)."""

    advertiser: str
    product: str
    #: Persona whose installed skill shares this vendor.
    skill_persona: str
    impressions: int


VENDOR_CAMPAIGNS: Tuple[VendorCampaign, ...] = (
    VendorCampaign("Microsoft", "Surface laptop", cat.SMART_HOME, 60),
    VendorCampaign("SimpliSafe", "Home security system", cat.SMART_HOME, 12),
    VendorCampaign("Samsung", "Galaxy phone", cat.SMART_HOME, 1),
    VendorCampaign("LG", "OLED TV", cat.SMART_HOME, 1),
    VendorCampaign("Ford", "F-150 pickup", cat.CONNECTED_CAR, 3),
    VendorCampaign("Jeep", "Grand Cherokee", cat.CONNECTED_CAR, 2),
)

#: Generic commercial brands filling the rest of the 20,210 ads.
GENERIC_DISPLAY_BRANDS: Tuple[str, ...] = (
    "StreamFlix", "QuickMeal Kits", "CloudBank", "TravelNow", "FitTrack",
    "HomeChef Box", "AutoQuote Insurance", "GreenEnergy Co", "EduPath",
    "PhotoPrint Plus", "SecureVPN", "CoffeeClub", "PetPantry", "BookNook",
    "GameSphere", "SoundWave Audio", "FreshGrocer", "UrbanWear", "SkyMiles Air",
    "MattressDirect",
)


# --------------------------------------------------------------------- #
# Audio ads (Table 9 / Figure 5)
# --------------------------------------------------------------------- #

#: Expected ads per hour of streaming for (skill, persona).  Calibrated so
#: a 6-hour session roughly reproduces Table 9's per-persona ad fractions
#: (n=289 total): Connected Car on Spotify draws ~1/5 the ads of the
#: other personas.
AUDIO_AD_RATE: Dict[str, Dict[str, float]] = {
    "Amazon Music": {
        cat.CONNECTED_CAR: 5.2,
        cat.FASHION: 5.3,
        cat.VANILLA: 5.0,
    },
    "Spotify": {
        cat.CONNECTED_CAR: 1.3,
        cat.FASHION: 7.5,
        cat.VANILLA: 6.0,
    },
    "Pandora": {
        cat.CONNECTED_CAR: 4.7,
        cat.FASHION: 7.8,
        cat.VANILLA: 5.3,
    },
}

#: Share of Amazon Music and Spotify ads that upsell the premium tier.
PREMIUM_UPSELL_SHARE = 0.17

#: Brand weights per (skill, persona).  A weight only for one persona makes
#: the brand exclusive to it — e.g. Ashley/Ross on Spotify and Swiffer Wet
#: Jet on Pandora are Fashion & Style exclusives (Figure 5).
AUDIO_BRAND_WEIGHTS: Dict[str, Dict[str, Dict[str, float]]] = {
    "Amazon Music": {
        "Amazon Music Unlimited": {cat.CONNECTED_CAR: 1.8, cat.FASHION: 1.8, cat.VANILLA: 1.8},
        "Amazon Pharmacy": {cat.CONNECTED_CAR: 2, cat.FASHION: 2, cat.VANILLA: 2},
        "Audible": {cat.CONNECTED_CAR: 2, cat.FASHION: 2, cat.VANILLA: 2},
        "Wondery": {cat.CONNECTED_CAR: 1.5, cat.FASHION: 1.5, cat.VANILLA: 1.5},
        "Amazon Fresh": {cat.CONNECTED_CAR: 1, cat.FASHION: 1, cat.VANILLA: 1.5},
    },
    "Spotify": {
        "Spotify Premium": {cat.CONNECTED_CAR: 1.8, cat.FASHION: 1.8, cat.VANILLA: 1.8},
        "Ashley": {cat.FASHION: 2.5},
        "Ross": {cat.FASHION: 2.5},
        "State Farm": {cat.CONNECTED_CAR: 1, cat.FASHION: 1, cat.VANILLA: 1.5},
        "McDonald's": {cat.CONNECTED_CAR: 1, cat.FASHION: 1.2, cat.VANILLA: 1.2},
        "Verizon": {cat.CONNECTED_CAR: 0.8, cat.FASHION: 0.8, cat.VANILLA: 1},
    },
    "Pandora": {
        "Swiffer Wet Jet": {cat.FASHION: 2.2},
        "Burlington": {cat.FASHION: 3.0, cat.CONNECTED_CAR: 0.4, cat.VANILLA: 0.5},
        "Kohl's": {cat.FASHION: 2.8, cat.CONNECTED_CAR: 0.4, cat.VANILLA: 0.6},
        "Febreeze car": {cat.CONNECTED_CAR: 1.8},
        "Wendy's": {cat.CONNECTED_CAR: 1, cat.FASHION: 1, cat.VANILLA: 1.2},
        "Progressive": {cat.CONNECTED_CAR: 1.2, cat.FASHION: 0.8, cat.VANILLA: 1},
        "T-Mobile": {cat.CONNECTED_CAR: 0.8, cat.FASHION: 0.8, cat.VANILLA: 1},
    },
}


# --------------------------------------------------------------------- #
# Amazon interest inference (Table 12)
# --------------------------------------------------------------------- #

#: (persona category, exposure level) -> inferred advertising interests.
#: Exposure levels: "installation", "interaction-1", "interaction-2".
INTEREST_RULES: Mapping[Tuple[str, str], Tuple[str, ...]] = {
    (cat.HEALTH, "installation"): ("Electronics", "Home & Garden: DIY & Tools"),
    (cat.HEALTH, "interaction-1"): ("Home & Garden: DIY & Tools",),
    (cat.FASHION, "interaction-1"): (
        "Beauty & Personal Care",
        "Fashion",
        "Video Entertainment",
    ),
    (cat.FASHION, "interaction-2"): ("Fashion", "Video Entertainment"),
    (cat.SMART_HOME, "interaction-1"): (
        "Electronics",
        "Home & Garden: DIY & Tools",
        "Home & Garden: Home & Kitchen",
    ),
    (cat.SMART_HOME, "interaction-2"): (
        "Pet Supplies",
        "Home & Garden: DIY & Tools",
        "Home & Garden: Home & Kitchen",
    ),
}

#: Personas whose advertising-interest file is missing from the second
#: post-interaction data request (§6.1) — including on re-request.
MISSING_INTEREST_FILE_PERSONAS: Tuple[str, ...] = (
    cat.HEALTH,
    cat.WINE,
    cat.RELIGION,
    cat.DATING,
    cat.VANILLA,
)
