"""echo-audit: an auditing framework for tracking, profiling, and ad
targeting in a simulated Amazon Echo smart speaker ecosystem.

Reproduction of Iqbal et al., *"Your Echos are Heard: Tracking,
Profiling, and Ad Targeting in the Amazon Smart Speaker Ecosystem"*
(IMC 2023).

Quickstart::

    from repro import CampaignSpec, ExperimentConfig, run_campaign
    from repro.core import bid_summary_table, detect_cookie_syncing

    spec = CampaignSpec(config=ExperimentConfig(), seed=42)
    dataset = run_campaign(spec)
    for row in bid_summary_table(dataset):
        print(row.persona, row.summary.median, row.summary.mean)
    sync = detect_cookie_syncing(dataset)
    print(sync.partner_count, "advertisers sync cookies with Amazon")
    print(dataset.obs.summary()["counters"])  # the campaign trace

Or over HTTP — ``repro serve`` starts the audit service and any client
that can POST the spec's JSON gets the same campaign, byte-identical
(see :mod:`repro.service`).

Package map:

- :mod:`repro.core` — the auditing framework (experiment + analyses)
- :mod:`repro.service` — audit-as-a-service HTTP layer (jobs, scheduler)
- :mod:`repro.obs` — seeded-deterministic observability (spans, metrics)
- :mod:`repro.alexa` — simulated Echo ecosystem (devices, cloud, DSAR)
- :mod:`repro.adtech` — header bidding, DSPs, cookie sync, audio ads
- :mod:`repro.web` — browsers and the OpenWPM-style crawler
- :mod:`repro.netsim` — packets, TLS opacity, DNS, router, captures
- :mod:`repro.orgmap` — entity lists, WHOIS, filter lists
- :mod:`repro.policies` — policy corpus + PoliCheck analysis
- :mod:`repro.data` — the seeded world and its calibration tables

``repro.__all__`` is the supported public surface: every name in it is
importable from ``repro`` directly, documented in ``docs/API.md``, and
covered by the semantic-versioning promise (``__version__``, which
``pyproject.toml`` derives its package version from).
"""

from repro.core.campaign import CampaignSpec, execute_spec, run_campaign
from repro.core.experiment import ExperimentConfig
from repro.util.rng import Seed

__version__ = "1.8.0"

__all__ = [
    "CampaignSpec",
    "ExperimentConfig",
    "Seed",
    "__version__",
    "execute_spec",
    "run_campaign",
]
