"""Persona-sharded parallel campaign runner.

The serial campaign (:func:`repro.core.experiment.run_experiment`) is a
single pass over the full persona roster.  But personas are measurement
*units*: every per-persona artifact is derived from seed-keyed random
substreams (:class:`~repro.util.rng.Seed`, :class:`~repro.util.rng.StreamFamily`),
never from call order, so a persona's artifacts are identical whether or
not other personas share its world.  That invariance is what this module
exploits: partition the roster into contiguous shards, run each shard in
its own worker against a private world built from the same root seed,
then merge the shard artifacts back — deterministically — into one
:class:`~repro.core.experiment.AuditDataset` whose exported form is
bit-identical to the serial run's.

Determinism rules the merge relies on:

* shards are contiguous slices of the canonical ``all_personas()``
  order, so re-inserting personas in that order reproduces the serial
  dataset's dict ordering (exports iterate insertion order);
* site discovery is seed-determined, so every shard discovers the same
  prebid/crawl sets — the merge asserts this instead of trusting it;
* policy fetches are collected per interest persona in roster order, so
  concatenating shard lists in shard order matches the serial list.

Workers return :class:`ShardResult`, a world-free bundle that pickles
cleanly for the process backend (a live world holds service closures,
which do not pickle).  The merged dataset carries a fresh
``build_world(seed)`` as its generative-truth handle.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.experiment import (
    AuditDataset,
    ExperimentConfig,
    ExperimentRunner,
    PersonaArtifacts,
    PolicyFetch,
)
from repro.core.personas import Persona, all_personas
from repro.core.world import build_world
from repro.data.websites import WebsiteSpec
from repro.obs import ObsCollector, merge_collectors
from repro.util.rng import Seed

__all__ = [
    "BACKENDS",
    "ShardResult",
    "parallel_map",
    "shard_personas",
    "merge_shard_results",
    "run_parallel_experiment",
]

#: Worker backends: "process" sidesteps the GIL (the campaign is pure
#: Python, so threads add no speedup); "thread" avoids fork/pickle cost
#: and is what the determinism tests exercise cheaply.
BACKENDS = ("process", "thread")


def parallel_map(fn, items, workers=None, backend="thread"):
    """Order-preserving map with optional worker fan-out.

    ``workers=None`` (or ``<= 1``) runs serially in the caller's thread —
    the default.  With more workers the items are mapped across a thread
    or process pool, but results always come back in *input* order, not
    completion order, so downstream aggregation stays deterministic
    either way.  The process backend requires ``fn`` and every item to
    pickle; shared mutable state on ``fn`` (e.g. memo caches) is only
    shared under the thread backend.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    executor_cls = (
        ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    )
    with executor_cls(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


@dataclass
class ShardResult:
    """World-free, picklable artifact bundle from one shard worker."""

    shard_index: int
    persona_names: List[str]
    personas: Dict[str, PersonaArtifacts]
    prebid_sites: List[WebsiteSpec]
    crawl_sites: List[WebsiteSpec]
    policy_fetches: List[PolicyFetch]
    timings: Dict[str, float] = field(default_factory=dict)
    #: Per-shard observability collector (None when tracing was off).
    #: Collectors are world-free, so they pickle across the process
    #: boundary with the rest of the bundle.
    obs: Optional[ObsCollector] = None


def shard_personas(
    personas: Sequence[Persona], num_shards: int
) -> List[List[Persona]]:
    """Partition ``personas`` into ≤ ``num_shards`` contiguous slices.

    Slices preserve the input order and differ in size by at most one,
    with the larger slices first.  The partition depends only on
    ``(len(personas), num_shards)`` — no randomness, no wall clock — so
    the same inputs always produce the same shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    personas = list(personas)
    if not personas:
        raise ValueError("cannot shard an empty persona list")
    num_shards = min(num_shards, len(personas))
    base, extra = divmod(len(personas), num_shards)
    shards: List[List[Persona]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(personas[start : start + size])
        start += size
    return shards


def _run_shard(
    shard_index: int,
    seed: Seed,
    config: ExperimentConfig,
    persona_names: Sequence[str],
    collect_obs: bool = False,
) -> ShardResult:
    """Run the campaign for one persona subset in a private world.

    Module-level (not a closure) so the process backend can pickle it.
    The world is rebuilt inside the worker from the shared root seed:
    worlds hold unpicklable service closures and must never cross the
    process boundary.  With ``collect_obs`` the worker traces into a
    fresh :class:`~repro.obs.ObsCollector` that rides back on the result.
    """
    roster = {p.name: p for p in all_personas()}
    unknown = [n for n in persona_names if n not in roster]
    if unknown:
        raise ValueError(f"unknown personas in shard {shard_index}: {unknown}")
    personas = [roster[name] for name in persona_names]
    # Faults come from the root seed (never shard order): every shard's
    # FaultPlan draws identical per-(actor, domain) schedules, which is
    # what keeps faulted parallel runs byte-identical to serial.
    world = build_world(seed, faults=config.fault_profile)
    obs = ObsCollector() if collect_obs else None
    dataset = ExperimentRunner(world, config, personas=personas, obs=obs).run()
    return ShardResult(
        shard_index=shard_index,
        persona_names=list(persona_names),
        personas=dataset.personas,
        prebid_sites=dataset.prebid_sites,
        crawl_sites=dataset.crawl_sites,
        policy_fetches=dataset.policy_fetches,
        timings=dataset.timings,
        obs=dataset.obs,
    )


def merge_shard_results(
    seed: Seed,
    results: Sequence[ShardResult],
    fault_profile: Optional[str] = None,
) -> AuditDataset:
    """Deterministically reassemble shard results into one dataset.

    Sorts by shard index (results may arrive in any completion order),
    asserts cross-shard agreement on the discovered site sets, and
    inserts personas in canonical roster order so the merged dict —
    and therefore every export that iterates it — matches the serial
    run exactly.
    """
    if not results:
        raise ValueError("no shard results to merge")
    ordered = sorted(results, key=lambda r: r.shard_index)
    indices = [r.shard_index for r in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices: {indices}")

    reference = ordered[0]
    for result in ordered[1:]:
        if (
            result.prebid_sites != reference.prebid_sites
            or result.crawl_sites != reference.crawl_sites
        ):
            raise RuntimeError(
                "shards disagree on discovered sites — the world build is "
                f"not seed-deterministic (shard {result.shard_index} vs "
                f"shard {reference.shard_index})"
            )

    by_name: Dict[str, PersonaArtifacts] = {}
    for result in ordered:
        for name, artifacts in result.personas.items():
            if name in by_name:
                raise ValueError(f"persona {name!r} appears in two shards")
            by_name[name] = artifacts

    personas: Dict[str, PersonaArtifacts] = {}
    for persona in all_personas():
        if persona.name in by_name:
            personas[persona.name] = by_name.pop(persona.name)
    personas.update(by_name)  # custom personas outside the roster, if any

    policy_fetches: List[PolicyFetch] = []
    timings: Dict[str, float] = {}
    for result in ordered:
        policy_fetches.extend(result.policy_fetches)
        for phase, seconds in result.timings.items():
            timings[f"shard{result.shard_index}.{phase}"] = seconds

    obs = None
    if all(result.obs is not None for result in ordered):
        obs = merge_collectors(
            [result.obs for result in ordered],
            roster=[p.name for p in all_personas()],
        )

    return AuditDataset(
        personas=personas,
        prebid_sites=list(reference.prebid_sites),
        crawl_sites=list(reference.crawl_sites),
        policy_fetches=policy_fetches,
        world=build_world(seed, faults=fault_profile),
        timings=timings,
        obs=obs,
    )


def _run_parallel_experiment(
    seed: Seed,
    config: ExperimentConfig = ExperimentConfig(),
    workers: int = 2,
    backend: str = "process",
    collect_obs: bool = False,
) -> AuditDataset:
    """Run the campaign sharded by persona across ``workers`` workers.

    Internal parallel engine behind :func:`repro.core.run_campaign`.
    The exported form of the returned dataset is bit-identical to the
    serial campaign's for any worker count and either backend — see
    ``tests/integration/test_parallel_equivalence.py`` — and with
    ``collect_obs`` the merged trace's simulated-time span tree is
    byte-identical too (``tests/integration/test_obs_equivalence.py``).
    Worker-local wall-clock lands in ``dataset.timings`` under
    ``shard<i>.<phase>`` keys, plus ``scatter`` (shard fan-out and
    collection) and ``total`` for the whole parallel run.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")

    started = time.perf_counter()
    shards = shard_personas(all_personas(), workers)
    executor_cls = (
        ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    )
    if len(shards) == 1:
        # One shard is the serial campaign; skip the executor entirely.
        results = [
            _run_shard(0, seed, config, [p.name for p in shards[0]], collect_obs)
        ]
    else:
        with executor_cls(max_workers=len(shards)) as pool:
            futures = [
                pool.submit(
                    _run_shard,
                    index,
                    seed,
                    config,
                    [p.name for p in shard],
                    collect_obs,
                )
                for index, shard in enumerate(shards)
            ]
            results = [future.result() for future in futures]
    scatter_elapsed = time.perf_counter() - started

    dataset = merge_shard_results(seed, results, fault_profile=config.fault_profile)
    dataset.timings["scatter"] = scatter_elapsed
    dataset.timings["total"] = time.perf_counter() - started
    return dataset


def run_parallel_experiment(
    seed: Seed,
    config: ExperimentConfig = ExperimentConfig(),
    workers: int = 2,
    backend: str = "process",
) -> AuditDataset:
    """Deprecated alias — use ``run_campaign(config, seed, parallel=True)``."""
    warnings.warn(
        "run_parallel_experiment(seed, config) is deprecated; use "
        "run_campaign(config, seed, parallel=True, workers=..., "
        "backend=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_parallel_experiment(seed, config, workers=workers, backend=backend)
