"""Combined IP/domain → organization resolution pipeline.

Reproduces §3.2 "Inferring origin": resolve IPs to domains using DNS
answers observed on the wire, then map domains to parent organizations
using the entity database first and WHOIS as a fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.dns import DnsTable
from repro.orgmap.entity_db import EntityDatabase, OrgEntity
from repro.orgmap.whois import WhoisService

__all__ = ["Attribution", "OrgResolver", "UNKNOWN_ORG"]

UNKNOWN_ORG = "Unknown"


@dataclass(frozen=True)
class Attribution:
    """Result of attributing a network flow to an organization.

    ``source`` records which evidence chain produced the answer —
    useful both for auditing the auditor and for the paper's observation
    that the ecosystem is opaque.
    """

    domain: Optional[str]
    organization: str
    source: str  # "entity-db" | "whois" | "unresolved"
    entity: Optional[OrgEntity] = None

    @property
    def resolved(self) -> bool:
        return self.organization != UNKNOWN_ORG


class OrgResolver:
    """Attribute flows seen in captures to parent organizations.

    Resolution is memoized per domain: the campaign re-sees the same few
    hundred domains across hundreds of thousands of flows, and both the
    entity database and WHOIS answers are immutable for a built world, so
    every repeat lookup is a dict hit.  ``cache_hits`` feeds the
    ``analysis.domain_cache_hits`` observability counter; pass
    ``memoize=False`` to reproduce the uncached pre-optimization cost
    (the perf benchmark's legacy baseline).
    """

    def __init__(
        self,
        entity_db: EntityDatabase,
        whois: Optional[WhoisService] = None,
        memoize: bool = True,
    ) -> None:
        self._entity_db = entity_db
        self._whois = whois
        self._memoize = memoize
        self._cache: Dict[str, Attribution] = {}
        #: Memoized lookups served without re-resolving.
        self.cache_hits = 0

    def attribute_domain(self, domain: str) -> Attribution:
        """Map a domain name to its parent organization (memoized)."""
        if self._memoize:
            cached = self._cache.get(domain)
            if cached is not None:
                self.cache_hits += 1
                return cached
        attribution = self._attribute_domain_uncached(domain)
        if self._memoize:
            self._cache[domain] = attribution
        return attribution

    def _attribute_domain_uncached(self, domain: str) -> Attribution:
        entity = self._entity_db.entity_for_domain(domain)
        if entity is not None:
            return Attribution(
                domain=domain,
                organization=entity.name,
                source="entity-db",
                entity=entity,
            )
        if self._whois is not None:
            record = self._whois.lookup(domain)
            if record is not None and not record.is_redacted:
                return Attribution(
                    domain=domain,
                    organization=record.registrant_org,
                    source="whois",
                )
        return Attribution(domain=domain, organization=UNKNOWN_ORG, source="unresolved")

    def attribute_ip(
        self,
        ip: str,
        dns_table: DnsTable,
        sni: Optional[str] = None,
    ) -> Attribution:
        """Map a remote IP to an organization.

        Prefers the DNS answer observed in the capture; falls back to the
        TLS SNI when the DNS exchange was missed (e.g. cached by the
        device), as the paper does.
        """
        domain = dns_table.domain_for_ip(ip) or sni
        if domain is None:
            return Attribution(domain=None, organization=UNKNOWN_ORG, source="unresolved")
        return self.attribute_domain(domain)
