"""Tests for voice-derived trait inference (the patent-[69] model)."""

import pytest

from repro.alexa import AVSEcho, AlexaCloud, AmazonAccount, Marketplace
from repro.alexa.voice_traits import (
    AGE_BANDS,
    HEALTH_MARKERS,
    SpeakerProfile,
    TraitInference,
    traits_exposed,
)
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.defenses import LocalProcessingEcho
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed


class TestSpeakerProfile:
    def test_deterministic_per_speaker(self):
        a = SpeakerProfile.derive(Seed(1), "alice@example.com")
        b = SpeakerProfile.derive(Seed(1), "alice@example.com")
        assert a == b

    def test_differs_across_speakers(self):
        profiles = {
            SpeakerProfile.derive(Seed(1), f"user{i}@example.com")
            for i in range(20)
        }
        assert len(profiles) > 5

    def test_fields_in_vocabulary(self):
        profile = SpeakerProfile.derive(Seed(2), "x@example.com")
        assert profile.age_band in AGE_BANDS
        assert profile.health_marker in HEALTH_MARKERS

    def test_signal_roundtrip(self):
        profile = SpeakerProfile.derive(Seed(3), "y@example.com")
        signal = profile.as_signal()
        assert signal["age_band"] == profile.age_band
        assert set(signal) == {"age_band", "mood", "health_marker", "accent"}


class TestTraitInference:
    def test_needs_corroboration(self):
        inference = TraitInference(min_observations=3)
        signal = {"mood": "tired", "health_marker": "cough"}
        inference.observe("C1", signal)
        inference.observe("C1", signal)
        assert inference.inferred_traits("C1") == {}
        inference.observe("C1", signal)
        assert inference.inferred_traits("C1") == {
            "mood": "tired",
            "health_marker": "cough",
        }

    def test_healthy_marker_never_inferred(self):
        inference = TraitInference(min_observations=1)
        inference.observe("C1", {"health_marker": "none"})
        assert inference.inferred_traits("C1") == {}

    def test_cough_targets_cough_drops(self):
        inference = TraitInference(min_observations=1)
        inference.observe("C1", {"health_marker": "cough"})
        assert "Cough drops" in inference.targetable_products("C1")

    def test_customers_isolated(self):
        inference = TraitInference(min_observations=1)
        inference.observe("C1", {"mood": "stressed"})
        assert inference.inferred_traits("C2") == {}


@pytest.fixture
def rig():
    seed = Seed(83)
    router = Router(build_endpoint_registry(), SimClock())
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, router.clock, seed)
    marketplace = Marketplace(catalog, cloud)
    return seed, router, catalog, cloud, marketplace


class TestDevicePipeline:
    def test_stock_device_leaks_traits(self, rig):
        seed, router, catalog, cloud, marketplace = rig
        account = AmazonAccount(email="leaky@example.com", persona="leaky")
        device = AVSEcho("avs-traits", account, router, cloud, seed)
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        device.run_skill_session(spec)
        exposed = traits_exposed(device.plaintext_log)
        assert exposed.get("age_band", 0) > 0
        assert exposed.get("health_marker", 0) > 0

    def test_local_voice_defense_leaks_nothing(self, rig):
        seed, router, catalog, cloud, marketplace = rig
        account = AmazonAccount(email="safe@example.com", persona="safe")
        device = LocalProcessingEcho("lv-traits", account, router, cloud, seed)
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        device.run_skill_session(spec)
        assert traits_exposed(device.plaintext_log) == {}

    def test_platform_can_run_patent_inference_on_uploads(self, rig):
        seed, router, catalog, cloud, marketplace = rig
        account = AmazonAccount(email="infer@example.com", persona="infer")
        device = AVSEcho("avs-infer", account, router, cloud, seed)
        spec = catalog.by_name("Sonos")
        marketplace.install(account, spec.skill_id)
        for _ in range(3):
            device.run_skill_session(spec)
        inference = TraitInference()
        for record in device.plaintext_log:
            body = record.payload["body"]
            if body.get("voice_characteristics"):
                inference.observe(account.customer_id, body["voice_characteristics"])
        traits = inference.inferred_traits(account.customer_id)
        assert traits.get("age_band") == device.speaker_profile.age_band
