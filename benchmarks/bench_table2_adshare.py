"""Table 2: distribution of advertising/tracking vs functional traffic by
organization class."""

from repro.core.report import render_table
from repro.core.traffic import analyze_traffic, analyze_traffic_stream


def bench_table2_adshare(benchmark, dataset, world, vendor_by_skill):
    analysis = benchmark.pedantic(
        analyze_traffic,
        args=(dataset, world.org_resolver(), world.filter_list, vendor_by_skill),
        rounds=2,
        iterations=1,
    )
    shares = analysis.ad_tracking_traffic_share()

    paper = {
        ("amazon", False): 0.8893,
        ("amazon", True): 0.0791,
        ("skill vendor", False): 0.0017,
        ("third party", False): 0.0149,
        ("third party", True): 0.0150,
    }
    rows = []
    for key in sorted(set(shares) | set(paper)):
        org_class, is_ad = key
        rows.append(
            (
                org_class,
                "advertising & tracking" if is_ad else "functional",
                f"{100 * shares.get(key, 0.0):.2f}%",
                f"{100 * paper.get(key, 0.0):.2f}%",
            )
        )
    print()
    print(render_table(["org", "traffic class", "measured", "paper"], rows, title="Table 2"))

    amazon_functional = shares.get(("amazon", False), 0)
    amazon_ad = shares.get(("amazon", True), 0)
    third_ad = shares.get(("third party", True), 0)
    # Shape: Amazon dominates; ~5-15% of traffic is A&T overall, with
    # device-metrics making Amazon's A&T share several times the third
    # parties'.
    assert amazon_functional > 0.80
    assert 0.04 < amazon_ad < 0.15
    assert 0.005 < third_ad < 0.03
    assert amazon_ad > third_ad
    total_ad = sum(v for (cls, ad), v in shares.items() if ad)
    assert 0.05 < total_ad < 0.15  # paper: 9.4%


def bench_table2_adshare_stream(
    benchmark, dataset, segment_store, world, vendor_by_skill
):
    """Table 2's traffic shares must be identical off the flow stream."""
    resolver = world.org_resolver()
    reference = analyze_traffic(
        dataset, resolver, world.filter_list, vendor_by_skill
    ).ad_tracking_traffic_share()
    failures = []
    for record in segment_store.iter_stream("personas"):
        failures.extend(record["install_failures"])

    def run():
        return analyze_traffic_stream(
            segment_store.iter_stream("flows"),
            resolver,
            world.filter_list,
            vendor_by_skill,
            install_failures=failures,
        ).ad_tracking_traffic_share()

    shares = benchmark.pedantic(run, rounds=2, iterations=1)
    assert shares == reference
