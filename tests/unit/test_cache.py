"""Unit tests for the on-disk dataset cache (repro.core.cache)."""

import dataclasses
import pickle

import pytest

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    DatasetCache,
    config_fingerprint,
    default_cache_dir,
)
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


@pytest.fixture(autouse=True)
def isolated_memory(monkeypatch):
    """Each test starts with an empty in-process cache."""
    monkeypatch.setattr(DatasetCache, "_memory", {})


def _bid_rows(dataset):
    return [
        (name, b.iteration, b.site, b.slot_id, b.bidder, b.cpm)
        for name, a in dataset.personas.items()
        for b in a.bids
    ]


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert config_fingerprint(TINY) == config_fingerprint(
            dataclasses.replace(TINY)
        )

    def test_sensitive_to_every_field(self):
        base = config_fingerprint(TINY)
        changed = dataclasses.replace(TINY, second_interaction_wave=False)
        assert config_fingerprint(changed) != base

    def test_default_cache_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestDatasetCache:
    def test_miss_runs_and_persists(self, tmp_path):
        cache = DatasetCache(tmp_path)
        dataset = cache.get_or_run(123, TINY)
        assert dataset.personas
        assert cache.path_for(123, TINY).is_file()

    def test_disk_hit_reproduces_artifacts(self, tmp_path):
        cache = DatasetCache(tmp_path)
        first = cache.get_or_run(123, TINY)
        DatasetCache._memory.clear()  # simulate a fresh process
        second = DatasetCache(tmp_path).get_or_run(123, TINY)
        assert _bid_rows(first) == _bid_rows(second)
        # A disk hit re-attaches a generative-truth world handle.
        assert second.world is not None
        assert len(second.world.catalog) == len(first.world.catalog)

    def test_returns_independent_copies(self, tmp_path):
        """Regression: the lru_cache version aliased every caller."""
        cache = DatasetCache(tmp_path)
        first = cache.get_or_run(123, TINY)
        second = cache.get_or_run(123, TINY)
        assert first is not second
        assert first.personas is not second.personas
        name = next(iter(first.personas))
        kept = len(second.personas[name].bids)
        first.personas[name].bids.clear()
        first.policy_fetches.clear()
        assert len(second.personas[name].bids) == kept
        third = cache.get_or_run(123, TINY)
        assert len(third.personas[name].bids) == kept

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.get_or_run(123, TINY)
        path = cache.path_for(123, TINY)
        payload = pickle.loads(path.read_bytes())
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        payload["schema"] = CACHE_SCHEMA_VERSION - 1
        path.write_bytes(pickle.dumps(payload))
        assert cache._load(123, TINY) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.get_or_run(123, TINY)
        cache.path_for(123, TINY).write_bytes(b"not a pickle")
        assert cache._load(123, TINY) is None
        DatasetCache._memory.clear()
        # Recompute succeeds and overwrites the bad entry.
        dataset = cache.get_or_run(123, TINY)
        assert dataset.personas
        assert cache._load(123, TINY) is not None

    def test_corrupt_entry_is_quarantined_with_warning(self, tmp_path, caplog):
        cache = DatasetCache(tmp_path)
        cache.get_or_run(123, TINY)
        path = cache.path_for(123, TINY)
        path.write_bytes(b"not a pickle")
        with caplog.at_level("WARNING", logger="repro.core.cache"):
            assert cache._load(123, TINY) is None
        assert any("quarantined" in rec.message for rec in caplog.records)
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.is_file()
        assert quarantined.read_bytes() == b"not a pickle"
        assert not path.exists()  # evidence moved aside, key is free

    def test_truncated_pickle_is_quarantined(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.get_or_run(123, TINY)
        path = cache.path_for(123, TINY)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache._load(123, TINY) is None
        assert path.with_name(path.name + ".corrupt").is_file()
        DatasetCache._memory.clear()
        assert cache.get_or_run(123, TINY).personas  # recompute republishes

    def test_clear_drops_quarantined_entries(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.get_or_run(123, TINY)
        cache.path_for(123, TINY).write_bytes(b"junk")
        cache._load(123, TINY)
        cache.clear()
        assert not list(tmp_path.glob("dataset-*"))

    def test_different_configs_use_different_entries(self, tmp_path):
        cache = DatasetCache(tmp_path)
        other = dataclasses.replace(TINY, post_iterations=2)
        assert cache.path_for(123, TINY) != cache.path_for(123, other)

    def test_clear_removes_disk_and_memory(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.get_or_run(123, TINY)
        cache.clear()
        assert not list(tmp_path.glob("dataset-*.pkl"))
        assert not DatasetCache._memory

    def test_schema_version_is_timeline_era(self):
        """v7 invalidates pre-timeline pickles (ExperimentConfig gained
        the epoch-mutation fields — offset, bidder churn, catalog churn,
        interest drift — and cache loads now rebuild worlds through
        ``build_config_world`` so the mutations apply on reattach)."""
        assert CACHE_SCHEMA_VERSION == 7


class TestCopySemantics:
    def test_read_defaults_to_deep_copy(self, tmp_path):
        cache = DatasetCache(tmp_path)
        first = cache.read(123, TINY)
        second = cache.read(123, TINY)
        assert first is not second
        assert first.personas is not second.personas

    def test_read_copy_false_aliases_cached_instance(self, tmp_path):
        cache = DatasetCache(tmp_path)
        first = cache.read(123, TINY, copy=False)
        second = cache.read(123, TINY, copy=False)
        assert first is second
        assert first.personas is second.personas

    def test_copy_false_alias_sees_copied_readers_unchanged(self, tmp_path):
        """A copy=True reader's mutations never reach the aliased view."""
        cache = DatasetCache(tmp_path)
        aliased = cache.read(123, TINY, copy=False)
        copied = cache.read(123, TINY)
        name = next(iter(copied.personas))
        kept = len(aliased.personas[name].bids)
        copied.personas[name].bids.clear()
        assert len(aliased.personas[name].bids) == kept

    def test_get_or_run_is_a_deep_copy_alias(self, tmp_path):
        cache = DatasetCache(tmp_path)
        aliased = cache.read(123, TINY, copy=False)
        via_alias = cache.get_or_run(123, TINY)
        assert via_alias is not aliased
        assert _bid_rows(via_alias) == _bid_rows(aliased)

    def test_run_campaign_cache_copy_false_aliases(self, tmp_path):
        first = run_campaign(TINY, 321, cache=tmp_path, cache_copy=False)
        second = run_campaign(TINY, 321, cache=tmp_path, cache_copy=False)
        assert first is second

    def test_run_campaign_cache_copy_false_requires_cache(self):
        with pytest.raises(ValueError, match="cache_copy"):
            run_campaign(TINY, 321, cache_copy=False)


class TestRunCampaignCached:
    def test_cached_copies_are_independent(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = run_campaign(TINY, 321, cache=True)
        second = run_campaign(TINY, 321, cache=True)
        assert first is not second
        assert _bid_rows(first) == _bid_rows(second)

    def test_campaign_cache_hit_sets_manifest(self, tmp_path):
        first = run_campaign(TINY, 321, cache=tmp_path)
        assert first.obs is not None
        assert first.obs.manifest.entrypoint == "cached"
        assert first.obs.manifest.cache_hit is False
        second = run_campaign(TINY, 321, cache=tmp_path)
        assert second.obs.manifest.cache_hit is True
        assert _bid_rows(first) == _bid_rows(second)
