"""Data-profiling analysis (paper §6.1, Table 12).

Consumes the DSAR exports collected by the experiment: which advertising
interests Amazon inferred per persona at each request, and which exports
were missing the advertising-interests file entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.experiment import AuditDataset, PersonaArtifacts

__all__ = [
    "InterestObservation",
    "ProfilingAnalysis",
    "analyze_profiling",
    "persona_observations",
    "fold_profiling",
]

#: Request labels in collection order.
REQUEST_LABELS = ("installation", "interaction-1", "interaction-2")


@dataclass(frozen=True)
class InterestObservation:
    """Interests observed for one persona at one DSAR request."""

    persona: str
    request_label: str
    interests: Optional[Tuple[str, ...]]  # None == file missing

    @property
    def file_missing(self) -> bool:
        return self.interests is None


@dataclass
class ProfilingAnalysis:
    """§6.1 results."""

    observations: List[InterestObservation]
    #: Personas whose interests file was missing at interaction-2 —
    #: including after a re-request.
    personas_missing_file: List[str]

    def interests_for(
        self, persona: str, request_label: str
    ) -> Optional[Tuple[str, ...]]:
        for obs in self.observations:
            if obs.persona == persona and obs.request_label == request_label:
                return obs.interests
        return None

    def personas_with_interests(self, request_label: str) -> List[str]:
        return sorted(
            obs.persona
            for obs in self.observations
            if obs.request_label == request_label and obs.interests
        )


def analyze_profiling(dataset: AuditDataset) -> ProfilingAnalysis:
    """Line up each persona's DSAR exports with the request schedule."""
    return fold_profiling(
        persona_observations(a) for a in dataset.personas.values()
    )


def persona_observations(
    artifacts: PersonaArtifacts,
) -> Tuple[List[InterestObservation], bool]:
    """One persona's DSAR observations plus its missing-file verdict.

    The per-persona unit of §6.1: derived from this persona's exports
    alone, so segment-store workers can emit DSAR records at any batch
    granularity.  Returns ``([], False)`` for personas with no exports
    (web controls).  The boolean is True when the interests file was
    still missing at interaction-2 — including after a re-request.
    """
    if not artifacts.dsar_exports:
        return [], False
    persona = artifacts.persona.name
    observations = [
        InterestObservation(
            persona=persona,
            request_label=label,
            interests=(
                export.advertising_interests.interests
                if export.advertising_interests is not None
                else None
            ),
        )
        for label, export in zip(REQUEST_LABELS, artifacts.dsar_exports)
    ]
    # A fourth export exists only when the auditor re-requested after
    # a missing file; still missing => the quirk is persistent.
    if len(artifacts.dsar_exports) > len(REQUEST_LABELS):
        rerequest = artifacts.dsar_exports[len(REQUEST_LABELS)]
        missing = rerequest.advertising_interests is None
    else:
        missing = (
            len(artifacts.dsar_exports) >= 3
            and artifacts.dsar_exports[2].advertising_interests is None
        )
    return observations, missing


def fold_profiling(per_persona) -> ProfilingAnalysis:
    """Single-pass fold of per-persona ``(observations, missing)`` pairs.

    ``per_persona`` is any iterable in roster order — the in-memory scan
    or reconstructed segment-store records.
    """
    observations: List[InterestObservation] = []
    missing: List[str] = []
    for persona_obs, persona_missing in per_persona:
        observations.extend(persona_obs)
        if persona_missing and persona_obs:
            missing.append(persona_obs[0].persona)
    return ProfilingAnalysis(
        observations=observations, personas_missing_file=sorted(set(missing))
    )
