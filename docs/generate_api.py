#!/usr/bin/env python3
"""Regenerate docs/API.md from the package's docstrings."""

import importlib
import inspect
import pathlib
import pkgutil

import repro

PREAMBLE = """\
## CampaignSpec: one serializable campaign description

`repro.core.campaign.CampaignSpec` is the single description of a
campaign execution — config, seed, worker topology, cache,
observability, crash-safety knobs, and store selection — shared
verbatim by the Python API (`run_campaign(spec)`), the CLI
(`repro run --spec spec.json`), and the HTTP service (`POST
/campaigns`).  Properties the rest of the system builds on:

* **Frozen + validated at construction.**  Every invalid combination
  (unknown field, bad backend, negative workers, supervisor knobs
  without `parallel=True`, …) raises the same message on every
  surface, before anything runs.
* **Exact JSON round trip.**  `CampaignSpec.from_json(spec.to_json())
  == spec`, with unknown keys rejected (a typo'd knob fails the
  submit instead of silently running a different campaign).  The
  document carries a `schema` version (`SPEC_SCHEMA_VERSION`).
* **Stable fingerprint.**  `spec.fingerprint()` digests the canonical
  JSON — identical across processes and machines; job identity for the
  service and a reuse key everywhere else.
* **Runtime companions stay out.**  A live `ObsCollector`, a
  `DatasetCache` instance, or a `WorkerFaultPlan` are per-process
  overrides accepted by the kwargs form of `run_campaign` only — they
  cannot cross a process boundary, so they are not spec fields.

`execute_spec(spec, out_dir)` is the run-and-export path on top:
because export content is seed-deterministic and the CLI, the Python
API, and the HTTP service all funnel through it, the export directory
for a given spec is **byte-identical no matter which surface submitted
it**.

JSON shape (defaults shown; `config` accepts any `ExperimentConfig`
field):

```json
{
  "schema": 1,
  "config": {"skills_per_persona": 50, "pre_iterations": 6, "...": "..."},
  "seed": 42,
  "parallel": false,
  "workers": null,
  "backend": "process",
  "cache": null,
  "cache_copy": true,
  "obs": true,
  "checkpoint_dir": null,
  "resume": false,
  "on_shard_failure": "retry",
  "shard_timeout": null,
  "max_shard_retries": 2,
  "store": "memory",
  "store_dir": null,
  "batch_personas": 1
}
```

## Longitudinal timelines: `TimelineSpec`

`repro.core.timeline.TimelineSpec` extends the spec contract along the
time axis: a base `CampaignSpec` (which must select
`store="segments"`) plus an ordered tuple of `EpochSpec` mutations.
Like the campaign spec it is frozen, validated at construction, an
exact JSON round trip, and fingerprintable; `repro timeline run
--spec timeline.json` and `run_timeline(spec, out_dir)` execute the
same document identically.

Each `EpochSpec` is the **absolute** (cumulative) ecosystem state of
one epoch, not a diff — so any epoch is independently executable via
`spec.effective_config(i)`:

```json
{
  "schema": 1,
  "base": {"...": "a CampaignSpec document with store = segments"},
  "epochs": [
    {},
    {
      "offset_days": 14,
      "bidders_entered": 1,
      "bidders_exited": 0,
      "catalog_churn": ["smart-home:e1-5f2a10"],
      "interest_drift": ["dating:2"],
      "filterlist_add": ["fresh.tracker.example"],
      "filterlist_remove": ["amazon-adsystem.com"]
    }
  ]
}
```

* **Dirty-set semantics.**  `persona_fingerprint(seed_root, config,
  persona)` digests every input that can reach one persona's
  artifacts.  `offset_days` and bidder churn are global (every persona
  dirty); `catalog_churn` dirties only that category's interest
  persona; `interest_drift` only the named persona; filter-list
  updates dirty **nobody** — the list classifies traffic after the
  fact, so an update only relabels the delta report.
* **Incremental recompute.**  `run_timeline(spec, out_dir)` reuses
  clean personas from the previous epoch's store and re-executes only
  the dirty set: batches whose personas are all clean are **adopted
  zero-copy** (`SegmentStore.adopt_batch` hard-links the
  content-addressed segment files; no record is parsed), and only
  batches straddling the dirty set fall back to record-level copy.
  `incremental=False` (CLI `--cold`) recomputes everything.  Both
  paths export byte-identical files, and each epoch's store manifest
  publishes `timeline.personas_reused` /
  `timeline.personas_recomputed` plus a `timeline.reuse` breakdown
  (`linked` / `copied` segment files, record-level `records`).
* **Delta report.**  Each consecutive epoch pair writes
  `delta-epoch<i-1>-to-epoch<i>.json`: `tracker_domains`
  (new/vanished under each epoch's own filter list), `bid_deltas`
  (per-persona mean-CPM movement), `policy_regressions`
  (compliance flags that went true→false), and `seasonality` (where
  each epoch's day 0 sits on the holiday ramp).
* **Seeded authoring.**  `TimelineSpec.generate(base, n_epochs=...)`
  draws drift/churn/filter-list mutations from
  `Seed(base.seed).derive("timeline")` substreams — the same base spec
  always yields the same timeline (`repro timeline generate`).

## Audit as a service (HTTP)

`repro serve --root DIR` starts a stdlib-only HTTP service
(`repro.service.AuditService`) that runs campaigns as durable **jobs**:

| method | path | meaning |
|---|---|---|
| `POST` | `/campaigns` | submit a CampaignSpec (JSON body) → `201` + job record; invalid specs are a `400` with the construction error |
| `GET` | `/campaigns` | list all jobs |
| `GET` | `/campaigns/{id}` | one job's state record |
| `GET` | `/campaigns/{id}/events` | Server-Sent Events tail of the job's event log (`?follow=0` replays and closes) |
| `GET` | `/campaigns/{id}/results` | export-file listing |
| `GET` | `/campaigns/{id}/results/{name}` | one export file's bytes |
| `POST` | `/campaigns/{id}/cancel` | cancel a queued job |
| `GET` | `/healthz` | liveness + `service.*` counters |

**Job lifecycle.**  `queued` → `running` → one of the terminal states
`complete`, `partial` (a degraded parallel campaign dropped personas),
`failed`, or `cancelled`.  Each job owns a directory under the service
root (`spec.json`, `state.json`, `events.jsonl`, `out/`, plus
per-job `checkpoint/` and `segments/` namespaces), with every state
write atomic.  Kill the service mid-campaign and restart it on the same
root: non-terminal jobs are re-enqueued and **resume** from their own
crash-safe checkpoints (shard journal or content-addressed segment
batches), producing exports byte-identical to an uninterrupted run.

**Scheduling.**  `CampaignScheduler` admits jobs strict-FIFO under a
worker-token budget (`--total-workers`): a serial campaign costs one
token, a parallel campaign its worker count, and the sum of running
jobs' tokens never exceeds the budget — observable as
`service.workers_peak` in `/healthz`.  Concurrent tenants get isolated
namespaces and independently-seeded campaigns.

**Backpressure & drain.**  Admission is bounded (`--max-queue`,
default 64): an overflowing `POST /campaigns` is a `429` with a
`Retry-After` header (`service.jobs_rejected`); a submit while the
service is draining is a `503`; `ENOSPC` while persisting the job is
a `507` with reason `storage_exhausted`.  Cancelling a queued job
releases its admission slot, and its terminal `job.cancelled` event
lands in the log *before* the state flips so an SSE tail cannot miss
it.  `SIGTERM` triggers a graceful drain: admission stops, running
campaigns finish, queued jobs stay durably parked for the next boot,
and the process exits `0`.  A per-job watchdog (`--job-timeout`)
fails jobs running past the wall-clock deadline (state `failed`,
reason `watchdog_timeout`, `service.watchdog_reaped`) and frees their
worker tokens; a late zombie completion can neither resurrect the job
nor double-release tokens.

**Events.**  The job log speaks the obs event schema (`schema`, `seq`,
`type`, `sim_time`, `fields`): `job.submitted`, `job.started`
(`resumed` flag), `job.progress` (completed shards/batches),
`job.finished` / `job.failed` / `job.cancelled` / `job.recovered`.
The SSE endpoint emits each line as one `data:` frame and closes with
`event: end` + the terminal state.

Client side: `repro submit spec.json --url http://host:8321 --wait
--download DIR` submits a spec file, polls to completion, and downloads
the exports; `repro run --spec spec.json --out DIR` runs the same file
locally — `diff -r` of the two directories is empty (CI's
`service-smoke` job asserts exactly that).

## Observability

Every campaign run traces itself by default.  `run_campaign` returns its
dataset with an attached `repro.obs.ObsCollector` (`dataset.obs`) holding
four artifacts:

* **Spans** (`dataset.obs.tracer`) — a nested span tree over the campaign
  phases and per-persona work.  Deterministic spans (`det=True`: all
  `persona:*` work plus prebid discovery) carry integer simulated-time
  durations (`sim_us`) derived from the world clock; every span also
  carries wall-clock timings in separate `real_*` fields.  The
  simulated-time tree (`tracer.sim_tree_json()`) is byte-identical
  between serial and parallel runs of the same seed and config.
* **Metrics** (`dataset.obs.metrics`) — typed counters and gauges with
  per-metric merge policies (`sum`, `first`, `max`, `min`) so parallel
  shards combine correctly: persona-partitioned work sums, per-shard
  duplicated work (discovery) deduplicates.
* **Events** (`dataset.obs.events`) — an ordered structured log
  (`schema`, `seq`, `type`, `sim_time`, `fields`) for discrete
  occurrences: phase completions, skill-install failures, DSAR
  re-requests.
* **Manifest** (`dataset.obs.manifest`) — how the run was executed: seed
  root, config fingerprint, entrypoint (`serial`/`parallel`/`cached`),
  worker topology and persona shards, cache hit, package version.

Write everything as one JSONL trace with
`dataset.obs.write_trace(path)`, or from the CLI with
`python -m repro run --trace-out trace.jsonl --metrics-out metrics.json`;
`python -m repro report obs-summary` renders a phase/counter summary.
Pass `obs=False` to `run_campaign` to disable collection entirely
(null-object fast path, <5% overhead budget either way — enforced by
`benchmarks/bench_pipeline_throughput.py::bench_obs_overhead`).

## Fault injection and retries

`run_campaign` drives a perfectly healthy network unless a fault profile
is set (`ExperimentConfig(fault_profile=...)`, or `--faults` on the
CLI).  The subsystem lives in `repro.netsim.faults`:

* **`FaultProfile`** — a named mix of per-request rates for the four
  failure modes in `FAULT_KINDS` (`nxdomain`, `timeout`, `http_5xx`,
  `slow`).  `FaultProfile.parse` accepts a profile name from
  `FAULT_PROFILES` (`none` / `mild` / `harsh`) or a float overall rate.
* **`FaultPlan`** — turns a profile into concrete per-request
  `FaultDecision`s.  Decisions are drawn from `StreamFamily` substreams
  keyed by `(actor, domain)` and derived from the world `Seed`, so an
  actor's fault schedule depends only on its own request sequence —
  never on shard composition.  Serial and persona-sharded parallel
  campaigns therefore stay byte-identical under every profile
  (`tests/integration/test_fault_resilience.py`), and `fault_profile`
  is part of the config fingerprint.
* **`RetryPolicy`** — capped exponential backoff shared by Echo
  devices, the AVS Echo, and the crawler.  Backoff burns *simulated*
  seconds (`SimClock.advance`); library code never sleeps on the host
  clock.  Retries fire on `NetworkError` and on retryable statuses
  (500/502/503/504); once exhausted, the last retryable response is
  returned for callers to check `.ok`, while a final `NetworkError` is
  re-raised for the caller's degradation path.

**Partial-dataset semantics.** A faulted campaign never aborts: a voice
command whose retries exhaust yields no reply, a failed crawl hop is
logged with a synthetic `504`, a failed skill session is skipped.  The
dataset that comes back is valid but partial, and every loss is
accounted for in the metrics (`net.faults.*`, `web.faults.*`,
`<scope>.retries`, `<scope>.retry_exhausted`, `device.*_failures`,
`skills.sessions_failed`) plus the manifest's `fault_profile` field —
so partial data is always distinguishable from a healthy run.

## Storage chaos: seeded I/O faults, hardened writes, `repro fsck`

`repro.core.iosim` gives the storage layer the same seeded-fault
treatment as the network (`FaultPlan`) and the workers
(`WorkerFaultPlan`):

* **`StorageFaultProfile`** — named per-operation rates over
  `STORAGE_FAULT_KINDS` (`enospc`, `eio`, `fsync`, `rename`, `torn`,
  `slow`, `corrupt_read`).  `StorageFaultProfile.parse` accepts a
  profile name from `STORAGE_FAULT_PROFILES` (`none` / `mild` /
  `harsh`) or an overall rate (`rate:0.05`).
* **`StorageFaultPlan`** — turns a profile into concrete
  `StorageFaultDecision`s drawn from `Seed.derive("storage")`
  substreams keyed by `(component, op)` (`segments`, `checkpoint`,
  `cache`, `service`, …), so a component's fault schedule depends only
  on its own operation sequence — never on shard composition.
  `plan.exhaust(component, op, after=N)` switches an op to persistent
  `ENOSPC` after N calls for disk-full drills; `plan.snapshot()` /
  `plan.summary()` expose the counters that campaigns fold into
  observability as `storage.*`.
* **Installation is harness-level** — `install_storage_faults(...)` /
  the `storage_faults(...)` context manager in Python, the
  `--storage-faults` flag on the CLI, or
  `REPRO_STORAGE_FAULTS=<profile>:<seed>` in the environment.  The
  plan never enters the config fingerprint: a faulted run is the same
  campaign as a healthy one, merely executed on worse hardware.

The injection seam is `repro.core.checkpoint.atomic_write_bytes`
(write-temp → fsync → rename → **parent-dir fsync**) plus the read
paths of the digest cache, sidecar indexes, checkpoint shards, and the
dataset cache.  The hardening contract:

* Transient faults (`eio`, `fsync`, `rename`, `torn`, `slow`) are
  retried behind the seam with capped exponential backoff
  (`DEFAULT_STORAGE_RETRY`, host clock); a torn temp file is discarded
  before the rename, so torn bytes never reach a live name.
  `storage.retries` / `storage.retry_exhausted` count the work.
* `corrupt_read` fires only on self-healing artifacts; every victim is
  quarantined to `*.corrupt` (`storage.quarantined`) and rebuilt or
  recomputed, never trusted.
* **Determinism bar.**  Under any profile where writes eventually
  succeed, campaign exports are byte-identical to a no-fault run,
  serial and parallel (`tests/integration/test_storage_chaos.py`,
  `tests/property/test_storage_fault_properties.py`, CI's
  `chaos-smoke` storage leg).
* **`ENOSPC` degrades, never wedges.**  Segment campaigns finish
  `partial` with `missing_personas` accounted and a `storage` block
  (profile + counters) in the store manifest; the HTTP service maps it
  to `507` and a `failed` job with reason `storage_exhausted`, its
  worker tokens released.

**`repro fsck <dir> [--repair] [--out report.json]`**
(`repro.core.fsck.fsck_path`) is the offline audit.  It auto-detects
what a directory holds — a segment store or single campaign, a
checkpoint journal, a service job tree (recursing into each job's
`checkpoint/` and `segments/`) — and classifies every artifact:

| verdict | meaning | examples |
|---|---|---|
| `ok` | passes every integrity check | verified segment, valid shard |
| `repaired` | reconstructible from surviving artifacts | rebuild a sidecar index, prune a stale digest cache, re-stamp a lost journal manifest, truncate a torn event-log tail |
| `quarantined` | recomputable — moved to `*.corrupt` so a rerun recomputes | digest-mismatched segment + its marker, corrupt shard, corrupt `state.json` |
| `unrecoverable` | identity-bearing, reported but never deleted | store `MANIFEST.json`, job `spec.json`, interior event-log damage |

Without `--repair` the identical report is a dry run (`applied:
false` on every action).  The JSON report counts each verdict and
lists every action; the exit code is non-zero iff anything is
unrecoverable.

## Crash safety & resume

Parallel campaigns checkpoint every completed shard and can be resumed
after a crash.  The layer has two halves:

* **`repro.core.checkpoint`** — `ShardJournal` persists each shard's
  `ShardResult` with an atomic write-temp → fsync → rename
  (`atomic_write_bytes`), wrapped in an envelope stamped with
  `CHECKPOINT_SCHEMA_VERSION`, the seed root, the config fingerprint,
  and a digest of the shard plan.  `validate_for_resume` raises
  `CheckpointError` when a journal belongs to a different campaign; an
  unreadable or mis-stamped entry raises `CorruptShardError` and is
  quarantined to `*.corrupt` rather than trusted.  A run-level
  `journal.json` manifest records status
  (`running`/`complete`/`partial`/`failed`), per-shard attempt history,
  and missing personas.
* **The shard supervisor** (`repro.core.parallel`) — workers publish
  results through the journal (an ephemeral tempdir when no
  `checkpoint_dir` is given); the supervisor polls worker liveness,
  restarts crashed workers with a bounded retry budget
  (`max_shard_retries`), and reaps workers hung past a **wall-clock**
  `shard_timeout` (a stuck simulated clock cannot fool the watchdog).
  `SupervisorPolicy` bundles the knobs; `on_shard_failure` picks what
  happens when a shard exhausts its budget: `"retry"` (default —
  raises `ShardFailure` after the budget), `"degrade"` (completes
  without the lost personas, recorded in `dataset.missing_personas`,
  the run manifest, and `supervisor.*` counters), or `"raise"` (aborts
  on first failure).

`run_campaign(..., parallel=True, checkpoint_dir=DIR)` turns on durable
checkpointing; `resume=True` loads completed shards and computes only
the rest.  From the CLI: `python -m repro run --parallel
--checkpoint-dir DIR [--resume] [--on-shard-failure MODE]
[--shard-timeout SECONDS]`.  Because shard artifacts are
seed-deterministic, a resumed run's exports are **byte-identical** to
an uninterrupted run's, under healthy and mild-faulted networks, on
both backends (`tests/integration/test_resume_determinism.py`; CI's
`chaos-smoke` job kills a worker for real and diffs).  The manifest
schema (v3) records `shard_attempts`, `missing_personas`, `resumed`,
and `checkpointed`.

Recovery is testable on demand: `WorkerFaultPlan` injects worker-level
faults (`WORKER_FAULT_KINDS`: `crash`, `hang`, `poison`) either at
seeded rates drawn from substreams keyed by `(shard, attempt)` — the
same style as the network's `FaultPlan` — or as an exact
`WorkerFaultPlan.targeted({(shard, attempt): kind})` schedule.
Supervisor overhead on a healthy run is budgeted under 5% of campaign
wall-clock (`bench_supervisor_overhead`).

## Performance: the capture→analysis hot path

Capture and analysis are profile-guided-optimized; the invariant is that
none of it moves an exported byte
(`tests/integration/test_pipeline_equivalence.py` pins serial vs
4-worker exports under healthy and mild-faulted networks).

* **Sealed flows** — `repro.netsim.packet.FlowTable` groups packets into
  flows *as the router emits them*; stopping a capture seals the table
  once (`Flow.seal()` freezes `total_bytes` / `sni` / `first_timestamp`
  as cached aggregates).  Sealed flows are non-empty by construction — a
  `FlowTable` only creates a flow when its first packet arrives — and
  reject further packets.  `group_flows` survives as a thin wrapper that
  builds and seals a table in one shot; hand-built unsealed `Flow`s keep
  the legacy O(n)-per-property scan semantics.
  `CaptureSession.dns_table()` is likewise built incrementally and free
  to read.  The `flows.sealed` counter tracks how many flows each run
  froze.
* **Memoized analysis** — `OrgResolver.attribute_domain` and
  `FilterList.is_blocked` cache per-domain answers (the underlying
  entity DB, WHOIS answers, and rule set are immutable for a built
  world); `analyze_traffic` classifies each distinct domain and
  `(org, vendor)` pair once and can fan its per-persona resolution
  across workers (`analyze_traffic(..., workers=4)`) with identical
  results.  Repeat lookups the caches absorbed are counted as
  `analysis.domain_cache_hits`; pass `memoize=False` to either cache
  for the uncached legacy behaviour.
* **Copy-on-read cache** — `DatasetCache.read(seed_root, config,
  copy=True)` replaces `get_or_run` (which survives as a deep-copy
  alias).  `copy=False` aliases the cached instance for read-only
  consumers — `run_campaign(..., cache=True, cache_copy=False)`, the
  CLI's `--cache` flag, and the benchmark session dataset all use it.
  `CACHE_SCHEMA_VERSION` is 5 (`AuditDataset` gained
  `missing_personas`); older pickles are recomputed, and a corrupt
  entry is quarantined to `*.corrupt` with a warning and treated as a
  miss (sharing `repro.core.checkpoint.atomic_write_bytes` on the
  write side).
* **Benchmark gate** — `pytest benchmarks/... --bench-json PATH` writes
  measurements recorded via the `bench_record` fixture;
  `bench_pipeline_throughput` asserts the optimized path is ≥1.5× the
  pre-optimization baseline and CI's `perf-smoke` job fails if the
  speedup ratio drops >15% below the committed
  `benchmarks/BENCH_pipeline.json` (compared by
  `benchmarks/check_bench_regression.py`).  Refresh the baseline with
  `PYTHONPATH=src python -m pytest
  benchmarks/bench_pipeline_throughput.py::bench_pipeline_throughput
  --bench-json benchmarks/BENCH_pipeline.json` and commit the result.

## Scaling: the segment-store I/O fast path

`repro.core.segments.SegmentStore` streams campaigns through
append-only, content-addressed JSONL segments (see the module
docstring for the layout).  Three structures keep its hot paths off
the O(campaign-size) cost curve:

* **Zero-copy batch adoption** — `store.adopt_batch(prev_store,
  entry)` transfers one validated batch from another store of the same
  seed and roster by hard-linking its segment files (`os.link`),
  falling back to a byte copy through `atomic_write_bytes` on
  filesystems that refuse links.  No record is parsed or
  re-serialized; a fresh marker records the origin store's config
  fingerprint (`"origin"` field), which reads validate adopted segment
  headers against.  Counters: `segments.reuse.linked` /
  `segments.reuse.copied` (files); the timeline layer's record-level
  fallback counts `segments.reuse.records`.
* **Offset-indexed point reads** — each batch writes a sidecar index
  `batches/index-<firstpos>.json`: the batch envelope (schema, seed
  root, config fingerprint, positions) plus, per stream, the segment
  file name, its full sha256, and an `offsets` map from roster
  position to `[byte offset, byte length, record count]` of that
  persona's contiguous run of lines.  `stream_records_for(stream,
  pos)` seeks to the extent and parses only those lines.  The sidecar
  is validated against the batch marker's file names and digests;
  a missing, stale, or tampered index is rebuilt from the segment
  file and re-persisted — never an error.
* **Cached digest verification** — coverage scans verify every
  referenced segment's sha256.  Verified digests persist in
  `digest-cache.json` next to the manifest, keyed by `(file name,
  size, mtime_ns)`, so unchanged files are never re-hashed — across
  scans, processes, and service restarts (`segments.digest_cache.hits`
  / `.misses` counters; `store.verify_digests_fully = True` forces the
  cold path).  On any digest mismatch the cache is cleared, the handle
  permanently switches to cold-path full hashing, and the corrupt
  segment is quarantined to `*.corrupt` with a warning — corruption is
  recomputed over, never silently trusted.

Rebind `store.obs` to a live `ObsCollector` to record the counters.
All three paths are pinned byte-identical to cold recompute by
`tests/property/test_segment_reuse_properties.py`, and their speedups
(≥5× incremental-epoch reuse, ≥3× warm re-scan, indexed point reads)
are gated in CI against `benchmarks/BENCH_segments.json` by
`benchmarks/bench_segment_io.py`.

## Migrating to `run_campaign` / `CampaignSpec`

The three pre-1.0 entrypoints — `run_experiment`,
`run_parallel_experiment`, `run_cached_experiment` — were deprecated
shims through 1.5.x and are **removed in 1.6**; `run_campaign` is the
one entrypoint used by the CLI, the service, tests, and benchmarks.

| legacy call | replacement |
|---|---|
| `run_experiment(seed, config)` | `run_campaign(config, seed)` |
| `run_parallel_experiment(seed, config, workers=4, backend="process")` | `run_campaign(config, seed, parallel=True, workers=4, backend="process")` |
| `run_cached_experiment(seed_root, config)` | `run_campaign(config, seed_root, cache=True)` |

Note the argument order: `run_campaign` takes `(config, seed)` — config
first, matching how call sites are usually parameterized — and
everything else is keyword-only.

Since 1.6 the preferred form is a spec — build it once, run it anywhere:

```python
spec = CampaignSpec(config=config, seed=42, parallel=True, workers=4)
dataset = run_campaign(spec)            # Python API
# repro run --spec spec.json           # CLI, same exports
# POST /campaigns <- spec.to_json()    # HTTP service, same exports
```

`run_campaign(spec, workers=8)` is a `TypeError` — a spec is the whole
campaign; derive variants with `spec.replace(workers=8)`.  The kwargs
form `run_campaign(config, seed, ...)` remains supported as a shim that
builds the spec internally and also accepts the non-serializable
runtime companions (`obs=` collector, `cache=` instance,
`worker_faults=`).
"""


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0]


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated from the package's docstrings (`python docs/generate_api.py`).",
        "",
        PREAMBLE,
    ]
    for modinfo in sorted(
        pkgutil.walk_packages(repro.__path__, "repro."), key=lambda m: m.name
    ):
        if modinfo.ispkg or modinfo.name.endswith("__main__"):
            continue
        module = importlib.import_module(modinfo.name)
        lines.append(f"## `{modinfo.name}`")
        lines.append("")
        lines.append(first_line(module))
        lines.append("")
        exported = getattr(module, "__all__", None)
        if not exported:
            continue
        rows = []
        for symbol in exported:
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            if inspect.isclass(obj):
                kind = "class"
            elif callable(obj):
                kind = "function"
            else:
                kind = "constant"
            summary = first_line(obj) if kind != "constant" else ""
            rows.append((symbol, kind, summary.replace("|", "\\|")))
        if rows:
            lines.append("| name | kind | summary |")
            lines.append("|---|---|---|")
            lines.extend(
                f"| `{symbol}` | {kind} | {summary} |" for symbol, kind, summary in rows
            )
            lines.append("")
    target = pathlib.Path(__file__).with_name("API.md")
    target.write_text("\n".join(lines) + "\n")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
