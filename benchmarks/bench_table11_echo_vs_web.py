"""Table 11: statistical comparison of Echo interest personas against
web-primed interest personas (two-sided Mann-Whitney)."""

from repro.core.bids import echo_vs_web_matrix
from repro.core.report import render_table
from repro.data import categories as cat


def bench_table11_echo_vs_web(benchmark, dataset):
    matrix = benchmark(echo_vs_web_matrix, dataset)

    rows = []
    for persona in cat.ALL_CATEGORIES:
        row = [persona]
        for web in cat.WEB_CATEGORIES:
            row.append(f"{matrix[(persona, web)].p_value:.3f}")
        rows.append(tuple(row))
    print()
    print(
        render_table(
            ["persona", "web-health p", "web-science p", "web-computers p"],
            rows,
            title="Table 11",
        )
    )

    # Paper takeaway: Echo-leaked voice data and web-leaked browsing data
    # produce *similar* targeting — the overwhelming majority of the 27
    # persona pairs show no significant difference (paper: 26 of 27).
    significant = [k for k, r in matrix.items() if r.p_value < 0.05]
    print(f"\nsignificant pairs: {significant} (paper: 1 of 27)")
    assert len(matrix) == 27
    assert len(significant) <= 4
    # The six strongly-targeted Echo personas are all indistinguishable
    # from the web personas.
    for persona in (cat.CONNECTED_CAR, cat.DATING, cat.FASHION, cat.PETS,
                    cat.RELIGION, cat.NAVIGATION):
        for web in cat.WEB_CATEGORIES:
            assert matrix[(persona, web)].p_value >= 0.05, (persona, web)
