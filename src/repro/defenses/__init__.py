"""Possible defenses (paper §8.1), implemented and measurable.

* :mod:`repro.defenses.blocking` — router-level selective blocking of
  non-essential (advertising/tracking) skill traffic, after [72].
* :mod:`repro.defenses.local_voice` — on-device wake word + transcription
  so only text commands reach the platform, after Porcupine/Rhasspy.
"""

from repro.defenses.blocking import BlockingRouter, BlockReport, evaluate_blocking
from repro.defenses.local_voice import LocalProcessingEcho, voice_exposure

__all__ = [
    "BlockReport",
    "BlockingRouter",
    "LocalProcessingEcho",
    "evaluate_blocking",
    "voice_exposure",
]
