"""Seeded-deterministic observability for the auditing framework.

Four pieces, one handle:

* :class:`~repro.obs.tracer.Tracer` — span-based tracing with simulated
  (world-clock) and real (``perf_counter``) time in separate fields;
* :class:`~repro.obs.metrics.MetricsRegistry` — typed counters/gauges
  with per-metric deterministic merge policies;
* :class:`~repro.obs.events.EventLog` — structured JSONL events with a
  stable schema;
* :class:`~repro.obs.manifest.RunManifest` — seed, config fingerprint,
  worker topology, per-phase wall-clock.

:class:`~repro.obs.collector.ObsCollector` bundles them; pass one to
:func:`repro.core.run_campaign` (or let it create one) and read it back
from ``dataset.obs``.  Disabled observability is the
:data:`~repro.obs.collector.NULL_OBS` null object, so instrumented code
never branches on an ``if``.
"""

from repro.obs.collector import NULL_OBS, NullObs, ObsCollector, merge_collectors
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    event_line,
    make_event_record,
)
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest
from repro.obs.metrics import MERGE_POLICIES, Counter, Gauge, MetricsRegistry
from repro.obs.tracer import SPAN_SCHEMA_VERSION, Span, Tracer

__all__ = [
    "Counter",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "Gauge",
    "MANIFEST_SCHEMA_VERSION",
    "MERGE_POLICIES",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObs",
    "ObsCollector",
    "RunManifest",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "event_line",
    "make_event_record",
    "merge_collectors",
]
