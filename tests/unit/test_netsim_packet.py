"""Tests for packet/flow primitives."""

import pytest

from repro.netsim.packet import Direction, Flow, Packet, Protocol, group_flows


def make_packet(**overrides):
    defaults = dict(
        timestamp=1.0,
        src_ip="192.168.7.10",
        dst_ip="54.1.2.3",
        src_port=50000,
        dst_port=443,
        protocol=Protocol.TLS,
        size=512,
        direction=Direction.OUTBOUND,
        device_id="echo-1",
        sni="api.amazon.com",
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestPacket:
    def test_encrypted_when_payload_none(self):
        assert make_packet(payload=None).is_encrypted

    def test_not_encrypted_with_payload(self):
        assert not make_packet(payload={"kind": "http-request"}).is_encrypted

    def test_remote_ip_outbound(self):
        assert make_packet().remote_ip == "54.1.2.3"

    def test_remote_ip_inbound(self):
        pkt = make_packet(
            direction=Direction.INBOUND, src_ip="54.1.2.3", dst_ip="192.168.7.10"
        )
        assert pkt.remote_ip == "54.1.2.3"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(size=-1)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            make_packet(dst_port=70000)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_packet().size = 5  # type: ignore[misc]


class TestGroupFlows:
    def test_bidirectional_packets_share_flow(self):
        out = make_packet()
        back = make_packet(
            direction=Direction.INBOUND,
            src_ip="54.1.2.3",
            dst_ip="192.168.7.10",
            src_port=443,
            dst_port=50000,
        )
        flows = group_flows([out, back])
        assert len(flows) == 1
        assert flows[0].total_bytes == 1024

    def test_different_remotes_different_flows(self):
        flows = group_flows([make_packet(), make_packet(dst_ip="54.9.9.9")])
        assert len(flows) == 2

    def test_different_devices_different_flows(self):
        flows = group_flows([make_packet(), make_packet(device_id="echo-2")])
        assert len(flows) == 2

    def test_flow_sni_first_non_null(self):
        flows = group_flows([make_packet(sni=None), make_packet(sni="x.amazon.com")])
        assert flows[0].sni == "x.amazon.com"

    def test_flow_properties(self):
        flow = group_flows([make_packet(timestamp=5.0), make_packet(timestamp=2.0)])[0]
        assert flow.device_id == "echo-1"
        assert flow.remote_ip == "54.1.2.3"
        assert flow.remote_port == 443
        assert flow.first_timestamp == 2.0

    def test_empty_flow_first_timestamp_raises(self):
        with pytest.raises(ValueError):
            Flow(key=("d", "ip", 443, "tls")).first_timestamp

    def test_empty_input(self):
        assert group_flows([]) == []
