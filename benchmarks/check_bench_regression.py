"""Gate a fresh ``--bench-json`` report against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py CURRENT.json \
        [BASELINE.json] [--tolerance 0.15]

The committed baseline (``benchmarks/BENCH_pipeline.json``) records the
``speedup`` ratio of each gated benchmark — optimized over legacy on the
same machine — which is what makes the comparison portable: absolute
seconds differ across runners, the ratio does not.  A benchmark fails
the gate when its current speedup drops more than ``--tolerance``
(default 15%) below the baseline's.  Fields other than ``speedup`` are
informational and never gated.

Refresh the baseline by re-running the benchmark with
``--bench-json benchmarks/BENCH_pipeline.json`` and committing the
result (see the ``bench_pipeline_throughput`` docstring).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_pipeline.json"
DEFAULT_TOLERANCE = 0.15


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of human-readable failures (empty when the gate passes)."""
    failures = []
    for name, expected in sorted(baseline.items()):
        if "speedup" not in expected:
            continue
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from the current report")
            continue
        if "speedup" not in measured:
            failures.append(f"{name}: current report has no 'speedup' field")
            continue
        floor = expected["speedup"] * (1.0 - tolerance)
        if measured["speedup"] < floor:
            failures.append(
                f"{name}: speedup {measured['speedup']:.2f}x is below "
                f"{floor:.2f}x ({100 * tolerance:.0f}% under the baseline's "
                f"{expected['speedup']:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --bench-json report")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional speedup drop before failing (default 0.15)",
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = compare(current, baseline, args.tolerance)
    if failures:
        for line in failures:
            print(f"REGRESSION {line}", file=sys.stderr)
        return 1
    gated = [n for n, v in baseline.items() if "speedup" in v]
    for name in sorted(gated):
        print(
            f"ok {name}: speedup {current[name]['speedup']:.2f}x "
            f"(baseline {baseline[name]['speedup']:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
