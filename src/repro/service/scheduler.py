"""Fair-share campaign scheduler with a bounded worker budget.

The service runs campaigns for multiple tenants concurrently, but the
host has a fixed number of cores — so admission is governed by a
**worker-token budget**: a serial campaign costs one token, a parallel
campaign costs its worker count, and the sum of running jobs' tokens
never exceeds ``total_workers``.  Admission is strict FIFO over the
submission order: the head job waits until its tokens fit, and nothing
behind it can jump the queue.  That is the fairness guarantee — a small
tenant can never be starved by a stream of big campaigns (they queue
behind it), and a big campaign can never be starved by a stream of
small ones (they queue behind *it*).

Every admitted job runs on its own thread; the campaign itself may then
fan out into processes (``backend="process"``) inside its token
allowance.  Scheduler behaviour is observable through the ``service.*``
counters (:meth:`CampaignScheduler.counters`), including
``service.workers_peak`` — the high-water token usage, which a test can
assert never exceeded the budget.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Set

from repro.core.campaign import CampaignSpec, _DEFAULT_WORKERS
from repro.service.jobs import Job, JobStore

__all__ = [
    "CampaignScheduler",
    "DrainingError",
    "QueueFullError",
    "worker_cost",
]


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity; the caller should back off.

    The HTTP layer maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` header carrying :attr:`retry_after` seconds.
    """

    def __init__(self, limit: int, *, retry_after: int = 1) -> None:
        super().__init__(
            f"job queue is full ({limit} campaigns queued); retry later"
        )
        self.limit = limit
        self.retry_after = retry_after


class DrainingError(RuntimeError):
    """The scheduler is draining (graceful shutdown); no new admissions."""


def worker_cost(spec: CampaignSpec, total_workers: int) -> int:
    """Worker tokens one campaign consumes while running.

    Clamped to the budget so a campaign asking for more workers than
    the service owns still runs (alone) instead of queueing forever.
    """
    cost = (spec.workers or _DEFAULT_WORKERS) if spec.parallel else 1
    return max(1, min(cost, total_workers))


class CampaignScheduler:
    """FIFO job queue + worker-token admission over a :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        *,
        total_workers: int = 4,
        max_queue: Optional[int] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        if total_workers < 1:
            raise ValueError(f"total_workers must be >= 1, got {total_workers}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0, got {job_timeout}")
        self.store = store
        self.total_workers = total_workers
        #: Queued-job cap (``None`` = unbounded); overflow submissions
        #: raise :class:`QueueFullError` instead of growing the backlog.
        self.max_queue = max_queue
        #: Per-job wall-clock budget (``None`` = none); the watchdog
        #: marks jobs over budget ``failed`` and frees their tokens.
        self.job_timeout = job_timeout
        self._cond = threading.Condition()
        self._queue: List[str] = []  # job ids, submission order
        self._reserved = 0  # admission slots held by in-flight submits
        self._active_tokens = 0
        self._active_threads: Dict[str, threading.Thread] = {}
        self._active_costs: Dict[str, int] = {}
        self._started: Dict[str, float] = {}  # job id -> monotonic start
        self._reaped: Set[str] = set()  # jobs the watchdog already settled
        self._counters: Dict[str, int] = {
            "service.jobs_submitted": 0,
            "service.jobs_completed": 0,
            "service.jobs_partial": 0,
            "service.jobs_failed": 0,
            "service.jobs_cancelled": 0,
            "service.jobs_recovered": 0,
            "service.jobs_rejected": 0,
            "service.watchdog_reaped": 0,
            "service.workers_active": 0,
            "service.workers_peak": 0,
        }
        self._stopping = False
        self._draining = False
        self._dispatcher: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Recover persisted jobs and start dispatching."""
        recovered = self.store.recover()
        with self._cond:
            for job in recovered:
                self._queue.append(job.id)
                self._counters["service.jobs_recovered"] += 1
            self._stopping = False
            self._draining = False
            self._cond.notify_all()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-dispatcher", daemon=True
        )
        self._dispatcher.start()
        if self.job_timeout is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="campaign-watchdog", daemon=True
            )
            self._watchdog.start()

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop admitting jobs; optionally wait for running ones."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        if self._watchdog is not None:
            self._watchdog.join()
            self._watchdog = None
        if wait:
            for thread in list(self._active_threads.values()):
                thread.join()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admission, finish what is running.

        New submissions raise :class:`DrainingError`; the dispatcher
        stops handing out work; running jobs run to their own terminal
        states (their checkpoints and segment batches are durable, so
        nothing is lost either way).  Jobs still queued stay durably
        ``queued`` — a restarted service re-admits them through
        ``store.recover()`` in their original order.  Returns ``True``
        when every running job finished within ``timeout``.
        """
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            running = list(self._active_threads.values())
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in running:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        with self._cond:
            return not self._active_threads

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is running."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._queue and not self._active_threads,
                timeout=timeout,
            )

    # ------------------------------------------------------------------ #
    # Submission / cancellation
    # ------------------------------------------------------------------ #

    def submit(self, spec: CampaignSpec) -> Job:
        """Persist and enqueue a new campaign job.

        Raises :class:`DrainingError` during graceful shutdown and
        :class:`QueueFullError` when ``max_queue`` jobs are already
        waiting.  The queue slot is *reserved* before the durable
        ``store.submit`` (which does disk I/O outside the lock) and
        released on failure — concurrent submissions can never
        over-admit past the bound.
        """
        with self._cond:
            if self._draining or self._stopping:
                self._counters["service.jobs_rejected"] += 1
                raise DrainingError(
                    "scheduler is draining; no new jobs are admitted"
                )
            if (
                self.max_queue is not None
                and len(self._queue) + self._reserved >= self.max_queue
            ):
                self._counters["service.jobs_rejected"] += 1
                raise QueueFullError(self.max_queue)
            self._reserved += 1
        try:
            job = self.store.submit(spec)
        except BaseException:
            with self._cond:
                self._reserved -= 1
                self._cond.notify_all()
            raise
        with self._cond:
            self._reserved -= 1
            self._queue.append(job.id)
            self._counters["service.jobs_submitted"] += 1
            self._cond.notify_all()
        return job

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job if it has not started; returns the new state.

        A ``queued`` job is dequeued and marked ``cancelled``.  A
        ``running`` campaign is not interruptible (its worker processes
        own the work), so cancellation is recorded as a request and the
        job runs to its own terminal state.  Terminal jobs are
        unchanged.  Returns ``None`` for unknown ids.
        """
        job = self.store.get(job_id)
        if job is None:
            return None
        with self._cond:
            if job_id in self._queue and job.state == "queued":
                # Dequeueing releases the job's admission slot: the
                # bounded queue gains a space and the dispatcher is
                # woken in case the head was waiting behind this entry.
                self._queue.remove(job_id)
                self._counters["service.jobs_cancelled"] += 1
                # Event before state: SSE tails close on the terminal
                # state and must not miss the cancellation event.
                job.events.emit("job.cancelled")
                job.update_state("cancelled")
                self._cond.notify_all()
                return "cancelled"
        if job.state in ("running", "queued"):
            # Running campaigns are not interruptible; a queued job that
            # is already off the queue (dispatched, not yet started)
            # gets the same flag, which job.execute honours on entry.
            job.set_flag("cancel_requested", True)
        return job.state

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def counters(self) -> Dict[str, int]:
        """A snapshot of the ``service.*`` counters."""
        with self._cond:
            counters = dict(self._counters)
            counters["service.jobs_queued"] = len(self._queue)
        return counters

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._stopping
                    or self._draining
                    or self._admissible()
                )
                if self._stopping or self._draining:
                    return
                job_id = self._queue.pop(0)
                job = self.store.get(job_id)
                assert job is not None  # queue only ever holds known ids
                cost = worker_cost(job.spec, self.total_workers)
                self._active_tokens += cost
                self._counters["service.workers_active"] = self._active_tokens
                self._counters["service.workers_peak"] = max(
                    self._counters["service.workers_peak"], self._active_tokens
                )
                thread = threading.Thread(
                    target=self._run_job,
                    args=(job, cost),
                    name=f"campaign-{job.id}",
                    daemon=True,
                )
                self._active_threads[job.id] = thread
                self._active_costs[job.id] = cost
                self._started[job.id] = time.monotonic()
            thread.start()

    def _admissible(self) -> bool:
        """Strict FIFO: only the head job is considered for admission."""
        if not self._queue:
            return False
        job = self.store.get(self._queue[0])
        if job is None:
            self._queue.pop(0)
            return self._admissible()
        cost = worker_cost(job.spec, self.total_workers)
        return self._active_tokens + cost <= self.total_workers

    def _run_job(self, job: Job, cost: int) -> None:
        # Token release lives in a finally: a BaseException escaping
        # job.execute (KeyboardInterrupt delivered to a worker thread,
        # SystemExit from deep inside a backend) would otherwise leak the
        # job's worker tokens and wedge admission forever.
        state = "failed"
        try:
            state = job.execute()
        except Exception:  # noqa: BLE001 - job.execute already records errors
            pass
        finally:
            with self._cond:
                if job.id in self._reaped:
                    # The watchdog already failed this job, released its
                    # tokens, and counted it; this thread merely outlived
                    # the verdict (job.update_state is terminal-guarded,
                    # so nothing it wrote after the reap stuck either).
                    self._reaped.discard(job.id)
                else:
                    self._active_tokens -= cost
                    self._counters["service.workers_active"] = self._active_tokens
                    self._active_threads.pop(job.id, None)
                    self._active_costs.pop(job.id, None)
                    self._started.pop(job.id, None)
                    key = {
                        "complete": "service.jobs_completed",
                        "partial": "service.jobs_partial",
                        "cancelled": "service.jobs_cancelled",
                    }.get(state, "service.jobs_failed")
                    self._counters[key] += 1
                self._cond.notify_all()

    def _watchdog_loop(self) -> None:
        """Fail jobs over their wall-clock budget and free their tokens.

        A hung campaign (a wedged worker process, a deadlocked backend)
        would otherwise hold its worker tokens forever and starve the
        FIFO head.  The watchdog cannot kill the job's thread — Python
        threads are not interruptible — but it can settle the job's
        *accounting*: mark it failed (event first, then state), release
        its tokens so admission moves on, and leave the zombie thread to
        finish into a terminal-guarded state that ignores it.
        """
        assert self.job_timeout is not None
        poll = max(0.01, min(0.25, self.job_timeout / 4))
        with self._cond:
            while not self._stopping:
                now = time.monotonic()
                for job_id, started in list(self._started.items()):
                    if now - started <= self.job_timeout:
                        continue
                    job = self.store.get(job_id)
                    cost = self._active_costs.pop(job_id, 0)
                    self._active_threads.pop(job_id, None)
                    self._started.pop(job_id, None)
                    self._reaped.add(job_id)
                    self._active_tokens -= cost
                    self._counters["service.workers_active"] = self._active_tokens
                    self._counters["service.watchdog_reaped"] += 1
                    self._counters["service.jobs_failed"] += 1
                    if job is not None:
                        message = (
                            f"no terminal state within job_timeout="
                            f"{self.job_timeout}s; watchdog freed its "
                            f"{cost} worker token(s)"
                        )
                        job.events.emit(
                            "job.failed", error=message, reason="watchdog_timeout"
                        )
                        job.update_state(
                            "failed", error=message, reason="watchdog_timeout"
                        )
                    self._cond.notify_all()
                self._cond.wait(timeout=poll)
