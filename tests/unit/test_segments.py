"""Tests for the content-addressed segment store (store mechanics).

Byte-identity of segment-store exports against the in-memory path is
pinned in ``tests/integration/test_segment_equivalence.py``; this module
covers the store itself: batch writes, coverage validation, the k-way
merge, point reads, corruption quarantine, and the manifest envelope.
"""

import json

import pytest

from repro.core.segments import (
    SEGMENT_SCHEMA_VERSION,
    STREAMS,
    CorruptSegmentError,
    PositionsCoveredError,
    SegmentStore,
    persona_stream_records,
    write_dataset_segments,
)

ROSTER = ("alpha", "beta", "gamma", "delta")


def make_store(root) -> SegmentStore:
    return SegmentStore(root, 42, "fingerprint0001", ROSTER)


def bid_records(*positions):
    return {
        "bids": [
            {"pos": pos, "value": f"{pos}-{k}"} for pos in positions for k in range(2)
        ]
    }


class TestWriteBatch:
    def test_roundtrip_preserves_records_and_order(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1], bid_records(0, 1))
        assert store.covered_positions() == {0, 1}
        values = [r["value"] for r in store.iter_stream("bids")]
        assert values == ["0-0", "0-1", "1-0", "1-1"]

    def test_out_of_order_batches_merge_to_roster_order(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([2], bid_records(2))
        store.write_batch([0, 3], bid_records(0, 3))
        store.write_batch([1], bid_records(1))
        positions = [r["pos"] for r in store.iter_stream("bids")]
        assert positions == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_point_read_returns_one_persona(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1, 2], bid_records(0, 1, 2))
        assert [r["value"] for r in store.stream_records_for("bids", 1)] == [
            "1-0",
            "1-1",
        ]
        assert store.stream_records_for("bids", 3) == []

    def test_empty_streams_need_no_segment_files(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], {"bids": []})
        assert store.covered_positions() == {0}
        assert list(store.iter_stream("bids")) == []
        assert list(store.iter_stream("ads")) == []

    def test_duplicate_coverage_rejected(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1], bid_records(0, 1))
        with pytest.raises(PositionsCoveredError):
            store.write_batch([1, 2], bid_records(1, 2))
        # PositionsCoveredError is also a ValueError for generic callers.
        with pytest.raises(ValueError):
            store.write_batch([0], bid_records(0))

    def test_position_outside_roster_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError):
            store.write_batch([4], bid_records(4))

    def test_record_outside_batch_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError):
            store.write_batch([0], bid_records(0, 1))

    def test_unknown_stream_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError):
            store.write_batch([0], {"bogus": [{"pos": 0}]})
        with pytest.raises(ValueError):
            store.iter_stream("bogus")


class TestValidationAndQuarantine:
    def test_tampered_segment_uncovers_batch(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1], bid_records(0, 1))
        store.write_batch([2], bid_records(2))
        segment = next(store.segments_dir.glob("bids-00000000-*.jsonl"))
        segment.write_bytes(segment.read_bytes() + b"tampered\n")
        fresh = make_store(tmp_path)
        assert fresh.covered_positions() == {2}
        assert [r["pos"] for r in fresh.iter_stream("bids")] == [2, 2]
        assert list(fresh.batches_dir.glob("*.corrupt"))

    def test_foreign_marker_ignored(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], bid_records(0))
        marker = next(store.batches_dir.glob("batch-*.json"))
        payload = json.loads(marker.read_text())
        payload["seed_root"] = 999
        marker.write_text(json.dumps(payload))
        fresh = make_store(tmp_path)
        assert fresh.covered_positions() == set()

    def test_stale_schema_marker_ignored(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], bid_records(0))
        marker = next(store.batches_dir.glob("batch-*.json"))
        payload = json.loads(marker.read_text())
        payload["schema"] = SEGMENT_SCHEMA_VERSION + 1
        marker.write_text(json.dumps(payload))
        assert make_store(tmp_path).covered_positions() == set()

    def test_unreadable_marker_quarantined(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], bid_records(0))
        marker = next(store.batches_dir.glob("batch-*.json"))
        marker.write_bytes(b"\x00not json")
        fresh = make_store(tmp_path)
        assert fresh.covered_positions() == set()
        assert list(fresh.batches_dir.glob("*.corrupt"))

    def test_header_mismatch_raises_on_read(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], bid_records(0))
        segment = next(store.segments_dir.glob("bids-*.jsonl"))
        lines = segment.read_text().splitlines()
        header = json.loads(lines[0])
        header["stream"] = "ads"
        tampered = "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        # Keep the marker digest valid so the batch still scans as
        # covered — the header check is the second line of defense.
        marker = next(store.batches_dir.glob("batch-*.json"))
        payload = json.loads(marker.read_text())
        import hashlib

        payload["segments"]["bids"]["digest"] = hashlib.sha256(
            tampered.encode()
        ).hexdigest()
        segment.write_text(tampered)
        marker.write_text(json.dumps(payload))
        fresh = make_store(tmp_path)
        with pytest.raises(CorruptSegmentError):
            list(fresh.iter_stream("bids"))


class TestManifest:
    def test_ensure_then_match(self, tmp_path):
        store = make_store(tmp_path)
        assert not store.manifest_matches()
        store.ensure_manifest()
        assert store.manifest_matches()
        manifest = store.read_manifest()
        assert manifest["schema"] == SEGMENT_SCHEMA_VERSION
        assert manifest["status"] == "running"
        assert manifest["roster"] == list(ROSTER)

    def test_foreign_manifest_replaced(self, tmp_path):
        store = make_store(tmp_path)
        store.ensure_manifest()
        other = SegmentStore(tmp_path, 42, "fingerprint0001", ("x", "y"))
        # Same campaign dir key but different roster: must not adopt.
        other.campaign_dir = store.campaign_dir
        assert not other.manifest_matches()

    def test_invalid_status_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError):
            store.write_manifest("done")

    def test_empty_roster_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentStore(tmp_path, 42, "fp", ())
        with pytest.raises(ValueError):
            SegmentStore(tmp_path, 42, "fp", ("a", "a"))


class TestPersonaStreamRecords:
    def test_streams_cover_all_artifacts(self, small_dataset):
        names = list(small_dataset.personas)
        artifacts = small_dataset.personas[names[0]]
        records = persona_stream_records(artifacts, 0)
        assert set(records) == set(STREAMS)
        meta = records["personas"][0]
        assert meta["name"] == names[0]
        assert meta["loaded_slots"] == sorted(artifacts.loaded_slots)
        assert len(records["bids"]) == len(artifacts.bids)
        assert len(records["ads"]) == len(artifacts.ads)
        assert all(r["pos"] == 0 for recs in records.values() for r in recs)

    def test_controls_emit_no_flows_or_policy(self, small_dataset):
        vanilla = small_dataset.vanilla
        records = persona_stream_records(vanilla, 3)
        assert records["flows"] == []
        assert records["policy"] == []

    def test_records_json_roundtrip_exactly(self, small_dataset):
        artifacts = next(iter(small_dataset.personas.values()))
        records = persona_stream_records(artifacts, 0)
        for stream, recs in records.items():
            for record in recs:
                assert json.loads(json.dumps(record)) == record, stream


class TestWriteDatasetSegments:
    def test_materialized_dataset_is_complete(self, small_dataset, tmp_path):
        store = SegmentStore(
            tmp_path, 7, "small0000000000", tuple(small_dataset.personas)
        )
        write_dataset_segments(store, small_dataset)
        assert store.covered_positions() == set(
            range(len(small_dataset.personas))
        )
        assert store.read_manifest()["status"] == "complete"
        total_bids = sum(
            len(a.bids) for a in small_dataset.personas.values()
        )
        assert sum(1 for _ in store.iter_stream("bids")) == total_bids

    def test_roster_mismatch_rejected(self, small_dataset, tmp_path):
        store = SegmentStore(tmp_path, 7, "small0000000000", ("wrong",))
        with pytest.raises(ValueError):
            write_dataset_segments(store, small_dataset)
