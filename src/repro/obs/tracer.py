"""Span-based tracing over the campaign's two clocks.

Every span records *two* time axes, kept in separate fields:

* **simulated time** — read from the world's
  :class:`~repro.util.clock.SimClock`; advances only when the simulation
  says so, and therefore reproducible from the seed;
* **real time** — ``time.perf_counter``; what the host actually spent,
  never reproducible.

The canonical export (:meth:`Tracer.sim_tree`) carries *only* the
simulated axis, so two runs of the same seed produce byte-identical
trees no matter how fast the hardware was.  Spans opened with
``det=True`` assert a stronger property: their simulated duration is
*shard-invariant* — it depends only on the span's own actor (a persona's
seed-keyed advances), not on which other personas share the world.
Those are the spans whose ``sim_us`` appears in the canonical tree; the
persona-sharded parallel runner relies on this to merge shard traces
into a tree byte-identical to the serial run's
(:func:`repro.obs.collector.merge_collectors`).

Durations are quantised to integer microseconds.  Simulated clock reads
sit on different float bases in different shards (other personas shift
the clock), so raw ``end - start`` differences can disagree in the last
ulp; at campaign magnitudes (~1e6 s) that residue is ~1e-10 s, far below
the 0.5 µs rounding threshold.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "SPAN_SCHEMA_VERSION"]

#: Bump when the span record layout changes shape.
SPAN_SCHEMA_VERSION = 1


def _canonical_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    """Attrs restricted to JSON scalars, insertion order dropped."""
    clean: Dict[str, object] = {}
    for key in sorted(attrs):
        value = attrs[key]
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise TypeError(
                f"span attribute {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
        clean[key] = value
    return clean


@dataclass
class Span:
    """One timed unit of campaign work."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Whether the simulated duration is seed-deterministic and
    #: shard-invariant (see module docstring).  Only ``det`` spans carry
    #: ``sim_us`` in the canonical tree.
    det: bool = False
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    real_start: Optional[float] = None
    real_end: Optional[float] = None
    status: str = "ok"
    children: List["Span"] = field(default_factory=list)

    @property
    def sim_elapsed(self) -> Optional[float]:
        """Simulated seconds spent inside the span, if a clock was bound."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def sim_us(self) -> Optional[int]:
        """Simulated duration in integer microseconds (``det`` spans only)."""
        if not self.det:
            return None
        elapsed = self.sim_elapsed
        if elapsed is None:
            return None
        return round(elapsed * 1e6)

    @property
    def real_elapsed(self) -> Optional[float]:
        """Host seconds spent inside the span."""
        if self.real_start is None or self.real_end is None:
            return None
        return self.real_end - self.real_start

    # ------------------------------------------------------------------ #

    def sim_node(self) -> Dict[str, object]:
        """This span (and its subtree) on the simulated axis only."""
        return {
            "name": self.name,
            "attrs": _canonical_attrs(self.attrs),
            "sim_us": self.sim_us,
            "children": [child.sim_node() for child in self.children],
        }

    def record(self, span_id: int, parent_id: Optional[int]) -> Dict[str, object]:
        """Flat, JSONL-ready record carrying both time axes."""
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "id": span_id,
            "parent_id": parent_id,
            "name": self.name,
            "attrs": _canonical_attrs(self.attrs),
            "det": self.det,
            "status": self.status,
            "sim_start": None if self.sim_start is None else round(self.sim_start, 6),
            "sim_end": None if self.sim_end is None else round(self.sim_end, 6),
            "sim_us": self.sim_us,
            "real_elapsed_s": (
                None if self.real_elapsed is None else round(self.real_elapsed, 6)
            ),
        }


class Tracer:
    """Builds the span tree for one campaign (or one shard of one).

    The tracer is created before the world exists, so the sim clock is
    bound late via :meth:`bind_clock`.  Spans opened without a bound
    clock simply carry no simulated timestamps.
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def bind_clock(self, clock) -> None:
        """Attach the world clock that simulated timestamps read from."""
        self._clock = clock

    # ------------------------------------------------------------------ #

    @contextmanager
    def span(self, name: str, *, det: bool = False, **attrs: object) -> Iterator[Span]:
        """Open a span; nests under the innermost open span."""
        node = Span(name=name, attrs=_canonical_attrs(attrs), det=det)
        if self._clock is not None:
            node.sim_start = self._clock.now
        node.real_start = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        try:
            yield node
        except BaseException:
            node.status = "error"
            raise
        finally:
            node.real_end = time.perf_counter()
            if self._clock is not None:
                node.sim_end = self._clock.now
            popped = self._stack.pop()
            assert popped is node, "span stack corrupted"

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #

    def sim_tree(self) -> List[Dict[str, object]]:
        """The simulated-time span forest, canonical form.

        Contains only seed-reproducible fields (names, attributes, and
        the ``sim_us`` of ``det`` spans) — byte-identical across serial
        and merged-parallel runs of the same seed.
        """
        return [root.sim_node() for root in self.roots]

    def sim_tree_json(self) -> str:
        """Canonical JSON serialisation of :meth:`sim_tree`."""
        return json.dumps(
            self.sim_tree(), sort_keys=True, separators=(",", ":")
        )

    def records(self) -> List[Dict[str, object]]:
        """Flat pre-order span records with both time axes."""
        out: List[Dict[str, object]] = []

        def walk(span: Span, parent_id: Optional[int]) -> None:
            span_id = len(out)
            out.append(span.record(span_id, parent_id))
            for child in span.children:
                walk(child, span_id)

        for root in self.roots:
            walk(root, None)
        return out

    def phase_real_seconds(self) -> Dict[str, float]:
        """Accumulated host seconds per ``phase:*`` span, by phase name."""
        totals: Dict[str, float] = {}

        def walk(span: Span) -> None:
            if span.name.startswith("phase:") and span.real_elapsed is not None:
                key = span.name[len("phase:") :]
                totals[key] = totals.get(key, 0.0) + span.real_elapsed
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return totals
