"""Unit tests for the unified run_campaign entrypoint (repro.core.campaign)."""

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.obs import ObsCollector
from repro.util.rng import Seed

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


class TestSerialPath:
    def test_returns_dataset_with_obs(self):
        dataset = run_campaign(TINY, 2001)
        assert dataset.personas
        assert dataset.obs is not None
        assert dataset.obs.manifest.entrypoint == "serial"
        assert dataset.obs.manifest.seed_root == 2001
        assert dataset.obs.manifest.workers == 1
        assert dataset.obs.manifest.phase_real_seconds

    def test_obs_false_disables(self):
        dataset = run_campaign(TINY, 2001, obs=False)
        assert dataset.obs is None

    def test_caller_supplied_collector(self):
        collector = ObsCollector()
        dataset = run_campaign(TINY, 2001, obs=collector)
        assert dataset.obs is collector
        assert collector.metrics.value("skills.installed") > 0

    def test_accepts_seed_object(self):
        dataset = run_campaign(TINY, Seed(2001))
        assert dataset.obs.manifest.seed_root == 2001


class TestParallelPath:
    def test_thread_backend_merges_obs(self):
        dataset = run_campaign(TINY, 2002, parallel=True, workers=2, backend="thread")
        assert dataset.obs is not None
        manifest = dataset.obs.manifest
        assert manifest.entrypoint == "parallel"
        assert manifest.backend == "thread"
        assert manifest.workers == len(manifest.shards) == 2
        assert manifest.persona_count == len(dataset.personas)


class TestValidation:
    def test_workers_without_parallel(self):
        with pytest.raises(ValueError, match="parallel=True"):
            run_campaign(TINY, 1, workers=4)

    def test_parallel_with_cache(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_campaign(TINY, 1, parallel=True, cache=tmp_path)

    def test_parallel_with_caller_collector(self):
        with pytest.raises(ValueError, match="caller-supplied"):
            run_campaign(TINY, 1, parallel=True, obs=ObsCollector())

    def test_rejects_bad_seed_type(self):
        with pytest.raises(TypeError, match="seed"):
            run_campaign(TINY, "42")
        with pytest.raises(TypeError, match="seed"):
            run_campaign(TINY, True)

    def test_rejects_bad_obs_type(self):
        with pytest.raises(TypeError, match="obs"):
            run_campaign(TINY, 1, obs="trace.jsonl")

    def test_rejects_bad_cache_type(self):
        with pytest.raises(TypeError, match="cache"):
            run_campaign(TINY, 1, cache=42)


class TestLegacyShimsRemoved:
    """The pre-1.6 entrypoints are gone, not just deprecated."""

    def test_run_experiment_is_gone(self):
        import repro.core.experiment as experiment

        assert not hasattr(experiment, "run_experiment")
        assert not hasattr(experiment, "run_cached_experiment")
        assert "run_experiment" not in experiment.__all__

    def test_run_parallel_experiment_is_gone(self):
        import repro.core.parallel as parallel

        assert not hasattr(parallel, "run_parallel_experiment")
        assert "run_parallel_experiment" not in parallel.__all__
