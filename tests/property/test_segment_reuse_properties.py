"""Property tests: segment reuse paths are byte-identical to recompute.

The I/O fast path claims that however an epoch's store is assembled —
whole batches adopted zero-copy from a previous store, straddling
batches transferred record-by-record through indexed point reads, or
everything recomputed cold — the resulting stream contents are
identical, for any batch partition and any dirty set.  These tests
check that claim on randomized synthetic stores, including the forced
``os.link``-failure path (byte-copy fallback) and stores whose sidecar
indexes were deleted and must be rebuilt mid-read.
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import STREAMS, SegmentStore

ROSTER_NAMES = tuple(f"persona-{i:02d}" for i in range(12))


def synth_records(pos, salt):
    """Deterministic synthetic records for one position.

    Content depends only on ``(pos, salt)`` — the dirty-set recompute
    and the reuse paths must therefore produce identical bytes.
    """
    out = {}
    for k, stream in enumerate(("bids", "flows", "dsar")):
        count = 1 + (pos + k + salt) % 3
        out[stream] = [
            {"pos": pos, "stream": stream, "j": j, "salt": salt}
            for j in range(count)
        ]
    return out


def batch_records(positions, salt):
    merged = {}
    for pos in positions:
        for stream, recs in synth_records(pos, salt).items():
            merged.setdefault(stream, []).extend(recs)
    return merged


@st.composite
def reuse_case(draw):
    n = draw(st.integers(min_value=3, max_value=len(ROSTER_NAMES)))
    partition, start = [], 0
    while start < n:
        width = draw(st.integers(min_value=1, max_value=4))
        partition.append(list(range(start, min(start + width, n))))
        start += width
    dirty = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    salt = draw(st.integers(min_value=0, max_value=9))
    return n, partition, sorted(dirty), salt


def build_prev(root, n, partition, salt):
    store = SegmentStore(root, 11, "fp-epoch0", ROSTER_NAMES[:n])
    for batch in partition:
        store.write_batch(batch, batch_records(batch, salt))
    return store


def build_incremental(root, prev, dirty, salt):
    """Assemble the next epoch the way the timeline layer does."""
    store = SegmentStore(root, 11, "fp-epoch1", prev.roster)
    dirty = set(dirty)
    for entry in prev.batches():
        wanted = set(entry.positions) - dirty
        if not wanted:
            continue
        if wanted == set(entry.positions):
            store.adopt_batch(prev, entry)
        else:
            for pos in sorted(wanted):
                records = {
                    stream: prev.stream_records_for(stream, pos)
                    for stream in STREAMS
                }
                store.write_batch(
                    [pos], {s: r for s, r in records.items() if r}
                )
    for pos in sorted(dirty):
        store.write_batch([pos], batch_records([pos], salt))
    return store


def stream_bytes(store):
    return {
        stream: json.dumps(list(store.iter_stream(stream)), sort_keys=True)
        for stream in STREAMS
    }


@settings(max_examples=25, deadline=None)
@given(case=reuse_case())
def test_adoption_and_record_copy_match_cold_recompute(
    case, tmp_path_factory
):
    n, partition, dirty, salt = case
    base = tmp_path_factory.mktemp("reuse")
    prev = build_prev(base / "prev", n, partition, salt)
    incremental = build_incremental(base / "incr", prev, dirty, salt)
    cold = SegmentStore(base / "cold", 11, "fp-epoch1", ROSTER_NAMES[:n])
    for pos in range(n):
        cold.write_batch([pos], batch_records([pos], salt))
    assert stream_bytes(incremental) == stream_bytes(cold)
    assert incremental.covered_positions() == set(range(n))
    # Point reads through the adopted/copied batches agree too.
    for pos in range(n):
        for stream in ("bids", "flows", "dsar"):
            assert incremental.stream_records_for(
                stream, pos
            ) == cold.stream_records_for(stream, pos)


@settings(max_examples=10, deadline=None)
@given(case=reuse_case())
def test_link_failure_fallback_is_also_byte_identical(
    case, tmp_path_factory
):
    n, partition, dirty, salt = case
    base = tmp_path_factory.mktemp("nolink")
    prev = build_prev(base / "prev", n, partition, salt)
    real_link = os.link

    def refuse(*args, **kwargs):
        raise OSError("EXDEV: cross-device link")

    os.link = refuse
    try:
        incremental = build_incremental(base / "incr", prev, dirty, salt)
    finally:
        os.link = real_link
    assert stream_bytes(incremental) == stream_bytes(prev)


@settings(max_examples=10, deadline=None)
@given(case=reuse_case())
def test_deleted_indexes_rebuild_to_the_same_reads(case, tmp_path_factory):
    n, partition, dirty, salt = case
    base = tmp_path_factory.mktemp("noindex")
    prev = build_prev(base / "prev", n, partition, salt)
    expected = stream_bytes(prev)
    points = {
        (stream, pos): prev.stream_records_for(stream, pos)
        for stream in ("bids", "dsar")
        for pos in range(n)
    }
    for index_path in prev.batches_dir.glob("index-*.json"):
        index_path.unlink()
    fresh = SegmentStore(base / "prev", 11, "fp-epoch0", ROSTER_NAMES[:n])
    assert stream_bytes(fresh) == expected
    for (stream, pos), records in points.items():
        assert fresh.stream_records_for(stream, pos) == records
    # The rebuilt sidecars were persisted for the next reader.
    assert list(fresh.batches_dir.glob("index-*.json"))
