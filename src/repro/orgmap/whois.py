"""Simulated WHOIS service.

The paper falls back to WHOIS when DuckDuckGo/Crunchbase entity data does
not cover a domain.  Our WHOIS database is seeded from the simulation's
endpoint registry but — like the real thing — is lossy: a configurable
fraction of records is privacy-redacted, forcing the resolver to report
``unknown`` for those registrants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.endpoints import EndpointRegistry, registrable_domain
from repro.util.rng import Seed

__all__ = ["WhoisRecord", "WhoisService", "REDACTED"]

REDACTED = "REDACTED FOR PRIVACY"


@dataclass(frozen=True)
class WhoisRecord:
    """A WHOIS response for a registrable domain."""

    domain: str
    registrant_org: str
    registrar: str = "SimRegistrar, Inc."

    @property
    def is_redacted(self) -> bool:
        return self.registrant_org == REDACTED


class WhoisService:
    """WHOIS lookups over the simulated domain universe."""

    def __init__(
        self,
        registry: EndpointRegistry,
        seed: Seed,
        redaction_rate: float = 0.15,
    ) -> None:
        if not 0.0 <= redaction_rate <= 1.0:
            raise ValueError(f"redaction_rate must be in [0, 1], got {redaction_rate}")
        self._records: Dict[str, WhoisRecord] = {}
        rng = seed.rng("whois", "redaction")
        for endpoint in registry:
            base = registrable_domain(endpoint.domain)
            if base in self._records:
                continue
            redacted = rng.random() < redaction_rate
            self._records[base] = WhoisRecord(
                domain=base,
                registrant_org=REDACTED if redacted else endpoint.organization,
            )
        self.query_count = 0

    def lookup(self, domain: str) -> Optional[WhoisRecord]:
        """WHOIS query for the registrable domain of ``domain``."""
        self.query_count += 1
        return self._records.get(registrable_domain(domain))
