"""Optimized-pipeline equivalence across all four campaign modes.

The sealed-flow capture path, the memoized analysis caches, and the
copy-on-read dataset cache are pure performance work: they must not
move a single exported byte.  This test pins that down across the four
modes the perf PR touches — serial and 4-worker parallel, each under a
healthy network and under mild fault injection — by checking that every
export file is byte-identical between serial and parallel for both
fault profiles, and that the analysis layer reports its cache counters.
"""

import hashlib

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES, export_dataset
from repro.core.traffic import analyze_traffic
from repro.util.rng import Seed

SEED_ROOT = 42


def _config(fault_profile):
    return ExperimentConfig(
        skills_per_persona=2,
        pre_iterations=1,
        post_iterations=1,
        crawl_sites=2,
        prebid_discovery_target=5,
        audio_hours=0.5,
        fault_profile=fault_profile,
    )


def _export_digests(dataset, out_dir):
    export_dataset(dataset, out_dir)
    return {
        name: hashlib.sha256((out_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


class TestFourModeEquivalence:
    @pytest.mark.parametrize("fault_profile", ["none", "mild"])
    def test_serial_and_parallel_exports_identical(self, tmp_path, fault_profile):
        config = _config(fault_profile)
        serial = run_campaign(config, Seed(SEED_ROOT))
        parallel = run_campaign(
            config, Seed(SEED_ROOT), parallel=True, workers=4, backend="thread"
        )
        serial_digests = _export_digests(serial, tmp_path / "serial")
        parallel_digests = _export_digests(parallel, tmp_path / "parallel")
        mismatched = [
            name
            for name in EXPORT_FILES
            if serial_digests[name] != parallel_digests[name]
        ]
        assert not mismatched, (
            f"[faults={fault_profile}] parallel exports diverged: {mismatched}"
        )

    def test_obs_counters_present(self):
        """The perf layer's counters flow through a traced campaign."""
        dataset = run_campaign(_config("none"), Seed(SEED_ROOT))
        assert dataset.obs is not None
        assert dataset.obs.metrics.value("flows.sealed") > 0

        world = dataset.world
        vendor_by_skill = {s.skill_id: s.vendor for s in world.catalog}
        analyze_traffic(
            dataset, world.org_resolver(), world.filter_list, vendor_by_skill
        )
        assert dataset.obs.metrics.value("analysis.domain_cache_hits") > 0

    def test_analysis_identical_for_any_worker_count(self):
        """analyze_traffic's fan-out is pure parallelism: same result."""
        dataset = run_campaign(_config("none"), Seed(SEED_ROOT), obs=False)
        world = dataset.world
        vendor_by_skill = {s.skill_id: s.vendor for s in world.catalog}

        def run(workers):
            analysis = analyze_traffic(
                dataset,
                world.org_resolver(),
                world.filter_list,
                vendor_by_skill,
                workers=workers,
            )
            return (
                analysis.traffic_matrix,
                analysis.domain_org,
                analysis.domain_class,
                analysis.skills_by_domain,
                [(t.skill_id, t.persona, t.domains) for t in analysis.per_skill],
            )

        serial = run(None)
        assert run(2) == serial
        assert run(4) == serial
