"""Flat-memory smoke: peak memory must not scale with roster size.

The segment-store path writes each shard batch to disk and analyzes the
campaign as single-pass folds over k-way-merged streams, so its peak
heap is bounded by one batch plus the analysis aggregates — never by
the roster.  This script runs the same tiny per-persona workload at
``--small-scale`` (the paper's 13-persona roster) and ``--large-scale``
(139 personas by default), measures the tracemalloc peak of each
campaign+export, and fails when the large run's peak exceeds
``--max-ratio`` (default 1.5) times the small run's.

Usage::

    PYTHONPATH=src python benchmarks/memory_smoke.py \
        --out bench-memory-current.json

The report is gated in CI against ``benchmarks/BENCH_memory.json`` by
``benchmarks/check_bench_regression.py`` (the ``max_ratio`` ceiling),
and the script itself exits non-zero on violation so it also stands
alone.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.campaign import run_segment_campaign  # noqa: E402
from repro.core.experiment import ExperimentConfig  # noqa: E402
from repro.core.export import export_segment_store  # noqa: E402
from repro.util.rng import Seed  # noqa: E402

#: Per-persona workload for the smoke — small enough that a 139-persona
#: roster finishes in CI, large enough that every stream is non-empty.
SMOKE_WORKLOAD = dict(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


def _campaign_peak_bytes(scale: int, batch: int, root: Path) -> tuple:
    """Run one segment campaign + export; return (personas, peak bytes)."""
    import gc

    config = ExperimentConfig(roster_scale=scale, **SMOKE_WORKLOAD)
    gc.collect()
    if tracemalloc.is_tracing():
        tracemalloc.reset_peak()
    store = run_segment_campaign(
        config,
        Seed(42),
        store_dir=root / f"scale-{scale}" / "segments",
        batch_personas=batch,
    )
    counts = export_segment_store(store, root / f"scale-{scale}" / "out")
    _, peak = tracemalloc.get_traced_memory()
    assert counts["bids.csv"] > 0, "smoke workload produced no bids"
    return len(store.roster), peak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="write the bench-json report to PATH")
    parser.add_argument("--small-scale", type=int, default=1,
                        help="baseline roster scale (default 1 = 13 personas)")
    parser.add_argument("--large-scale", type=int, default=15,
                        help="stress roster scale (default 15 = 139 personas)")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="allowed large/small peak ratio (default 1.5)")
    parser.add_argument("--batch-personas", type=int, default=4,
                        help="personas per segment batch, both runs "
                        "(default 4) — peak must track this, not roster")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-memory-smoke-") as tmp:
        root = Path(tmp)
        # Untraced warm-up at the LARGE scale: one-time process-global
        # costs — module caches, and CPython's interned-identifier table
        # reaching its final size (pathlib interns every path component,
        # and a table rehash transiently holds both the old and new
        # ~MB-sized tables) — are charged here, so the traced runs below
        # compare steady-state campaign working sets, which is what the
        # flat-memory claim is about.
        _campaign_peak_bytes(args.large_scale, args.batch_personas, root / "warm")
        tracemalloc.start()
        small_n, small_peak = _campaign_peak_bytes(
            args.small_scale, args.batch_personas, root
        )
        large_n, large_peak = _campaign_peak_bytes(
            args.large_scale, args.batch_personas, root
        )
    tracemalloc.stop()

    ratio = large_peak / small_peak
    maxrss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    report = {
        "memory_smoke": {
            "ratio": round(ratio, 4),
            "small_personas": small_n,
            "large_personas": large_n,
            "small_peak_mb": round(small_peak / 2**20, 2),
            "large_peak_mb": round(large_peak / 2**20, 2),
            "ru_maxrss_mb": round(maxrss_mb, 1),
        }
    }
    print(
        f"peak heap: {small_n} personas -> {small_peak / 2**20:.2f} MiB, "
        f"{large_n} personas -> {large_peak / 2**20:.2f} MiB "
        f"(ratio {ratio:.2f}x, process ru_maxrss {maxrss_mb:.0f} MiB)"
    )
    if args.out:
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report written to {args.out}")
    if ratio > args.max_ratio:
        print(
            f"FLAT-MEMORY VIOLATION: {ratio:.2f}x exceeds the "
            f"{args.max_ratio:.2f}x ceiling — the segment path is "
            "accumulating per-persona state",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
