"""The one campaign entrypoint: :func:`run_campaign`.

The framework grew three ways to run the measurement campaign — serial
(``run_experiment``), persona-sharded parallel
(``run_parallel_experiment``), and disk-cached
(``run_cached_experiment``) — each with its own argument order and no
shared observability story.  :func:`run_campaign` collapses them behind
one signature::

    dataset = run_campaign(config, seed)                     # serial
    dataset = run_campaign(config, seed, parallel=True,
                           workers=4, backend="process")     # sharded
    dataset = run_campaign(config, seed, cache=True)         # cached

Observability is on by default: every run traces into an
:class:`~repro.obs.ObsCollector` (spans, counters, events, manifest)
exposed as ``dataset.obs``.  Pass ``obs=False`` to disable it, or your
own collector to trace into it.  Parallel runs merge per-shard
collectors so the simulated-time span tree is byte-identical to the
serial run's for the same seed.

The legacy entrypoints survive as thin shims that raise
``DeprecationWarning`` and delegate here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.experiment import (
    AuditDataset,
    ExperimentConfig,
    _run_serial_experiment,
)
from repro.core.parallel import (
    SupervisorPolicy,
    WorkerFaultPlan,
    _run_parallel_experiment,
    shard_personas,
)
from repro.core.personas import scaled_roster
from repro.obs import NULL_OBS, ObsCollector, RunManifest
from repro.util.rng import Seed

__all__ = ["run_campaign", "run_segment_campaign"]

#: Default worker count when ``parallel=True`` and ``workers`` is unset.
_DEFAULT_WORKERS = 2


def _resolve_seed(seed: Union[int, Seed]) -> Seed:
    if isinstance(seed, Seed):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be an int or Seed, got {type(seed).__name__}")
    return Seed(seed)


def _resolve_obs(obs: Union[None, bool, ObsCollector]):
    """``None`` → fresh collector, ``False`` → disabled, collector → as-is."""
    if obs is None or obs is True:
        return ObsCollector()
    if obs is False:
        return NULL_OBS
    if isinstance(obs, ObsCollector):
        return obs
    raise TypeError(
        f"obs must be None, a bool, or an ObsCollector, got {type(obs).__name__}"
    )


def _resolve_cache(cache):
    """``None``/``False`` → off, ``True`` → default root, path → that root,
    :class:`~repro.core.cache.DatasetCache` → as-is."""
    from repro.core.cache import DatasetCache

    if cache is None or cache is False:
        return None
    if cache is True:
        return DatasetCache()
    if isinstance(cache, (str, Path)):
        return DatasetCache(Path(cache))
    if isinstance(cache, DatasetCache):
        return cache
    raise TypeError(
        "cache must be None, a bool, a path, or a DatasetCache, got "
        f"{type(cache).__name__}"
    )


def run_campaign(
    config: Optional[ExperimentConfig] = None,
    seed: Union[int, Seed] = 42,
    *,
    parallel: bool = False,
    workers: Optional[int] = None,
    backend: str = "process",
    cache=None,
    cache_copy: bool = True,
    obs: Union[None, bool, ObsCollector] = None,
    checkpoint_dir: Union[None, str, Path] = None,
    resume: bool = False,
    on_shard_failure: str = "retry",
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 2,
    worker_faults: Optional[WorkerFaultPlan] = None,
) -> AuditDataset:
    """Run the full measurement campaign and return its dataset.

    Parameters
    ----------
    config:
        Scale knobs; ``None`` means the paper-scale default.
    seed:
        Root seed as an ``int`` or a :class:`~repro.util.rng.Seed`.
    parallel:
        Shard the persona roster across workers.  The exported dataset —
        and the merged trace's simulated-time span tree — are identical
        to the serial run's for the same seed.
    workers, backend:
        Parallel topology (only valid with ``parallel=True``); backend
        is ``"process"`` or ``"thread"``.
    cache:
        ``True`` / a path / a :class:`~repro.core.cache.DatasetCache` to
        memoize the serial campaign on disk per ``(seed, config)``.
        Mutually exclusive with ``parallel``.
    cache_copy:
        On a cache hit, ``True`` (default) returns an independent deep
        copy of the cached dataset; ``False`` aliases the cached
        instance — much cheaper, for read-only consumers (reports,
        exports, benchmarks).  Attaching the run manifest to
        ``dataset.obs`` is the one mutation this function itself makes.
    obs:
        ``None`` (default) traces into a fresh
        :class:`~repro.obs.ObsCollector`, returned as ``dataset.obs``;
        ``False`` disables observability; an existing collector traces
        into it (serial/cached only).
    checkpoint_dir:
        Directory for the crash-safe shard journal
        (:class:`~repro.core.checkpoint.ShardJournal`): every completed
        shard is atomically checkpointed there, so a killed campaign can
        be resumed.  Parallel only.  When unset, shard results still
        flow through an ephemeral journal that is discarded on return.
    resume:
        Load valid checkpointed shards from ``checkpoint_dir`` instead
        of recomputing them.  Requires ``checkpoint_dir`` and the same
        seed, config, and worker count as the interrupted run (the
        journal key is validated).  Shard artifacts being
        seed-deterministic, the resumed exports are byte-identical to an
        uninterrupted run's.
    on_shard_failure:
        Supervisor policy when a shard worker crashes, hangs, or
        publishes a poisoned result: ``"retry"`` (default) requeues up
        to ``max_shard_retries`` times then raises
        :class:`~repro.core.parallel.ShardFailure`; ``"raise"``
        propagates the first failure; ``"degrade"`` drops exhausted
        shards and returns an explicitly-partial dataset
        (``dataset.missing_personas``, manifest, ``supervisor.*``
        counters).
    shard_timeout:
        Wall-clock (host) seconds before the watchdog reaps a hung
        shard worker and requeues it; ``None`` disables the watchdog.
    max_shard_retries:
        Requeues per shard after its first failed attempt.
    worker_faults:
        Seeded :class:`~repro.core.parallel.WorkerFaultPlan` injecting
        worker-level crash/hang/poison faults (tests, chaos CI).
    """
    from repro import __version__
    from repro.core.cache import config_fingerprint

    if config is None:
        config = ExperimentConfig()
    seed = _resolve_seed(seed)
    collector = _resolve_obs(obs)
    cache_store = _resolve_cache(cache)

    if not parallel and workers is not None:
        raise ValueError("workers requires parallel=True")
    if not parallel:
        supervisor_knobs = {
            "checkpoint_dir": (checkpoint_dir, None),
            "resume": (resume, False),
            "on_shard_failure": (on_shard_failure, "retry"),
            "shard_timeout": (shard_timeout, None),
            "max_shard_retries": (max_shard_retries, 2),
            "worker_faults": (worker_faults, None),
        }
        offending = [
            name for name, (value, default) in supervisor_knobs.items()
            if value != default
        ]
        if offending:
            raise ValueError(
                f"{', '.join(offending)} require(s) parallel=True — the "
                "checkpoint journal and shard supervisor only exist for "
                "sharded runs"
            )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir=...")
    if not cache_copy and cache_store is None:
        raise ValueError("cache_copy=False requires cache=...")
    if parallel and cache_store is not None:
        raise ValueError(
            "cache=... is mutually exclusive with parallel=True; the cache "
            "stores serial campaigns (a cached parallel run would never "
            "exercise the shard merge it exists to verify)"
        )
    if parallel and isinstance(collector, ObsCollector) and obs not in (None, True):
        raise ValueError(
            "cannot trace a parallel run into a caller-supplied collector; "
            "pass obs=None and read the merged collector from dataset.obs"
        )

    fingerprint = config_fingerprint(config)
    roster = tuple(p.name for p in scaled_roster(config.roster_scale))

    if parallel:
        n_workers = _DEFAULT_WORKERS if workers is None else workers
        policy = SupervisorPolicy(
            on_shard_failure=on_shard_failure,
            shard_timeout=shard_timeout,
            max_shard_retries=max_shard_retries,
            worker_faults=worker_faults,
        )
        dataset, report = _run_parallel_experiment(
            seed,
            config,
            workers=n_workers,
            backend=backend,
            collect_obs=collector.enabled,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            policy=policy,
        )
        shards = tuple(
            tuple(p.name for p in shard)
            for shard in shard_personas(scaled_roster(config.roster_scale), n_workers)
        )
        manifest = RunManifest(
            seed_root=seed.root,
            config_fingerprint=fingerprint,
            entrypoint="parallel",
            workers=len(shards),
            backend=backend,
            shards=shards,
            package_version=__version__,
            fault_profile=config.fault_profile,
            shard_attempts=tuple(
                tuple(report.attempts.get(index, []))
                for index in range(len(shards))
            ),
            missing_personas=report.missing_personas,
            resumed=resume,
            checkpointed=checkpoint_dir is not None,
        )
    elif cache_store is not None:
        dataset = cache_store.read(
            seed.root,
            config,
            copy=cache_copy,
            compute=lambda: _run_serial_experiment(seed, config, obs=collector),
        )
        manifest = RunManifest(
            seed_root=seed.root,
            config_fingerprint=fingerprint,
            entrypoint="cached",
            shards=(roster,),
            cache_hit=cache_store.last_hit,
            package_version=__version__,
            fault_profile=config.fault_profile,
        )
    else:
        dataset = _run_serial_experiment(seed, config, obs=collector)
        manifest = RunManifest(
            seed_root=seed.root,
            config_fingerprint=fingerprint,
            entrypoint="serial",
            shards=(roster,),
            package_version=__version__,
            fault_profile=config.fault_profile,
        )

    if dataset.obs is not None:
        manifest.phase_real_seconds = {
            name: seconds
            for name, seconds in dataset.timings.items()
            if "." not in name  # skip shard-prefixed worker timings
        }
        dataset.obs.manifest = manifest
    return dataset


def run_segment_campaign(
    config: Optional[ExperimentConfig] = None,
    seed: Union[int, Seed] = 42,
    *,
    store_dir: Union[str, Path],
    parallel: bool = False,
    workers: Optional[int] = None,
    backend: str = "process",
    batch_personas: int = 1,
    on_shard_failure: str = "retry",
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 2,
    worker_faults: Optional[WorkerFaultPlan] = None,
):
    """Run the campaign into a segment store instead of memory.

    The flat-memory entrypoint: personas are executed in
    ``batch_personas``-sized batches, each batch's artifacts are
    flattened to segment records and published to the
    :class:`~repro.core.segments.SegmentStore` under ``store_dir``, and
    the batch is dropped before the next one starts — peak memory is
    bounded by one batch, not the roster.  Export the result with
    :func:`repro.core.export.export_segment_store`; for the same seed
    and config the files are byte-identical to the in-memory path's.

    Coverage is content-addressed per batch, which subsumes the
    dataset cache and the shard checkpoint journal at once: re-running
    the same ``(seed, config)`` skips covered personas (reuse), and a
    killed campaign — serial or parallel — resumes from its completed
    batches without any extra flags.

    With ``parallel=True`` the roster is sharded under the same
    supervisor as :func:`run_campaign` (``on_shard_failure`` /
    ``shard_timeout`` / ``max_shard_retries`` / ``worker_faults``
    behave identically); workers write segments directly to the shared
    store and return artifact-free shard results, so nothing
    persona-sized ever crosses the process boundary.

    Returns the :class:`~repro.core.segments.SegmentStore`; its
    manifest status is ``"complete"``, or ``"partial"`` when a degraded
    parallel run dropped personas.
    """
    import functools
    import gc
    import shutil
    import tempfile

    from repro import __version__
    from repro.core.cache import config_fingerprint
    from repro.core.checkpoint import ShardJournal
    from repro.core.parallel import _ShardSupervisor
    from repro.core.segments import (
        SegmentStore,
        run_segment_shard,
        write_segment_batch,
    )

    if config is None:
        config = ExperimentConfig()
    seed = _resolve_seed(seed)
    if batch_personas < 1:
        raise ValueError(f"batch_personas must be >= 1, got {batch_personas}")
    if not parallel and workers is not None:
        raise ValueError("workers requires parallel=True")

    fingerprint = config_fingerprint(config)
    roster = scaled_roster(config.roster_scale)
    names = tuple(p.name for p in roster)
    store = SegmentStore(store_dir, seed.root, fingerprint, names)
    store.ensure_manifest()

    if not parallel:
        covered = store.covered_positions()
        pending = [pos for pos in range(len(names)) if pos not in covered]
        for start in range(0, len(pending), batch_personas):
            write_segment_batch(
                store, seed, config, pending[start : start + batch_personas]
            )
            # The dead world/runner graph is cyclic; collect it now so
            # peak memory stays one-batch-sized instead of riding the
            # generational GC's schedule across a long roster.
            gc.collect()
        store.write_manifest("complete")
        return store

    n_workers = _DEFAULT_WORKERS if workers is None else workers
    if n_workers < 1:
        raise ValueError(f"workers must be >= 1, got {n_workers}")
    policy = SupervisorPolicy(
        on_shard_failure=on_shard_failure,
        shard_timeout=shard_timeout,
        max_shard_retries=max_shard_retries,
        worker_faults=worker_faults,
    )
    plan = [
        [p.name for p in shard] for shard in shard_personas(roster, n_workers)
    ]
    # The journal here is supervisor bookkeeping only (attempt history,
    # crash/hang/poison recovery) — durability lives in the store's
    # content-addressed batches, so the journal is ephemeral.
    journal_root = tempfile.mkdtemp(prefix="repro-segment-journal-")
    try:
        journal = ShardJournal(journal_root, seed.root, fingerprint, plan)
        journal.reset()
        journal.write_manifest(status="running", package_version=__version__)
        supervisor = _ShardSupervisor(
            journal,
            seed,
            config,
            backend,
            False,  # collect_obs: segment shards never trace
            policy,
            shard_fn=functools.partial(
                run_segment_shard,
                store_root=str(store.root),
                batch_personas=batch_personas,
            ),
        )
        _, report = supervisor.run({})
    finally:
        shutil.rmtree(journal_root, ignore_errors=True)

    store.write_manifest("partial" if report.missing_personas else "complete")
    return store
