#!/usr/bin/env python3
"""Quickstart: stand up the simulated lab, audit one skill, peek at ads.

Runs in a few seconds.  Shows the three observation channels the
framework is built on:

1. encrypted traffic captured on the router while a skill runs;
2. the AVS Echo's pre-encryption plaintext (what data the skill collects);
3. header-bidding bids collected by a logged-in browser profile.
"""

from repro.alexa import AVSEcho, AmazonAccount, EchoDevice
from repro.core.world import build_world
from repro.util.rng import Seed
from repro.web import BrowserProfile, OpenWPMCrawler, discover_prebid_sites


def main() -> None:
    world = build_world(Seed(42))

    # --- 1. run one skill on an Echo behind the router ----------------- #
    account = AmazonAccount(email="quickstart@persona.example.com", persona="demo")
    echo = EchoDevice("echo-demo", account, world.router, world.cloud, world.seed)
    garmin = world.catalog.by_name("Garmin")
    world.marketplace.install(account, garmin.skill_id)

    capture = world.router.start_capture("garmin", device_filter="echo-demo")
    echo.run_skill_session(garmin)
    echo.background_sync(list(garmin.amazon_endpoints))
    world.router.stop_capture(capture)

    hosts = sorted({p.sni for p in capture if p.sni})
    print(f"[capture] {len(capture)} packets; endpoints contacted:")
    for host in hosts:
        print(f"  - {host}")
    print("  (payloads are TLS-encrypted: the router sees only metadata)")

    # --- 2. same skill on the instrumented AVS Echo --------------------- #
    avs_account = AmazonAccount(email="avs@persona.example.com", persona="avs-demo")
    avs = AVSEcho("avs-demo", avs_account, world.router, world.cloud, world.seed)
    world.marketplace.install(avs_account, garmin.skill_id)
    avs.run_skill_session(garmin)

    data_events = [
        r.payload["body"]["data"]
        for r in avs.plaintext_log
        if r.payload["body"].get("event") == "skill-data"
    ]
    print(f"\n[AVS plaintext] data types the skill uploads: "
          f"{sorted(data_events[0]) if data_events else []}")

    # --- 3. collect a few header-bidding bids --------------------------- #
    profile = BrowserProfile("profile-demo", "demo")
    profile.login_amazon(account)
    crawler = OpenWPMCrawler(
        profile, world.universe, world.adtech, world.clock, world.seed
    )
    sites = discover_prebid_sites(
        world.toplist, world.universe, world.adtech, profile, world.clock, target=5
    )
    result = crawler.crawl_iteration(sites, iteration=0)
    cpms = sorted(b.cpm for b in result.bids)
    print(f"\n[web ads] {len(result.bids)} bids on {len(result.loaded_slots)} slots; "
          f"CPM range {cpms[0]:.3f} – {cpms[-1]:.3f}")
    print(f"[web ads] {len(result.ads)} creatives rendered, e.g. "
          f"{result.ads[0].creative.text!r}")

    syncs = [r for r in crawler.browser.request_log if "amazon-adsystem" in r.url]
    print(f"[cookie sync] {len(syncs)} advertisers synced their cookie with "
          f"Amazon during this single crawl")


if __name__ == "__main__":
    main()
