"""Append-only, content-addressed segment store for campaign artifacts.

The in-memory :class:`~repro.core.experiment.AuditDataset` keeps every
capture, bid, and request log of every persona resident at once, which
caps the roster at RAM.  This module is the streaming alternative: a
campaign writes each persona batch's artifacts as **segments** — JSONL
files, one per event stream — under a campaign directory keyed by seed
root and config fingerprint, then discards the batch.  Analyses and
exports consume the segments as roster-ordered event streams through a
bounded-memory k-way merge, so a 100k–1M persona roster completes with
flat memory.

Layout::

    <root>/campaign-seed<seed_root>-<fingerprint>/
        MANIFEST.json                      # campaign key + roster + status
        batches/batch-<firstpos>.json      # coverage marker per batch
        segments/<stream>-<firstpos>-<digest12>.jsonl

Durability and reuse rules (shared with :mod:`repro.core.checkpoint`):

* every file is published through :func:`atomic_write_bytes`, so a
  crash mid-write never leaves a half-written segment at a live name;
* every segment and marker is stamped with the segment schema version,
  the seed root, and the config fingerprint — foreign or stale entries
  never load;
* segment files are **content-addressed**: the file name embeds the
  sha256 of the file bytes, and the batch marker records the full
  digest per segment.  A batch counts as *covered* only when its marker
  validates and every referenced segment's digest matches, which is
  what subsumes the pickle-level :class:`~repro.core.cache.DatasetCache`
  with persona-granularity reuse: re-running the same (seed, config)
  campaign skips covered personas, and a campaign killed mid-run
  resumes from its completed batches.

I/O fast path
-------------

Three structures keep reads, reuse, and verification off the
O(campaign-size) cost curve:

* **Batch adoption (zero-copy reuse).**  :meth:`SegmentStore.adopt_batch`
  transfers a whole validated batch from another store of the same seed
  and roster (the timeline layer's previous epoch) by hard-linking the
  already-content-addressed segment files (``os.link``; byte copy
  through :func:`atomic_write_bytes` when the filesystem refuses links)
  and publishing a fresh marker that records the origin store's config
  fingerprint — no segment is parsed or re-serialized.  Record-level
  copy survives only for batches that straddle an epoch's dirty set.
  Adoption publishes ``segments.reuse.linked`` /
  ``segments.reuse.copied`` (files) counters on ``store.obs``; the
  record-level path counts ``segments.reuse.records``.
* **Offset-indexed point reads.**  Each batch writes a sidecar index
  (``batches/index-<firstpos>.json``) mapping roster position to the
  per-stream ``[byte offset, byte length, record count]`` of that
  persona's contiguous run of lines.  The sidecar is content-addressed
  against the marker (it names each segment file and its full digest)
  and is **rebuildable**: a missing, stale, or foreign index is
  regenerated from the segment file and rewritten, never an error.
  :meth:`SegmentStore.stream_records_for` seeks and parses one
  persona's lines instead of the whole file.
* **Cached digest verification.**  Scans verify every referenced
  segment's sha256.  Verified digests are cached in
  ``digest-cache.json`` next to the manifest, keyed by
  ``(file name, size, mtime_ns)``, so unchanged files are never
  re-hashed — across scans, processes, and service restarts.  Hits and
  misses count as ``segments.digest_cache.hits`` / ``.misses``.  Any
  mismatch clears the cache and switches the store handle to cold-path
  full hashing for every subsequent verification (set
  ``store.verify_digests_fully = True`` to force the cold path from
  the start); the mismatching segment file is quarantined to
  ``*.corrupt`` with a warning, matching the marker contract.

Streams
-------

Eight streams cover everything the export and analysis layers consume:
``personas`` (roster metadata, loaded slots, install failures, DSAR
missing-file verdicts), ``bids``, ``ads``, ``flows`` (per-skill capture
flows with their DNS-or-SNI domain), ``sync`` (cookie-sync events),
``dsar`` (per-request advertising interests), ``audio`` (audio-ad
segments), and ``policy`` (per-skill policy crawl outcomes).  Records
carry the roster position (``pos``) of their persona; within a persona
they keep collection order, so the merged stream reproduces exactly the
iteration order of the in-memory dataset — which is what keeps
segment-store exports byte-identical to the in-memory path.
"""

from __future__ import annotations

import gc
import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from heapq import heappop, heappush
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.checkpoint import atomic_write_bytes, quarantine_path
from repro.core.iosim import read_text as _seam_read_text
from repro.obs import NULL_OBS
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentRunner,
    PersonaArtifacts,
)
from repro.core.personas import positions_by_name, scaled_roster
from repro.core.profiling import persona_observations
from repro.core.syncing import persona_sync_events
from repro.core.world import build_config_world
from repro.util.rng import Seed

__all__ = [
    "SEGMENT_SCHEMA_VERSION",
    "STREAMS",
    "SegmentError",
    "CorruptSegmentError",
    "PositionsCoveredError",
    "SegmentStore",
    "persona_stream_records",
    "write_dataset_segments",
    "write_segment_batch",
    "run_segment_shard",
]

#: Bump whenever the segment record layout changes shape; stale entries
#: fail validation and are recomputed rather than reused.
SEGMENT_SCHEMA_VERSION = 1

_log = logging.getLogger(__name__)

#: Event streams, in export order.
STREAMS = (
    "personas",
    "bids",
    "ads",
    "flows",
    "sync",
    "dsar",
    "audio",
    "policy",
)

_MANIFEST_NAME = "MANIFEST.json"
_DIGEST_CACHE_NAME = "digest-cache.json"


class SegmentError(RuntimeError):
    """The segment store cannot serve this campaign."""


class CorruptSegmentError(SegmentError):
    """A segment or marker exists but fails validation."""


class PositionsCoveredError(SegmentError, ValueError):
    """A batch write targets roster positions that are already covered.

    Subclasses ``ValueError`` (it is an invalid-argument condition) but
    is separately catchable: a supervisor retry racing a reaped-but-
    still-running attempt loses this race benignly — segment content is
    seed-deterministic, so whichever writer won published identical
    bytes."""


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class _BatchEntry:
    """One validated coverage marker and its segment files."""

    marker_path: Path
    positions: Tuple[int, ...]
    #: stream -> (segment path, record count); streams with no records
    #: in this batch are absent.
    segments: Dict[str, Tuple[Path, int]]
    #: stream -> full sha256 from the marker (what the sidecar index is
    #: validated against).
    digests: Dict[str, str] = field(default_factory=dict)
    #: Config fingerprint stamped inside adopted segment files (None for
    #: batches this store wrote itself).
    origin_fingerprint: Optional[str] = None

    @property
    def first(self) -> int:
        return self.positions[0]

    @property
    def last(self) -> int:
        return self.positions[-1]


class SegmentStore:
    """Columnar event-stream store for one campaign ``(seed, config)``.

    The store is keyed exactly like the shard journal and the dataset
    cache: seed root plus config fingerprint (the campaign directory
    name embeds both), with the roster recorded in the manifest.  All
    mutation goes through :meth:`write_batch`; reads are streaming.
    """

    def __init__(
        self,
        root: Union[str, Path],
        seed_root: int,
        config_fingerprint: str,
        roster: Sequence[str],
    ) -> None:
        self.root = Path(root)
        self.seed_root = seed_root
        self.config_fingerprint = config_fingerprint
        self.roster: Tuple[str, ...] = tuple(roster)
        if not self.roster:
            raise ValueError("segment store roster must not be empty")
        if len(set(self.roster)) != len(self.roster):
            raise ValueError("segment store roster has duplicate personas")
        self.campaign_dir = (
            self.root / f"campaign-seed{seed_root}-{config_fingerprint}"
        )
        self.segments_dir = self.campaign_dir / "segments"
        self.batches_dir = self.campaign_dir / "batches"
        #: Observability sink for ``segments.reuse.*`` and
        #: ``segments.digest_cache.*`` counters; rebind to a live
        #: :class:`~repro.obs.ObsCollector` to record them.
        self.obs = NULL_OBS
        #: Force cold-path verification: every scan re-reads and
        #: re-hashes every segment file, ignoring the digest cache.
        self.verify_digests_fully = False
        self._scan_cache: Optional[List[_BatchEntry]] = None
        self._pos_entry: Optional[Dict[int, _BatchEntry]] = None
        self._index_cache: Dict[int, Dict[str, Dict[str, list]]] = {}
        self._digest_cache: Optional[Dict[str, dict]] = None
        self._digest_cache_dirty = False
        #: Set after any digest mismatch: the cache is no longer trusted
        #: and every later verification takes the full-hash cold path.
        self._digest_cache_distrusted = False

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #

    @property
    def manifest_path(self) -> Path:
        return self.campaign_dir / _MANIFEST_NAME

    def write_manifest(
        self, status: str, extras: Optional[Dict[str, object]] = None
    ) -> None:
        """Publish the campaign manifest.

        ``extras`` merges additional top-level fields into the payload
        (e.g. the timeline layer's ``timeline.personas_reused`` /
        ``timeline.personas_recomputed`` counters); they may not shadow
        the fixed key fields.
        """
        if status not in ("running", "partial", "complete"):
            raise ValueError(f"invalid store status: {status!r}")
        payload = {
            "schema": SEGMENT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "roster": list(self.roster),
            "streams": list(STREAMS),
            "status": status,
            "package_version": _package_version(),
        }
        if extras:
            shadowed = set(extras) & set(payload)
            if shadowed:
                raise ValueError(
                    f"manifest extras shadow fixed fields: {sorted(shadowed)}"
                )
            payload.update(extras)
        atomic_write_bytes(
            self.manifest_path,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
            component="segments",
            op="manifest",
        )

    def read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptSegmentError(
                f"store manifest {self.manifest_path} is unreadable: {exc}"
            ) from exc

    def status(self) -> Optional[str]:
        """The manifest's campaign status (``"running"`` / ``"partial"``
        / ``"complete"``), or ``None`` before any manifest exists.  The
        service layer reads this to classify a finished segment job."""
        manifest = self.read_manifest()
        if manifest is None:
            return None
        value = manifest.get("status")
        return value if isinstance(value, str) else None

    def manifest_matches(self) -> bool:
        """True when a manifest exists and matches this campaign's key."""
        try:
            manifest = self.read_manifest()
        except CorruptSegmentError:
            return False
        if manifest is None:
            return False
        return (
            manifest.get("schema") == SEGMENT_SCHEMA_VERSION
            and manifest.get("seed_root") == self.seed_root
            and manifest.get("config_fingerprint") == self.config_fingerprint
            and manifest.get("roster") == list(self.roster)
        )

    def ensure_manifest(self) -> None:
        """Adopt a matching manifest (resume/reuse) or publish a fresh one."""
        if not self.manifest_matches():
            self.write_manifest("running")

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def write_batch(
        self,
        positions: Sequence[int],
        records_by_stream: Dict[str, List[dict]],
    ) -> Path:
        """Atomically publish one persona batch's records.

        ``positions`` are the roster positions the batch covers (need
        not be contiguous); every record must carry a ``pos`` from that
        set.  Per stream, records are stored sorted by ``pos`` (stable,
        preserving within-persona order).  Segment files land first,
        the coverage marker last — a crash between the two leaves only
        unreferenced (and therefore invisible) segment files behind.
        """
        ordered = sorted(set(int(p) for p in positions))
        if not ordered:
            raise ValueError("batch must cover at least one roster position")
        if ordered != sorted(set(positions)) or len(set(positions)) != len(
            list(positions)
        ):
            raise ValueError(f"duplicate positions in batch: {positions}")
        for pos in ordered:
            if not 0 <= pos < len(self.roster):
                raise ValueError(
                    f"position {pos} outside roster of {len(self.roster)}"
                )
        already = self.covered_positions() & set(ordered)
        if already:
            raise PositionsCoveredError(
                f"positions already covered by this store: {sorted(already)}"
            )
        unknown = set(records_by_stream) - set(STREAMS)
        if unknown:
            raise ValueError(f"unknown streams: {sorted(unknown)}")

        segments: Dict[str, Dict[str, object]] = {}
        index_streams: Dict[str, Dict[str, object]] = {}
        for stream in STREAMS:
            records = records_by_stream.get(stream, [])
            stray = [
                r["pos"] for r in records if r.get("pos") not in set(ordered)
            ]
            if stray:
                raise ValueError(
                    f"stream {stream!r} records outside batch positions: "
                    f"{sorted(set(stray))}"
                )
            if not records:
                continue
            records = sorted(records, key=lambda r: r["pos"])  # stable
            header = {
                "schema": SEGMENT_SCHEMA_VERSION,
                "seed_root": self.seed_root,
                "config_fingerprint": self.config_fingerprint,
                "stream": stream,
                "positions": ordered,
                "count": len(records),
            }
            header_line = _dumps(header)
            lines = [header_line]
            # Records of one pos are a contiguous run of lines (sorted
            # above); track each run's byte extent for the sidecar index.
            offsets: Dict[str, List[int]] = {}
            cursor = len(header_line.encode("utf-8")) + 1
            for record in records:
                line = _dumps(record)
                lines.append(line)
                span = len(line.encode("utf-8")) + 1
                run = offsets.setdefault(str(record["pos"]), [cursor, 0, 0])
                run[1] += span
                run[2] += 1
                cursor += span
            payload = ("\n".join(lines) + "\n").encode("utf-8")
            digest = _digest(payload)
            name = f"{stream}-{ordered[0]:08d}-{digest[:12]}.jsonl"
            atomic_write_bytes(
                self.segments_dir / name,
                payload,
                component="segments",
                op="segment",
            )
            self._cache_verified_digest(self.segments_dir / name, digest)
            segments[stream] = {
                "file": name,
                "digest": digest,
                "count": len(records),
            }
            index_streams[stream] = {
                "file": name,
                "digest": digest,
                "offsets": offsets,
            }

        self._write_index(ordered[0], ordered, index_streams)
        marker = {
            "schema": SEGMENT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "positions": ordered,
            "segments": segments,
        }
        marker_path = self.batches_dir / f"batch-{ordered[0]:08d}.json"
        atomic_write_bytes(
            marker_path,
            (json.dumps(marker, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
            component="segments",
            op="marker",
        )
        self._flush_digest_cache()
        self.invalidate_scan()
        return marker_path

    def adopt_batch(self, prev_store: "SegmentStore", entry) -> Dict[str, int]:
        """Zero-copy transfer of one validated batch from ``prev_store``.

        The segment files are already content-addressed (their digests
        are pinned by ``prev_store``'s marker, which a ``_scan`` has
        verified), so reuse needs no parse and no re-serialization:
        each file is hard-linked into this store (``os.link``), falling
        back to a byte copy through :func:`atomic_write_bytes` on
        filesystems that refuse cross-store links.  A fresh marker is
        published recording the origin store's config fingerprint —
        adopted segment *headers* carry the origin fingerprint, and
        reads validate them against it.

        The caller owns dirty-set logic: every position in ``entry``
        must be wanted as-is.  Returns ``{"linked": n, "copied": n}``
        file counts, also published as ``segments.reuse.linked`` /
        ``segments.reuse.copied`` obs counters.
        """
        if prev_store.seed_root != self.seed_root:
            raise ValueError(
                "adopt_batch requires matching seed roots: "
                f"{prev_store.seed_root} vs {self.seed_root}"
            )
        if prev_store.roster != self.roster:
            raise ValueError("adopt_batch requires identical rosters")
        already = self.covered_positions() & set(entry.positions)
        if already:
            raise PositionsCoveredError(
                f"positions already covered by this store: {sorted(already)}"
            )
        counts = {"linked": 0, "copied": 0}
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        segments: Dict[str, Dict[str, object]] = {}
        for stream in STREAMS:
            if stream not in entry.segments:
                continue
            source, count = entry.segments[stream]
            digest = entry.digests.get(stream, "")
            target = self.segments_dir / source.name
            try:
                os.link(source, target)
                counts["linked"] += 1
                self.obs.inc("segments.reuse.linked")
            except FileExistsError:
                # Content-addressed name: an existing live file at this
                # name holds identical bytes (atomic publishes only).
                counts["linked"] += 1
                self.obs.inc("segments.reuse.linked")
            except OSError:
                atomic_write_bytes(
                    target,
                    source.read_bytes(),
                    component="segments",
                    op="segment",
                )
                counts["copied"] += 1
                self.obs.inc("segments.reuse.copied")
            if digest:
                self._cache_verified_digest(target, digest)
            segments[stream] = {
                "file": source.name,
                "digest": digest,
                "count": count,
            }
        # The sidecar index is position-sized, not record-sized; reusing
        # the origin's (rebuilt from the segment if it was missing) and
        # re-stamping it under this store's envelope stays zero-parse
        # for the segment files themselves.
        index_streams: Dict[str, Dict[str, object]] = {}
        prev_index = prev_store._load_index(entry)
        for stream, ref in segments.items():
            offsets = prev_index.get(stream, {}).get("offsets")
            if offsets is not None:
                index_streams[stream] = {
                    "file": ref["file"],
                    "digest": ref["digest"],
                    "offsets": offsets,
                }
        self._write_index(entry.first, list(entry.positions), index_streams)
        marker = {
            "schema": SEGMENT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "positions": list(entry.positions),
            "segments": segments,
            "origin": {
                "config_fingerprint": (
                    entry.origin_fingerprint or prev_store.config_fingerprint
                )
            },
        }
        marker_path = self.batches_dir / f"batch-{entry.first:08d}.json"
        atomic_write_bytes(
            marker_path,
            (json.dumps(marker, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
            component="segments",
            op="marker",
        )
        self._flush_digest_cache()
        self.invalidate_scan()
        return counts

    # ------------------------------------------------------------------ #
    # Coverage / validation
    # ------------------------------------------------------------------ #

    def invalidate_scan(self) -> None:
        """Drop every cached view of on-disk state (coverage, position
        lookup, loaded sidecar indexes).  Callers that know another
        handle or process wrote batches use this instead of poking the
        private caches."""
        self._scan_cache = None
        self._pos_entry = None
        self._index_cache.clear()

    def covered_positions(self) -> Set[int]:
        """Roster positions with validated, content-addressed coverage."""
        return {
            pos for entry in self._scan() for pos in entry.positions
        }

    def batches(self) -> List[_BatchEntry]:
        """The validated coverage entries, in first-position order.

        The timeline layer iterates these to decide, batch by batch,
        between zero-copy :meth:`adopt_batch` and record-level copy."""
        return list(self._scan())

    def _scan(self) -> List[_BatchEntry]:
        """Validate every coverage marker; quarantine the broken ones.

        A marker survives only when its envelope matches this store's
        key, its positions are inside the roster and disjoint from
        previously accepted batches, and every referenced segment file
        exists with a matching content digest.  Anything else is moved
        to ``*.corrupt`` and treated as uncovered — the campaign simply
        recomputes those personas.
        """
        if self._scan_cache is not None:
            return self._scan_cache
        entries: List[_BatchEntry] = []
        seen: Set[int] = set()
        if self.batches_dir.is_dir():
            for marker_path in sorted(self.batches_dir.glob("batch-*.json")):
                entry = self._validate_marker(marker_path, seen)
                if entry is None:
                    _quarantine(marker_path)
                    continue
                seen.update(entry.positions)
                entries.append(entry)
        self._flush_digest_cache()
        self._scan_cache = entries
        self._pos_entry = {
            pos: entry for entry in entries for pos in entry.positions
        }
        return entries

    def _validate_marker(
        self, marker_path: Path, covered: Set[int]
    ) -> Optional[_BatchEntry]:
        try:
            marker = json.loads(marker_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(marker, dict):
            return None
        if (
            marker.get("schema") != SEGMENT_SCHEMA_VERSION
            or marker.get("seed_root") != self.seed_root
            or marker.get("config_fingerprint") != self.config_fingerprint
        ):
            return None
        positions = marker.get("positions")
        if (
            not isinstance(positions, list)
            or not positions
            or any(
                not isinstance(p, int) or not 0 <= p < len(self.roster)
                for p in positions
            )
            or sorted(set(positions)) != positions
            or covered & set(positions)
        ):
            return None
        origin = marker.get("origin")
        origin_fingerprint: Optional[str] = None
        if origin is not None:
            if not isinstance(origin, dict) or not isinstance(
                origin.get("config_fingerprint"), str
            ):
                return None
            origin_fingerprint = origin["config_fingerprint"]
        segments: Dict[str, Tuple[Path, int]] = {}
        digests: Dict[str, str] = {}
        refs = marker.get("segments")
        if not isinstance(refs, dict):
            return None
        for stream, ref in refs.items():
            if stream not in STREAMS or not isinstance(ref, dict):
                return None
            path = self.segments_dir / str(ref.get("file"))
            expected = ref.get("digest")
            if not isinstance(expected, str) or not expected:
                return None
            if not self._verify_segment(path, expected):
                return None
            segments[stream] = (path, int(ref.get("count", 0)))
            digests[stream] = expected
        return _BatchEntry(
            marker_path=marker_path,
            positions=tuple(positions),
            segments=segments,
            digests=digests,
            origin_fingerprint=origin_fingerprint,
        )

    # ------------------------------------------------------------------ #
    # Digest cache
    # ------------------------------------------------------------------ #

    @property
    def digest_cache_path(self) -> Path:
        return self.campaign_dir / _DIGEST_CACHE_NAME

    def _load_digest_cache(self) -> Dict[str, dict]:
        if self._digest_cache is None:
            files: Dict[str, dict] = {}
            try:
                # Corruptible seam read: a flipped bit fails the JSON
                # parse or schema check below and every file simply
                # verifies cold once — the cache is advisory.
                payload = json.loads(
                    _seam_read_text(
                        self.digest_cache_path,
                        component="segments",
                        op="digest-cache",
                        corruptible=True,
                    )
                )
                if (
                    isinstance(payload, dict)
                    and payload.get("schema") == SEGMENT_SCHEMA_VERSION
                    and isinstance(payload.get("files"), dict)
                ):
                    files = {
                        str(name): entry
                        for name, entry in payload["files"].items()
                        if isinstance(entry, dict)
                    }
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                pass  # absent or unreadable: every file verifies cold once
            self._digest_cache = files
        return self._digest_cache

    def _cache_verified_digest(self, path: Path, digest: str) -> None:
        cache = self._load_digest_cache()
        try:
            stat = path.stat()
        except OSError:
            return
        cache[path.name] = {
            "size": stat.st_size,
            "mtime_ns": stat.st_mtime_ns,
            "digest": digest,
        }
        self._digest_cache_dirty = True

    def _flush_digest_cache(self) -> None:
        if not self._digest_cache_dirty or self._digest_cache is None:
            return
        payload = {
            "schema": SEGMENT_SCHEMA_VERSION,
            "files": self._digest_cache,
        }
        atomic_write_bytes(
            self.digest_cache_path,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
            component="segments",
            op="digest-cache",
        )
        self._digest_cache_dirty = False

    def _verify_segment(self, path: Path, expected: str) -> bool:
        """Digest-check one segment file, through the verified cache.

        A cache entry matching the file's ``(size, mtime_ns)`` and the
        marker's expected digest skips the read+hash entirely.  On any
        mismatch the whole cache is cleared and this handle permanently
        falls back to cold-path full hashing; the corrupt file is
        quarantined to ``*.corrupt`` with a warning.
        """
        try:
            stat = path.stat()
        except OSError:
            return False
        cache = self._load_digest_cache()
        if not self.verify_digests_fully and not self._digest_cache_distrusted:
            cached = cache.get(path.name)
            if (
                cached is not None
                and cached.get("size") == stat.st_size
                and cached.get("mtime_ns") == stat.st_mtime_ns
                and cached.get("digest") == expected
            ):
                self.obs.inc("segments.digest_cache.hits")
                return True
        try:
            payload = path.read_bytes()
        except OSError:
            return False
        self.obs.inc("segments.digest_cache.misses")
        if _digest(payload) != expected:
            # Corruption observed: nothing cached is trusted anymore.
            self._digest_cache_distrusted = True
            if cache:
                cache.clear()
                self._digest_cache_dirty = True
            quarantined = _quarantine(path)
            _log.warning(
                "segment %s fails its content digest; quarantined to %s "
                "and treating its batch as uncovered",
                path.name,
                quarantined.name if quarantined is not None else "<gone>",
            )
            return False
        self._cache_verified_digest(path, expected)
        return True

    # ------------------------------------------------------------------ #
    # Sidecar index
    # ------------------------------------------------------------------ #

    def _index_path(self, first: int) -> Path:
        return self.batches_dir / f"index-{first:08d}.json"

    def _write_index(
        self,
        first: int,
        positions: Sequence[int],
        streams: Dict[str, Dict[str, object]],
    ) -> None:
        payload = {
            "schema": SEGMENT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "positions": list(positions),
            "streams": streams,
        }
        atomic_write_bytes(
            self._index_path(first),
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
            component="segments",
            op="index",
        )

    def _load_index(self, entry: _BatchEntry) -> Dict[str, Dict[str, dict]]:
        """The batch's sidecar index, rebuilt from segments if needed.

        Returns ``{stream: {"file", "digest", "offsets"}}`` where
        ``offsets`` maps ``str(pos)`` to ``[start, length, count]``
        byte extents.  The sidecar is trusted only when its envelope
        matches this store and every stream ref names the same file and
        digest as the validated marker — anything else (missing, stale,
        tampered, foreign) triggers a rebuild from the segment files,
        which is then persisted for the next reader.
        """
        cached = self._index_cache.get(entry.first)
        if cached is not None:
            return cached
        streams: Optional[Dict[str, Dict[str, dict]]] = None
        try:
            # Corruptible seam read: a flipped bit fails the JSON parse
            # or the envelope/digest match below, and the index is
            # rebuilt from the (digest-verified) segment files.
            payload = json.loads(
                _seam_read_text(
                    self._index_path(entry.first),
                    component="segments",
                    op="index",
                    corruptible=True,
                )
            )
            if (
                isinstance(payload, dict)
                and payload.get("schema") == SEGMENT_SCHEMA_VERSION
                and payload.get("seed_root") == self.seed_root
                and payload.get("config_fingerprint")
                == self.config_fingerprint
                and isinstance(payload.get("streams"), dict)
            ):
                candidate = payload["streams"]
                if all(
                    isinstance(candidate.get(stream), dict)
                    and candidate[stream].get("file")
                    == entry.segments[stream][0].name
                    and candidate[stream].get("digest")
                    == entry.digests.get(stream)
                    and isinstance(candidate[stream].get("offsets"), dict)
                    for stream in entry.segments
                ):
                    streams = {
                        stream: candidate[stream] for stream in entry.segments
                    }
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass
        if streams is None:
            streams = self._rebuild_index(entry)
            self._write_index(entry.first, list(entry.positions), streams)
        self._index_cache[entry.first] = streams
        return streams

    def _rebuild_index(self, entry: _BatchEntry) -> Dict[str, Dict[str, dict]]:
        """Recompute per-position byte extents by reading the segments."""
        streams: Dict[str, Dict[str, dict]] = {}
        for stream, (path, _count) in entry.segments.items():
            offsets: Dict[str, list] = {}
            with path.open("rb") as handle:
                cursor = len(handle.readline())  # header line
                for raw in handle:
                    if not raw.strip():
                        cursor += len(raw)
                        continue
                    record = json.loads(raw)
                    run = offsets.setdefault(
                        str(record["pos"]), [cursor, 0, 0]
                    )
                    run[1] += len(raw)
                    run[2] += 1
                    cursor += len(raw)
            streams[stream] = {
                "file": path.name,
                "digest": entry.digests.get(stream, ""),
                "offsets": offsets,
            }
        return streams

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def iter_stream(self, stream: str) -> Iterator[dict]:
        """All of one stream's records, merged into roster order.

        A bounded-memory k-way merge: segment files are activated
        lazily, in ascending first-position order, only once the merge
        frontier reaches them — so the number of concurrently open
        files is the overlap degree of the batch plan (1 for the
        contiguous batches a campaign writes), never the total segment
        count.  Within a persona, records keep their file order.
        """
        if stream not in STREAMS:
            raise ValueError(f"unknown stream: {stream!r}")
        entries = sorted(
            (e for e in self._scan() if stream in e.segments),
            key=lambda e: e.first,
        )
        return self._merge_entries(stream, entries)

    def _merge_entries(
        self, stream: str, entries: List[_BatchEntry]
    ) -> Iterator[dict]:
        # Fast path: the contiguous batch plan a campaign writes never
        # overlaps, so the sorted entries chain directly — no heap, no
        # per-record comparison.  The k-way heap survives for genuinely
        # overlapping position ranges (out-of-order backfills).
        if all(
            entries[i].last < entries[i + 1].first
            for i in range(len(entries) - 1)
        ):
            return self._chain_entries(stream, entries)
        return self._heap_merge_entries(stream, entries)

    def _chain_entries(
        self, stream: str, entries: List[_BatchEntry]
    ) -> Iterator[dict]:
        for entry in entries:
            yield from self._segment_records(entry, stream)

    def _heap_merge_entries(
        self, stream: str, entries: List[_BatchEntry]
    ) -> Iterator[dict]:
        heap: List[Tuple[int, int, int, dict, Iterator[dict]]] = []
        next_entry = 0
        serial = 0  # per-activation tiebreak; positions never tie across files
        while heap or next_entry < len(entries):
            while next_entry < len(entries) and (
                not heap or entries[next_entry].first <= heap[0][0]
            ):
                records = self._segment_records(
                    entries[next_entry], stream
                )
                first = next(records, None)
                if first is not None:
                    heappush(
                        heap, (first["pos"], serial, 0, first, records)
                    )
                    serial += 1
                next_entry += 1
            if not heap:
                break
            pos, tiebreak, seq, record, records = heappop(heap)
            yield record
            following = next(records, None)
            if following is not None:
                heappush(
                    heap,
                    (following["pos"], tiebreak, seq + 1, following, records),
                )

    def stream_records_for(self, stream: str, pos: int) -> List[dict]:
        """Point read: one persona's records of one stream.

        Indexed: the position is located through the scan's position
        map (no marker iteration) and the batch's sidecar index gives
        the persona's byte extent, so only its own lines are read and
        parsed — never the whole segment file.  Falls back to a full
        segment scan when the index disagrees with what it finds.
        """
        if stream not in STREAMS:
            raise ValueError(f"unknown stream: {stream!r}")
        if self._pos_entry is None:
            self._scan()
        entry = (self._pos_entry or {}).get(pos)
        if entry is None or stream not in entry.segments:
            return []
        extent = (
            self._load_index(entry).get(stream, {}).get("offsets", {})
        ).get(str(pos))
        if extent is None:
            return []
        start, length, count = extent
        path, _total = entry.segments[stream]
        try:
            with path.open("rb") as handle:
                handle.seek(start)
                blob = handle.read(length)
            records = [
                json.loads(line) for line in blob.splitlines() if line.strip()
            ]
            if len(records) == count and all(
                record.get("pos") == pos for record in records
            ):
                return records
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass
        # Extent disagrees with the file (e.g. a hand-edited segment
        # whose digest was refreshed but whose index was not): rescan.
        self._index_cache.pop(entry.first, None)
        return [
            record
            for record in self._segment_records(entry, stream)
            if record["pos"] == pos
        ]

    def _segment_records(
        self, entry: _BatchEntry, stream: str
    ) -> Iterator[dict]:
        path, count = entry.segments[stream]
        expected_fingerprint = (
            entry.origin_fingerprint or self.config_fingerprint
        )
        with path.open("r", encoding="utf-8") as handle:
            header = json.loads(next(handle))
            if (
                header.get("schema") != SEGMENT_SCHEMA_VERSION
                or header.get("stream") != stream
                or header.get("seed_root") != self.seed_root
                or header.get("config_fingerprint") != expected_fingerprint
            ):
                raise CorruptSegmentError(
                    f"segment {path.name} header fails validation"
                )
            yielded = 0
            for line in handle:
                if not line.strip():
                    continue
                yield json.loads(line)
                yielded += 1
            if yielded != count:
                raise CorruptSegmentError(
                    f"segment {path.name} holds {yielded} records, "
                    f"marker says {count}"
                )


def _quarantine(path: Path) -> Optional[Path]:
    return quarantine_path(path)


def _package_version() -> str:
    from repro import __version__

    return __version__


# ---------------------------------------------------------------------- #
# Record extraction
# ---------------------------------------------------------------------- #


def persona_stream_records(
    artifacts: PersonaArtifacts, pos: int
) -> Dict[str, List[dict]]:
    """One persona's artifacts as segment records, keyed by stream.

    Record field values are chosen so that a JSON round trip is exact
    (str/int/float/bool only) and so that export CSV rows built from
    them are byte-identical to rows built from the live objects — this
    function is the single point where the in-memory and segment
    representations meet.
    """
    persona = artifacts.persona
    observations, dsar_missing = persona_observations(artifacts)
    records: Dict[str, List[dict]] = {
        "personas": [
            {
                "pos": pos,
                "name": persona.name,
                "kind": persona.kind,
                "category": persona.category,
                "loaded_slots": sorted(artifacts.loaded_slots),
                "install_failures": list(artifacts.install_failures),
                "dsar_missing": dsar_missing,
            }
        ],
        "bids": [
            {
                "pos": pos,
                "persona": b.persona,
                "iteration": b.iteration,
                "site": b.site,
                "slot": b.slot_id,
                "bidder": b.bidder,
                "cpm": b.cpm,
                "interacted": b.interacted,
            }
            for b in artifacts.bids
        ],
        "ads": [
            {
                "pos": pos,
                "persona": ad.persona,
                "iteration": ad.iteration,
                "site": ad.site,
                "slot": ad.slot_id,
                "advertiser": ad.creative.advertiser,
                "product": ad.creative.product,
                "source": ad.creative.source,
            }
            for ad in artifacts.ads
        ],
        "sync": [
            {
                "pos": pos,
                "persona": event.persona,
                "source": event.source,
                "destination": event.destination_host,
                "uid": event.uid,
                "url": event.url,
            }
            for event in persona_sync_events(artifacts)
        ],
        "dsar": [
            {
                "pos": pos,
                "persona": obs.persona,
                "request": obs.request_label,
                "interests": (
                    list(obs.interests) if obs.interests is not None else None
                ),
            }
            for obs in observations
        ],
        "audio": [
            {
                "pos": pos,
                "persona": session.persona,
                "skill": session.skill_name,
                "start": segment.start,
                "brand": segment.label,
            }
            for session in artifacts.audio_sessions
            for segment in session.ad_segments
        ],
    }
    if persona.kind == "interest":
        records["flows"] = _flow_records(artifacts, pos)
        records["policy"] = [
            {
                "pos": pos,
                "persona": persona.name,
                "skill": fetch.skill_id,
                "has_link": fetch.has_link,
                "downloaded": fetch.downloaded,
                "mentions_amazon": (
                    fetch.downloaded and fetch.document.mentions_amazon
                ),
                "links_amazon_policy": (
                    fetch.downloaded and fetch.document.links_amazon_policy
                ),
            }
            for fetch in artifacts.policy_fetches
        ]
    else:
        records["flows"] = []
        records["policy"] = []
    return records


def _flow_records(artifacts: PersonaArtifacts, pos: int) -> List[dict]:
    rows: List[dict] = []
    for skill_id, capture in artifacts.skill_captures.items():
        dns = capture.dns_table()
        for flow in capture.flows():
            if flow.key[3] == "dns":
                continue
            domain = dns.domain_for_ip(flow.remote_ip) or flow.sni or ""
            rows.append(
                {
                    "pos": pos,
                    "persona": artifacts.persona.name,
                    "skill": skill_id,
                    "domain": domain,
                    "ip": flow.remote_ip,
                    "port": flow.remote_port,
                    "packets": len(flow.packets),
                    "bytes": flow.total_bytes,
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Campaign integration
# ---------------------------------------------------------------------- #


def write_dataset_segments(store: SegmentStore, dataset) -> None:
    """Materialize an in-memory dataset into ``store`` (one batch).

    Bridges the two worlds for benchmarks and tests: the dataset's
    personas must be exactly the store's roster, in order.
    """
    names = tuple(dataset.personas)
    if names != store.roster:
        raise ValueError(
            "dataset personas do not match the store roster: "
            f"{names} vs {store.roster}"
        )
    store.ensure_manifest()
    records: Dict[str, List[dict]] = {stream: [] for stream in STREAMS}
    for pos, name in enumerate(names):
        for stream, recs in persona_stream_records(
            dataset.personas[name], pos
        ).items():
            records[stream].extend(recs)
    store.write_batch(list(range(len(names))), records)
    store.write_manifest("complete")


def write_segment_batch(
    store: SegmentStore,
    seed: Seed,
    config: ExperimentConfig,
    positions: Sequence[int],
) -> None:
    """Run the campaign for one persona batch and publish its segments.

    The flat-memory unit: a private world is built, the batch's
    personas are driven through the full campaign, their artifacts are
    flattened to records and written, and everything is dropped before
    the next batch.  Per-persona artifacts are seed-substream-keyed
    (independent of batch composition), so any batching produces the
    same segments.
    """
    roster = scaled_roster(config.roster_scale)
    if tuple(p.name for p in roster) != store.roster:
        raise ValueError("config roster does not match the store roster")
    personas = [roster[pos] for pos in positions]
    world = build_config_world(seed, config)
    dataset = ExperimentRunner(world, config, personas=personas).run()
    records: Dict[str, List[dict]] = {stream: [] for stream in STREAMS}
    for pos, persona in zip(positions, personas):
        for stream, recs in persona_stream_records(
            dataset.personas[persona.name], pos
        ).items():
            records[stream].extend(recs)
    store.write_batch(list(positions), records)


def run_segment_shard(
    shard_index: int,
    seed: Seed,
    config: ExperimentConfig,
    persona_names: Sequence[str],
    collect_obs: bool = False,
    *,
    store_root: Union[str, Path],
    batch_personas: int = 1,
):
    """Supervisor shard body that emits segments instead of artifacts.

    Drop-in for :func:`repro.core.parallel._run_shard` (module-level so
    the process backend can pickle it through ``functools.partial``):
    instead of returning a pickled dataset bundle, the worker writes its
    personas' segments straight to the store in ``batch_personas``-sized
    batches — skipping batches already covered, which gives a crashed
    and retried shard persona-granularity resume for free — and returns
    a lightweight, artifact-free :class:`~repro.core.parallel.ShardResult`
    for the supervisor's journal bookkeeping.
    """
    from repro.core.cache import config_fingerprint
    from repro.core.parallel import ShardResult

    roster = scaled_roster(config.roster_scale)
    pos_by_name = positions_by_name(roster)
    unknown = [n for n in persona_names if n not in pos_by_name]
    if unknown:
        raise ValueError(f"unknown personas in shard {shard_index}: {unknown}")
    store = SegmentStore(
        store_root,
        seed.root,
        config_fingerprint(config),
        [p.name for p in roster],
    )
    positions = [pos_by_name[name] for name in persona_names]
    step = max(1, batch_personas)
    covered = store.covered_positions()
    pending = [pos for pos in positions if pos not in covered]
    for start in range(0, len(pending), step):
        chunk = pending[start : start + step]
        # Re-scan: another attempt of this shard (reaped as hung but
        # still running) may have covered these positions meanwhile.
        store.invalidate_scan()
        fresh = store.covered_positions()
        chunk = [pos for pos in chunk if pos not in fresh]
        if not chunk:
            continue
        try:
            write_segment_batch(store, seed, config, chunk)
        except PositionsCoveredError:
            store.invalidate_scan()  # lost the race; identical bytes won
        # Collect the batch's cyclic world/runner graph immediately so a
        # worker's peak memory is one batch, not GC-schedule-dependent.
        gc.collect()
    return ShardResult(
        shard_index=shard_index,
        persona_names=list(persona_names),
        personas={},
        prebid_sites=[],
        crawl_sites=[],
        policy_fetches=[],
        timings={},
        obs=None,
    )
