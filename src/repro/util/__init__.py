"""Shared utilities: deterministic RNG derivation, simulated clock, identifiers.

Everything in :mod:`repro` is deterministic given a root seed.  Components
never call :func:`random.random` or read the wall clock; instead they derive
named substreams from a :class:`~repro.util.rng.Seed` and read time from a
:class:`~repro.util.clock.SimClock`.
"""

from repro.util.clock import SimClock
from repro.util.ids import IdFactory, stable_hash
from repro.util.rng import Seed

__all__ = ["Seed", "SimClock", "IdFactory", "stable_hash"]
