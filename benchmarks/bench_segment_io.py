"""Segment-store I/O benchmarks: the fast paths vs their pre-optimization
baselines.

Not a paper table — these time the store's own hot paths on a synthetic
roster so regressions in the I/O fast path are caught: cold batch
writes, warm coverage re-scans (cached digest verification vs full
re-hashing), incremental-epoch reuse (zero-copy batch adoption vs the
record-level parse/re-serialize copy the timeline layer used before),
and indexed point reads vs full segment parses.  The ``speedup`` ratios
are what ``benchmarks/check_bench_regression.py`` gates in CI against
``benchmarks/BENCH_segments.json``; absolute seconds are informational.
Refresh the committed baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_segment_io.py \\
        --bench-json benchmarks/BENCH_segments.json

(then re-round the gated speedups down to conservative values so the
CI floor keeps absorbing runner noise).
"""

import time

from repro.obs import ObsCollector
from repro.core.segments import SegmentStore

#: Synthetic campaign shape: paper-scale roster count (roster_scale 10
#: ≈ 140 personas) in supervisor-style multi-persona batches, with
#: record payloads sized so hashing and JSON dominate, as they do for
#: real segment files.
ROSTER = tuple(f"persona-{i:03d}" for i in range(140))
BATCH_PERSONAS = 4
RECORDS_PER_POS = 40
STREAMS_USED = ("bids", "flows", "dsar")
_PAD = "x" * 300
SEED_ROOT = 77


def _records(positions):
    return {
        stream: [
            {"pos": pos, "stream": stream, "j": j, "pad": _PAD}
            for pos in positions
            for j in range(RECORDS_PER_POS)
        ]
        for stream in STREAMS_USED
    }


def _batches():
    return [
        list(range(start, min(start + BATCH_PERSONAS, len(ROSTER))))
        for start in range(0, len(ROSTER), BATCH_PERSONAS)
    ]


def _build_store(root, fingerprint):
    store = SegmentStore(root, SEED_ROOT, fingerprint, ROSTER)
    for batch in _batches():
        store.write_batch(batch, _records(batch))
    return store


def _store_bytes(store):
    return sum(p.stat().st_size for p in store.segments_dir.iterdir())


def bench_segment_cold_write(benchmark, bench_record, tmp_path):
    """Cold write throughput: serialize + hash + publish every batch.

    Informational (no speedup gate): the number to watch is MB/s drift.
    """
    counter = iter(range(1000))

    def cold_write():
        return _build_store(tmp_path / f"cold-{next(counter)}", "fp-cold")

    store = benchmark.pedantic(cold_write, rounds=1, iterations=1)
    started = time.perf_counter()
    store2 = _build_store(tmp_path / "cold-timed", "fp-cold")
    seconds = time.perf_counter() - started
    total_mb = _store_bytes(store2) / 1e6
    bench_record(
        "bench_segment_cold_write",
        cold_write_seconds=round(seconds, 3),
        store_mb=round(total_mb, 2),
        mb_per_second=round(total_mb / seconds, 1),
    )
    assert store2.covered_positions() == set(range(len(ROSTER)))


def bench_segment_warm_rescan(benchmark, bench_record, tmp_path):
    """Warm coverage re-scan: cached digest verification ≥3× full hashing.

    A fresh store handle (new process, service restart, supervisor
    retry) re-validates every batch marker.  The legacy path re-read
    and re-hashed every segment file on every scan; the digest cache
    turns an unchanged file into one ``stat`` call.
    """
    _build_store(tmp_path / "store", "fp-scan")

    def scan(verify_fully):
        store = SegmentStore(tmp_path / "store", SEED_ROOT, "fp-scan", ROSTER)
        store.verify_digests_fully = verify_fully
        store.obs = ObsCollector()
        started = time.perf_counter()
        covered = store.covered_positions()
        seconds = time.perf_counter() - started
        assert covered == set(range(len(ROSTER)))
        return seconds, store.obs.metrics.as_dict()["counters"]

    legacy_seconds = min(scan(True)[0] for _ in range(3))
    optimized_times, counters = [], {}
    for _ in range(3):
        seconds, counters = scan(False)
        optimized_times.append(seconds)
    optimized_seconds = min(optimized_times)
    benchmark.pedantic(lambda: scan(False), rounds=1, iterations=1)

    speedup = legacy_seconds / optimized_seconds
    measurements = {
        "legacy_seconds": round(legacy_seconds, 4),
        "optimized_seconds": round(optimized_seconds, 4),
        "speedup": round(speedup, 2),
        "segment_files": len(_batches()) * len(STREAMS_USED),
        "cache_hits": counters.get("segments.digest_cache.hits", 0),
    }
    bench_record("bench_segment_warm_rescan", **measurements)
    benchmark.extra_info.update(measurements)

    assert counters.get("segments.digest_cache.hits", 0) > 0
    assert "segments.digest_cache.misses" not in counters
    assert speedup >= 3.0, (
        f"warm re-scan speedup {speedup:.2f}x < 3.0x (full hashing "
        f"{legacy_seconds:.4f}s vs cached {optimized_seconds:.4f}s)"
    )


def _legacy_copy_epoch(prev, target):
    """Pre-adoption epoch reuse: per-position parse + re-serialize.

    What the timeline layer did before ``adopt_batch``: every clean
    persona's records were read back out of the previous store (a full
    parse of its batch's segment files — there was no sidecar index)
    and re-written through ``write_batch``, with every scan re-hashing
    every file (there was no digest cache).
    """
    prev.verify_digests_fully = True
    target.verify_digests_fully = True
    for entry in prev.batches():
        for pos in entry.positions:
            records = {
                stream: [
                    record
                    for record in prev._segment_records(entry, stream)
                    if record["pos"] == pos
                ]
                for stream in entry.segments
            }
            target.write_batch([pos], records)


def bench_segment_incremental_reuse(benchmark, bench_record, tmp_path):
    """Incremental-epoch reuse: zero-copy adoption ≥5× record copy.

    The timeline case with an empty dirty set (every batch fully
    clean): the legacy path round-trips every record through JSON and
    re-hashes on every write-triggered scan; adoption hard-links the
    content-addressed files and publishes fresh markers.
    """
    prev = _build_store(tmp_path / "prev", "fp-prev")

    started = time.perf_counter()
    legacy = SegmentStore(tmp_path / "legacy", SEED_ROOT, "fp-next", ROSTER)
    _legacy_copy_epoch(
        SegmentStore(tmp_path / "prev", SEED_ROOT, "fp-prev", ROSTER), legacy
    )
    legacy_seconds = time.perf_counter() - started

    def adopt():
        target = SegmentStore(
            tmp_path / "adopted", SEED_ROOT, "fp-next", ROSTER
        )
        target.obs = ObsCollector()
        counts = {"linked": 0, "copied": 0}
        for entry in prev.batches():
            batch_counts = target.adopt_batch(prev, entry)
            counts["linked"] += batch_counts["linked"]
            counts["copied"] += batch_counts["copied"]
        return target, counts

    started = time.perf_counter()
    target, counts = adopt()
    optimized_seconds = time.perf_counter() - started
    benchmark.pedantic(
        lambda: _build_store(tmp_path / "warmup", "fp-warm"),
        rounds=1,
        iterations=1,
    )

    speedup = legacy_seconds / optimized_seconds
    measurements = {
        "legacy_seconds": round(legacy_seconds, 3),
        "optimized_seconds": round(optimized_seconds, 4),
        "speedup": round(speedup, 2),
        "files_linked": counts["linked"],
        "files_copied": counts["copied"],
    }
    bench_record("bench_segment_incremental_reuse", **measurements)
    benchmark.extra_info.update(measurements)

    assert counts["linked"] == len(_batches()) * len(STREAMS_USED)
    assert target.covered_positions() == legacy.covered_positions()
    for stream in STREAMS_USED:
        assert list(target.iter_stream(stream)) == list(
            legacy.iter_stream(stream)
        ), f"adopted stream {stream!r} diverged from the record copy"
    assert speedup >= 5.0, (
        f"incremental reuse speedup {speedup:.2f}x < 5.0x (record copy "
        f"{legacy_seconds:.3f}s vs adoption {optimized_seconds:.4f}s)"
    )


def bench_segment_point_read(benchmark, bench_record, tmp_path):
    """Indexed point reads ≥1.5× full segment parses.

    One persona's records of one stream: the sidecar index seeks to the
    persona's byte extent; the legacy path parsed the whole segment
    file and filtered.
    """
    store = _build_store(tmp_path / "store", "fp-point")
    reads = [(stream, pos) for stream in STREAMS_USED for pos in range(len(ROSTER))]
    entries = store.batches()
    by_pos = {pos: e for e in entries for pos in e.positions}

    def legacy_reads():
        return [
            [
                record
                for record in store._segment_records(by_pos[pos], stream)
                if record["pos"] == pos
            ]
            for stream, pos in reads
        ]

    def indexed_reads():
        return [store.stream_records_for(stream, pos) for stream, pos in reads]

    indexed_reads()  # warm the sidecar index cache, as a real reader is
    started = time.perf_counter()
    legacy_results = legacy_reads()
    legacy_seconds = time.perf_counter() - started
    started = time.perf_counter()
    indexed_results = indexed_reads()
    optimized_seconds = time.perf_counter() - started
    benchmark.pedantic(indexed_reads, rounds=1, iterations=1)

    speedup = legacy_seconds / optimized_seconds
    measurements = {
        "legacy_seconds": round(legacy_seconds, 4),
        "optimized_seconds": round(optimized_seconds, 4),
        "speedup": round(speedup, 2),
        "point_reads": len(reads),
        "microseconds_per_read": round(1e6 * optimized_seconds / len(reads), 1),
    }
    bench_record("bench_segment_point_read", **measurements)
    benchmark.extra_info.update(measurements)

    assert indexed_results == legacy_results
    assert speedup >= 1.5, (
        f"point-read speedup {speedup:.2f}x < 1.5x (full parse "
        f"{legacy_seconds:.4f}s vs indexed {optimized_seconds:.4f}s)"
    )
