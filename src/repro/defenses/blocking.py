"""Router-level selective traffic blocking (paper §8.1, after [72]).

"Another example of a possible user defense is to selectively block
network traffic that is not essential for the skill to work."

:class:`BlockingRouter` wraps the stock router with a filter-list-driven
drop policy.  The evaluation question from *Blocking without Breaking*
applies here too: how much tracking disappears, and do skills still
function?  :func:`evaluate_blocking` measures both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.router import NetworkError, Router
from repro.orgmap.filterlists import FilterList

__all__ = ["BlockingRouter", "BlockReport", "evaluate_blocking"]


@dataclass
class BlockReport:
    """What the blocking policy did during a measurement window."""

    blocked: Dict[str, int] = field(default_factory=dict)
    allowed: int = 0

    @property
    def blocked_total(self) -> int:
        return sum(self.blocked.values())

    @property
    def block_rate(self) -> float:
        total = self.blocked_total + self.allowed
        return self.blocked_total / total if total else 0.0


class BlockingRouter:
    """A drop-in `Router` facade that drops filter-listed destinations.

    Essential (functional) traffic passes through to the wrapped router;
    requests to advertising/tracking hosts fail exactly like a PiHole'd
    network: DNS resolves to nothing useful, the connection dies, and the
    device's error handling decides whether the skill degrades.
    """

    def __init__(
        self,
        inner: Router,
        blocklist: FilterList,
        allowlist: Optional[Set[str]] = None,
    ) -> None:
        self._inner = inner
        self.blocklist = blocklist
        #: Hosts never blocked even if listed (user overrides).
        self.allowlist = set(allowlist or ())
        self.report = BlockReport()

    # Facade: the full public Router surface, so code written against
    # Router keeps working behind the defense wrapper.  (Guarded by
    # tests/unit/test_defenses.py::TestFacadeSurface — extend this when
    # Router grows a public attribute.)
    @property
    def clock(self):
        return self._inner.clock

    @property
    def registry(self):
        return self._inner.registry

    @property
    def dns(self):
        return self._inner.dns

    @property
    def faults(self):
        return self._inner.faults

    @property
    def obs(self):
        return self._inner.obs

    @obs.setter
    def obs(self, value) -> None:
        self._inner.obs = value

    @property
    def packets_forwarded(self) -> int:
        return self._inner.packets_forwarded

    @property
    def LAN_PREFIX(self) -> str:
        return self._inner.LAN_PREFIX

    def attach_device(self, device_id: str) -> str:
        return self._inner.attach_device(device_id)

    def device_ip(self, device_id: str) -> str:
        return self._inner.device_ip(device_id)

    def register_service(self, domain: str, handler) -> None:
        self._inner.register_service(domain, handler)

    def start_capture(self, label: str, device_filter: Optional[str] = None):
        return self._inner.start_capture(label, device_filter)

    def stop_capture(self, session):
        return self._inner.stop_capture(session)

    def dns_blackhole(self, device_id: str, host: str) -> None:
        self._inner.dns_blackhole(device_id, host)

    def send(self, device_id: str, request: HttpRequest) -> HttpResponse:
        host = request.host
        if host not in self.allowlist and self.blocklist.is_blocked(host):
            self.report.blocked[host] = self.report.blocked.get(host, 0) + 1
            self._inner.obs.inc("net.blocked_requests")
            # A PiHole'd vantage point still sees the DNS query: emit the
            # blackholed exchange (counted in packets_forwarded) and burn
            # the failed round trip before failing the request.
            self._inner.dns_blackhole(device_id, host)
            raise NetworkError(f"blocked by policy: {host}")
        self.report.allowed += 1
        return self._inner.send(device_id, request)


@dataclass(frozen=True)
class BlockingEvaluation:
    """Outcome of running a skill set with blocking enabled."""

    skills_run: int
    skills_functional: int
    tracking_requests_blocked: int
    functional_requests_allowed: int

    @property
    def breakage_rate(self) -> float:
        if not self.skills_run:
            return 0.0
        return 1.0 - self.skills_functional / self.skills_run


def evaluate_blocking(
    device,
    marketplace,
    skills,
    blocking_router: BlockingRouter,
) -> BlockingEvaluation:
    """Run each skill through ``device`` behind the blocking router.

    A skill counts as *functional* when at least one invocation produced
    a spoken response — the "without breaking" criterion of [72].
    """
    functional = 0
    for spec in skills:
        receipt = marketplace.install(device.account, spec.skill_id)
        if not receipt.installed:
            continue
        replies = device.run_skill_session(spec)
        if any(r is not None for r in replies):
            functional += 1
    return BlockingEvaluation(
        skills_run=len(skills),
        skills_functional=functional,
        tracking_requests_blocked=blocking_router.report.blocked_total,
        functional_requests_allowed=blocking_router.report.allowed,
    )
