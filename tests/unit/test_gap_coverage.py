"""Gap-filling tests: DNS server behaviour, HTTP payload serialization,
capture DNS-table recovery, retargeting check, and experiment receipts."""

import pytest

from repro.core.adcontent import vendor_retargeting_check
from repro.core.experiment import PolicyFetch
from repro.core.personas import interest_personas
from repro.data import categories as cat
from repro.netsim.dns import DnsServer, DnsTable, DnsRecord
from repro.netsim.endpoints import EndpointRegistry
from repro.netsim.http import HttpRequest, HttpResponse, estimate_size


class TestDnsServer:
    @pytest.fixture
    def server(self):
        registry = EndpointRegistry()
        registry.register("a.example.com", organization="A")
        return registry, DnsServer(registry)

    def test_resolves_registered_domain(self, server):
        registry, dns = server
        record = dns.resolve("a.example.com")
        assert record.ip == registry.require("a.example.com").ip

    def test_unknown_domain_raises(self, server):
        _, dns = server
        with pytest.raises(KeyError):
            dns.resolve("missing.example.com")

    def test_query_count_increments_even_for_cached(self, server):
        _, dns = server
        dns.resolve("a.example.com")
        dns.resolve("a.example.com")
        assert dns.query_count == 2

    def test_cached_record_identical(self, server):
        _, dns = server
        assert dns.resolve("a.example.com") is dns.resolve("a.example.com")


class TestDnsTable:
    def test_last_answer_wins(self):
        table = DnsTable()
        table.add(DnsRecord(domain="old.example.com", ip="10.0.0.1"))
        table.add(DnsRecord(domain="new.example.com", ip="10.0.0.1"))
        assert table.domain_for_ip("10.0.0.1") == "new.example.com"
        assert len(table) == 1


class TestHttpPayloads:
    def test_request_payload_fields(self):
        request = HttpRequest(
            "POST",
            "https://h.example.com/p?a=1",
            cookies={"uid": "x"},
            body={"k": "v"},
        )
        payload = request.to_payload()
        assert payload["kind"] == "http-request"
        assert payload["host"] == "h.example.com"
        assert payload["query"] == {"a": "1"}
        assert payload["cookies"] == {"uid": "x"}
        assert payload["body"] == {"k": "v"}

    def test_response_payload_fields(self):
        response = HttpResponse(
            status=302,
            set_cookies={"sid": "1"},
            redirect_url="https://b.example.com/",
        )
        payload = response.to_payload()
        assert payload["kind"] == "http-response"
        assert payload["status"] == 302
        assert payload["redirect_url"] == "https://b.example.com/"

    def test_estimate_size_floor(self):
        assert estimate_size({}) == 64


class TestPolicyFetch:
    def test_flags(self):
        fetch = PolicyFetch(skill_id="s", url=None, document=None)
        assert not fetch.has_link and not fetch.downloaded
        fetch = PolicyFetch(skill_id="s", url="https://x.example.com/", document=None)
        assert fetch.has_link and not fetch.downloaded


class TestRetargetingCheck:
    def test_no_retargeting_in_campaign(self, small_dataset):
        vendors_by_persona = {
            p.name: {
                s.vendor
                for s in small_dataset.world.catalog.top_skills(p.category, 6)
            }
            for p in interest_personas()
        }
        verdicts = vendor_retargeting_check(small_dataset, vendors_by_persona)
        assert not any(verdicts.values())

    def test_unknown_vendors_excluded(self, small_dataset):
        verdicts = vendor_retargeting_check(small_dataset, {})
        assert verdicts == {}


class TestCloudMisc:
    def test_redirected_utterances_counted(self, small_dataset):
        # Skill backends redirect ~2% of utterances to Alexa (§3.1.1).
        assert small_dataset.world.cloud.redirected_utterances >= 0

    def test_prebid_probe_registered_all_sites(self, small_dataset):
        for site in small_dataset.prebid_sites:
            assert site.domain in small_dataset.world.universe
