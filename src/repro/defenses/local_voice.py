"""Local voice processing (paper §8.1, after Porcupine/Rhasspy).

"We can limit the sharing of this additional data by offloading the
wake-word detection and transcription functions ... and just send to the
Alexa platform the transcribed commands using their textual API with no
loss of functionality."

:class:`LocalProcessingEcho` runs wake-word detection and ASR on-device
and uploads *text only*.  The voice recording — with its inferable
physical/emotional characteristics — never leaves the home, which is
directly observable in the device's plaintext log and in what skills can
collect.
"""

from __future__ import annotations

from typing import Optional

from repro.alexa.cloud import VOICE_ENDPOINT
from repro.alexa.device import AVSEcho
from repro.alexa.voice import VoiceFrontend
from repro.data import datatypes as dt

__all__ = ["LocalProcessingEcho", "voice_exposure"]


class LocalProcessingEcho(AVSEcho):
    """An Echo variant with on-device wake word + transcription.

    Inherits the AVS Echo's plaintext tap so experiments can verify what
    actually leaves the device.  Unlike the stock device it sends a
    ``recognize-text`` event carrying only the local transcript.
    """

    allows_non_amazon = True  # it is a normal consumer device otherwise
    allows_streaming = True

    #: On-device ASR is slightly worse than the cloud's (the price of the
    #: defense — still "no loss of functionality" for command routing).
    LOCAL_WORD_ERROR_RATE = 0.04

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        from repro.util.rng import Seed

        self._local_asr = VoiceFrontend(
            Seed(0).derive("local-asr", self.device_id),
            word_error_rate=self.LOCAL_WORD_ERROR_RATE,
        )

    def say(self, utterance: str) -> Optional[str]:
        command = self._local_asr.detect_wake_word(utterance)
        if command is None:
            return None
        transcript = self._local_asr.transcribe(command)
        response = self._send(
            VOICE_ENDPOINT,
            body={
                "event": "recognize",
                # The textual API: the transcript plays the role the raw
                # recording would, but carries no audio signal.
                "voice_recording": transcript.text,
                "input_modality": "text",
                "customer_id": self.account.customer_id,
                "device_id": self.device_id,
                "allow_streaming": self.allows_streaming,
            },
        )
        if not response.ok:
            return None
        self._current_skill = (
            response.body.get("handled_by")
            if response.body.get("handled_by") != "alexa"
            else None
        )
        speech = self._execute_directives(response.body.get("directives", []))
        self._current_skill = None
        return speech

    def _execute_directives(self, directives):
        # Strip the audio payload from any data-collection upload: the
        # device never recorded audio, so there is nothing to send.
        sanitized = []
        for directive in directives:
            if directive.get("kind") == "upload":
                data = {
                    k: v
                    for k, v in directive.get("data", {}).items()
                    if k != dt.VOICE_RECORDING
                }
                directive = {**directive, "data": data}
            sanitized.append(directive)
        return super()._execute_directives(sanitized)


def voice_exposure(plaintext_log) -> dict:
    """Count what voice-derived data left a device, from its plaintext tap.

    Returns ``{"audio_uploads": n, "text_uploads": n, "skill_voice_fields": n}``
    — the before/after comparison for the defense.
    """
    audio = text = skill_voice = 0
    for record in plaintext_log:
        body = record.payload.get("body", {})
        if body.get("event") == "recognize":
            if body.get("input_modality") == "text":
                text += 1
            else:
                audio += 1
        if body.get("event") == "skill-data" and dt.VOICE_RECORDING in body.get(
            "data", {}
        ):
            skill_voice += 1
    return {
        "audio_uploads": audio,
        "text_uploads": text,
        "skill_voice_fields": skill_voice,
    }
