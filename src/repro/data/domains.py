"""Canonical domain/organization catalog for the simulated ecosystem.

The domain universe mirrors Tables 1 and 14 of the paper: Amazon's own
service endpoints, the two skill-vendor domains, and the thirteen
third-party organizations observed in skill traffic.  Each entry carries
its ground-truth organization and category; the auditor re-derives both
through :mod:`repro.orgmap` (entity lists + WHOIS + filter lists).

Categories
----------
``functional``      ordinary service traffic
``advertising``     ad delivery / monetization
``tracking``        analytics / metrics collection
``cdn``             content distribution
``content``         first-party content hosting
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netsim.endpoints import EndpointRegistry
from repro.orgmap.entity_db import EntityDatabase, OrgEntity

__all__ = [
    "DomainSpec",
    "AMAZON_DOMAINS",
    "SKILL_VENDOR_DOMAINS",
    "THIRD_PARTY_DOMAINS",
    "AD_EXCHANGE_DOMAINS",
    "ALL_DOMAINS",
    "ORG_ENTITIES",
    "PIHOLE_FILTER_TEXT",
    "build_endpoint_registry",
    "build_entity_database",
    "AMAZON_ORG",
    "AMAZON_ADS_DOMAIN",
]

AMAZON_ORG = "Amazon Technologies, Inc."

#: Amazon's ad-exchange/sync endpoint used during web crawls (§5.5).
AMAZON_ADS_DOMAIN = "s.amazon-adsystem.com"


@dataclass(frozen=True)
class DomainSpec:
    """One endpoint in the simulated Internet."""

    domain: str
    organization: str
    category: str


# --------------------------------------------------------------------- #
# Amazon platform endpoints (Table 1, "Amazon" block)
# --------------------------------------------------------------------- #

AMAZON_DOMAINS: Tuple[DomainSpec, ...] = tuple(
    DomainSpec(domain, AMAZON_ORG, category)
    for domain, category in [
        # *(11).amazon.com — the voice pipeline and device management
        ("avs-alexa-16-na.amazon.com", "functional"),
        ("alexa.amazon.com", "functional"),
        ("api.amazon.com", "functional"),
        ("dcape-na.amazon.com", "functional"),
        ("dp-gw-na.amazon.com", "functional"),
        ("softwareupdates.amazon.com", "functional"),
        ("todo-ta-g7g.amazon.com", "functional"),
        ("kindle-time.amazon.com", "functional"),
        ("arcus-uswest.amazon.com", "functional"),
        ("msh.amazon.com", "functional"),
        ("unagi-na.amazon.com", "tracking"),
        # Device metrics — the dominant tracking endpoint (§4.2)
        ("device-metrics-us-2.amazon.com", "tracking"),
        ("prod.amcs-tachyon.com", "functional"),
        ("api.amazonalexa.com", "functional"),
        # *(7).cloudfront.net — skill hosting CDN
        ("d1s31zyz7dcc2d.cloudfront.net", "cdn"),
        ("d3p8zr0ffa9t17.cloudfront.net", "cdn"),
        ("dtm5qzpa8mrbl.cloudfront.net", "cdn"),
        ("d2c1wgm0pbpm6k.cloudfront.net", "cdn"),
        ("d38b8me95wjkbc.cloudfront.net", "cdn"),
        ("d1f0esyv34gzvq.cloudfront.net", "cdn"),
        ("d2gfdmu30u15x7.cloudfront.net", "cdn"),
        # *(4).amazonaws.com — skill backends on AWS
        ("s3.us-east-1.amazonaws.com", "functional"),
        ("lambda.us-east-1.amazonaws.com", "functional"),
        ("kinesis.us-east-1.amazonaws.com", "functional"),
        ("skills-store.amazonaws.com", "functional"),
        ("acsechocaptiveportal.com", "functional"),
        ("fireoscaptiveportal.com", "functional"),
        ("ingestion.us-east-1.prod.arteries.alexa.a2z.com", "tracking"),
        ("ffs-provisioner-config.amazon-dss.com", "functional"),
        # Ad exchange endpoint seen from browsers, not Echos
        (AMAZON_ADS_DOMAIN, "advertising"),
        ("aax.amazon-adsystem.com", "advertising"),
    ]
)

# --------------------------------------------------------------------- #
# Skill vendor (first-party) endpoints — only Garmin and YouVersion
# Bible send traffic to their own domains (§4.1)
# --------------------------------------------------------------------- #

SKILL_VENDOR_DOMAINS: Tuple[DomainSpec, ...] = (
    DomainSpec("static.garmincdn.com", "Garmin International", "content"),
    DomainSpec("api.youversionapi.com", "Life Covenant Church, Inc.", "content"),
    DomainSpec("events.youversionapi.com", "Life Covenant Church, Inc.", "content"),
)

# --------------------------------------------------------------------- #
# Third-party endpoints (Table 1 third-party block / Table 14 orgs)
# --------------------------------------------------------------------- #

THIRD_PARTY_DOMAINS: Tuple[DomainSpec, ...] = (
    # Dilli Labs — content backend for the pet-sounds skill family
    DomainSpec("dillilabs.com", "Dilli Labs LLC", "content"),
    DomainSpec("api.dillilabs.com", "Dilli Labs LLC", "content"),
    DomainSpec("media.dillilabs.com", "Dilli Labs LLC", "content"),
    DomainSpec("sounds.dillilabs.com", "Dilli Labs LLC", "content"),
    DomainSpec("static.dillilabs.com", "Dilli Labs LLC", "content"),
    DomainSpec("img.dillilabs.com", "Dilli Labs LLC", "content"),
    # Megaphone — audio advertising, owned by Spotify AB
    DomainSpec("cdn.megaphone.fm", "Spotify AB", "advertising"),
    DomainSpec("adbarker.megaphone.fm", "Spotify AB", "advertising"),
    DomainSpec("spclient.wg.spotify.com", "Spotify AB", "advertising"),
    # Voice Apps — multi-skill content platform
    DomainSpec("cdn2.voiceapps.com", "Voice Apps LLC", "content"),
    DomainSpec("cdn1.voiceapps.com", "Voice Apps LLC", "content"),
    DomainSpec("static.voiceapps.com", "Voice Apps LLC", "content"),
    # Podtrac — podcast audience measurement
    DomainSpec("play.podtrac.com", "Podtrac Inc", "tracking"),
    DomainSpec("dts.podtrac.com", "Podtrac Inc", "tracking"),
    # NPR — podcast content
    DomainSpec("play.pod.npr.org", "National Public Radio, Inc.", "content"),
    DomainSpec("ondemand.pod.npr.org", "National Public Radio, Inc.", "content"),
    # Chartable — podcast attribution/analytics
    DomainSpec("chtbl.com", "Chartable Holding Inc", "tracking"),
    # DataCamp Limited — CDN77 content distribution
    DomainSpec("1432239411.rsc.cdn77.org", "DataCamp Limited", "content"),
    DomainSpec("1432239412.rsc.cdn77.org", "DataCamp Limited", "content"),
    # Liberated Syndication — podcast hosting + monetization
    DomainSpec("traffic.libsyn.com", "Liberated Syndication", "advertising"),
    DomainSpec("ssl.libsyn.com", "Liberated Syndication", "advertising"),
    # Triton Digital — streaming audio + ad insertion
    DomainSpec("live.streamtheworld.com", "Triton Digital, Inc.", "advertising"),
    DomainSpec("playerservices.streamtheworld.com", "Triton Digital, Inc.", "advertising"),
    DomainSpec("ondemand.streamtheworld.com", "Triton Digital, Inc.", "advertising"),
    DomainSpec("turnernetworksales.mc.tritondigital.com", "Triton Digital, Inc.", "advertising"),
    DomainSpec("traffic.omny.fm", "Triton Digital, Inc.", "advertising"),
    # Philips Hue discovery — smart-light skills
    DomainSpec("discovery.meethue.com", "Philips International B.V.", "content"),
)

# --------------------------------------------------------------------- #
# Web ad-exchange endpoints contacted by browsers during crawls (§5.5).
# These never appear in Echo traffic; they exist for cookie syncing and
# header bidding on publisher pages.
# --------------------------------------------------------------------- #

_EXCHANGE_ORGS: Tuple[Tuple[str, str], ...] = (
    ("sync.adx-one.com", "AdX One"),
    ("px.bidswitch-x.net", "BidSwitch-X"),
    ("cm.openbidder.io", "OpenBidder"),
    ("ssp.rubiconx.com", "RubiconX"),
    ("ads.pubmatic-x.com", "PubMatic-X"),
    ("sync.criteo-x.com", "Criteo-X"),
    ("ib.adnxs-x.com", "AppNexus-X"),
    ("eus.rqtrk.eu", "RQ Track"),
    ("match.taboola-x.com", "Taboola-X"),
    ("pixel.mediamath-x.com", "MediaMath-X"),
)

AD_EXCHANGE_DOMAINS: Tuple[DomainSpec, ...] = tuple(
    DomainSpec(domain, org, "advertising") for domain, org in _EXCHANGE_ORGS
)

ALL_DOMAINS: Tuple[DomainSpec, ...] = (
    AMAZON_DOMAINS + SKILL_VENDOR_DOMAINS + THIRD_PARTY_DOMAINS + AD_EXCHANGE_DOMAINS
)

# --------------------------------------------------------------------- #
# Auditor-side knowledge: entity list (Table 14 ontology categories)
# --------------------------------------------------------------------- #

ORG_ENTITIES: Tuple[OrgEntity, ...] = (
    OrgEntity(
        AMAZON_ORG,
        categories=(
            "analytic provider",
            "advertising network",
            "content provider",
            "platform provider",
            "voice assistant service",
        ),
        domains=(
            "amazon.com",
            "amcs-tachyon.com",
            "amazonalexa.com",
            "cloudfront.net",
            "amazonaws.com",
            "acsechocaptiveportal.com",
            "fireoscaptiveportal.com",
            "alexa.a2z.com",
            "amazon-dss.com",
            "amazon-adsystem.com",
        ),
    ),
    OrgEntity(
        "Chartable Holding Inc",
        categories=("analytic provider", "advertising network"),
        domains=("chtbl.com",),
    ),
    OrgEntity(
        "DataCamp Limited",
        categories=("content provider",),
        domains=("cdn77.org",),
    ),
    OrgEntity(
        "Dilli Labs LLC",
        categories=("content provider",),
        domains=("dillilabs.com",),
    ),
    OrgEntity(
        "Garmin International",
        categories=("content provider",),
        domains=("garmincdn.com",),
    ),
    OrgEntity(
        "Liberated Syndication",
        categories=("analytic provider", "advertising network"),
        domains=("libsyn.com",),
    ),
    OrgEntity(
        "National Public Radio, Inc.",
        categories=("content provider",),
        domains=("npr.org",),
    ),
    OrgEntity(
        "Philips International B.V.",
        categories=("content provider",),
        domains=("meethue.com",),
    ),
    OrgEntity(
        "Podtrac Inc",
        categories=("analytic provider", "advertising network"),
        domains=("podtrac.com",),
    ),
    OrgEntity(
        "Spotify AB",
        categories=("analytic provider", "advertising network"),
        domains=("megaphone.fm", "spotify.com"),
    ),
    OrgEntity(
        "Triton Digital, Inc.",
        categories=("analytic provider", "advertising network"),
        domains=("streamtheworld.com", "tritondigital.com", "omny.fm"),
    ),
    OrgEntity(
        "Voice Apps LLC",
        categories=("content provider",),
        domains=("voiceapps.com",),
    ),
    OrgEntity(
        "Life Covenant Church, Inc.",
        categories=("content provider",),
        domains=("youversionapi.com",),
    ),
) + tuple(
    OrgEntity(org, categories=("advertising network",), domains=(domain.split(".", 1)[1],))
    for domain, org in _EXCHANGE_ORGS
)

# --------------------------------------------------------------------- #
# Pi-hole-style filter list used for ad/tracking classification (§4.2).
# Deliberately written in raw Adblock syntax and parsed by the auditor's
# own filter-list engine.
# --------------------------------------------------------------------- #

PIHOLE_FILTER_TEXT = """\
! Title: sim-firebog consolidated blocklist
! Advertising & tracking hosts observed in smart-speaker ecosystems
||device-metrics-us-2.amazon.com^
||unagi-na.amazon.com^
||arteries.alexa.a2z.com^
||amazon-adsystem.com^
||megaphone.fm^
||spclient.wg.spotify.com^
||podtrac.com^
||chtbl.com^
||libsyn.com^
||streamtheworld.com^
||tritondigital.com^
||omny.fm^
||adx-one.com^
||bidswitch-x.net^
||openbidder.io^
||rubiconx.com^
||pubmatic-x.com^
||criteo-x.com^
||adnxs-x.com^
||rqtrk.eu^
||taboola-x.com^
||mediamath-x.com^
! NPR podcast delivery is content, not tracking
@@||pod.npr.org^
"""


def build_endpoint_registry() -> EndpointRegistry:
    """Instantiate the full simulated-Internet endpoint registry."""
    registry = EndpointRegistry()
    for spec in ALL_DOMAINS:
        registry.register(spec.domain, organization=spec.organization, category=spec.category)
    return registry


def build_entity_database() -> EntityDatabase:
    """Instantiate the auditor's entity database (Tracker-Radar analogue)."""
    return EntityDatabase(ORG_ENTITIES)


def domains_by_org() -> Dict[str, List[str]]:
    """Ground-truth org → domains view, used by world-building code."""
    result: Dict[str, List[str]] = {}
    for spec in ALL_DOMAINS:
        result.setdefault(spec.organization, []).append(spec.domain)
    return result
