"""Privacy-policy corpus generation.

Generates the policy document for each skill from its
:class:`~repro.data.skill_catalog.PolicySpec`, plus Amazon's platform
privacy policy.  Documents are plain text; the PoliCheck analyzer works
on the text alone, and a small generation-side *phrasing noise* replaces
ontology terms with off-ontology synonyms at a calibrated rate — this is
what makes the validation study (§7.2.3) land near the paper's ~87%
micro-F1 instead of a meaningless 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data import datatypes as dt
from repro.data.skill_catalog import SkillCatalog, SkillSpec
from repro.util.rng import Seed

__all__ = ["PolicyDocument", "PolicyCorpus", "build_corpus", "AMAZON_POLICY_TEXT"]

#: Probability a disclosure sentence uses phrasing outside the analyzer's
#: ontology (human policy writers are creative).  Together with the
#: human-coder disagreement modelled in the validation study, this is
#: calibrated so §7.2.3's micro-F1 lands near the paper's 87.41%.
PHRASING_NOISE_RATE = 0.15

_CLEAR_DATA_TERMS: Dict[str, Tuple[str, ...]] = {
    dt.VOICE_RECORDING: ("voice recording", "audio recording", "voice command"),
    dt.CUSTOMER_ID: ("unique identifier", "anonymized ID", "UUID"),
    dt.SKILL_ID: ("skill id", "application identifier", "cookie"),
    dt.LANGUAGE: ("language setting", "regional and language settings"),
    dt.TIMEZONE: ("time zone setting", "time zone"),
    dt.OTHER_PREFERENCES: ("settings preferences", "app settings"),
    dt.AUDIO_PLAYER_EVENTS: ("audio player events", "playback events", "device metrics"),
}

_VAGUE_DATA_TERMS: Dict[str, Tuple[str, ...]] = {
    dt.VOICE_RECORDING: ("sensory information", "recordings of your interactions"),
    dt.CUSTOMER_ID: ("identifiers",),
    dt.SKILL_ID: ("application data",),
    dt.LANGUAGE: ("device information",),
    dt.TIMEZONE: ("device information",),
    dt.OTHER_PREFERENCES: ("configuration settings",),
    dt.AUDIO_PLAYER_EVENTS: ("usage data", "interaction data"),
}

#: Off-ontology synonyms: real enough that a human coder maps them to the
#: data type, opaque to the term-matching analyzer.
_NOISE_TERMS: Dict[str, Tuple[str, ...]] = {
    dt.VOICE_RECORDING: ("auditory data", "vocal samples"),
    dt.CUSTOMER_ID: ("account token", "pseudonymous handle"),
    dt.SKILL_ID: ("app token",),
    dt.LANGUAGE: ("locale details",),
    dt.TIMEZONE: ("clock settings",),
    dt.OTHER_PREFERENCES: ("configuration values",),
    dt.AUDIO_PLAYER_EVENTS: ("telemetry", "media signals"),
}

_VAGUE_ENTITY_PHRASES: Tuple[str, ...] = (
    "external service providers who help us better serve you",
    "third parties that support our services",
    "service providers acting on our behalf",
)

AMAZON_POLICY_TEXT = """\
Amazon.com Privacy Notice

We collect your voice recording when you speak to Alexa and retain it to
improve our services. We collect a unique identifier and use a cookie to
recognize your device across Amazon services. We receive your time zone
setting, regional and language settings, and settings preferences to
personalize your experience. We collect device metrics and Amazon
Services metrics about how you use Alexa. We share information with
service providers acting on our behalf.
"""


@dataclass(frozen=True)
class PolicyDocument:
    """One downloadable privacy policy plus its generation ground truth."""

    skill_id: str
    url: str
    text: str
    mentions_amazon: bool
    links_amazon_policy: bool
    #: Intended disclosure class per data type (pre-noise) — used only by
    #: the validation study, never by the analyzer.
    truth_datatypes: Dict[str, str] = field(default_factory=dict)
    #: Intended disclosure class per endpoint organization.
    truth_endpoints: Dict[str, str] = field(default_factory=dict)


class PolicyCorpus:
    """All downloadable policies, keyed by skill id."""

    def __init__(self, documents: Dict[str, PolicyDocument], amazon_policy: str) -> None:
        self._documents = documents
        self.amazon_policy = amazon_policy

    def get(self, skill_id: str) -> Optional[PolicyDocument]:
        return self._documents.get(skill_id)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self):
        return iter(self._documents.values())


def build_corpus(catalog: SkillCatalog, seed: Seed) -> PolicyCorpus:
    """Generate policy text for every skill with a downloadable policy."""
    documents: Dict[str, PolicyDocument] = {}
    for spec in catalog:
        if spec.policy is None or not spec.policy.downloadable:
            continue
        documents[spec.skill_id] = _generate_document(spec, seed)
    return PolicyCorpus(documents, AMAZON_POLICY_TEXT)


def _generate_document(spec: SkillSpec, seed: Seed) -> PolicyDocument:
    policy = spec.policy
    assert policy is not None
    rng = seed.rng("policy-text", spec.skill_id)
    lines: List[str] = [f"{spec.vendor} Privacy Policy", ""]

    if policy.mentions_amazon:
        lines.append(
            f"The {spec.name} skill is available on Amazon Alexa enabled devices."
        )
    else:
        lines.append(
            f"This policy applies to all products and services offered by {spec.vendor}."
        )
    if policy.links_amazon_policy:
        lines.append(
            "Amazon's handling of your data is described in the Amazon Privacy "
            "Notice at https://www.amazon.com/privacy."
        )

    truth_datatypes: Dict[str, str] = {}
    for data_type, klass in sorted(policy.datatype_disclosures.items()):
        truth_datatypes[data_type] = klass
        if klass == "omitted":
            continue
        sentence = _datatype_sentence(data_type, klass, rng)
        lines.append(sentence)

    truth_endpoints: Dict[str, str] = {}
    platform_class = policy.platform_disclosure
    truth_endpoints["Amazon Technologies, Inc."] = platform_class
    if platform_class == "clear":
        lines.append(
            "Information you provide is then sent to the voice partner you "
            "have authorized (for example, Amazon)."
        )
    elif platform_class == "vague":
        lines.append(
            "Our products may send pseudonymous information to an analytics "
            "tool, including timestamps, transmission statistics, feature "
            "usage, performance metrics, and errors."
        )

    for org, klass in sorted(policy.endpoint_disclosures.items()):
        truth_endpoints[org] = klass
        if klass == "omitted":
            continue
        if klass == "clear":
            alias = org.split(",")[0].split(" Inc")[0].split(" LLC")[0].strip()
            lines.append(f"We share information we collect with {alias}.")
        else:
            phrase = rng.choice(_VAGUE_ENTITY_PHRASES)
            lines.append(f"We may also share your personal information with {phrase}.")

    # Boilerplate + negation noise every analyzer must not trip over.
    lines.append("We value your privacy and comply with applicable law.")
    lines.append("We do not sell your personal information to advertising networks.")

    return PolicyDocument(
        skill_id=spec.skill_id,
        url=f"https://policies.example-skills.com/{spec.skill_id}.html",
        text="\n".join(lines),
        mentions_amazon=policy.mentions_amazon,
        links_amazon_policy=policy.links_amazon_policy,
        truth_datatypes=truth_datatypes,
        truth_endpoints=truth_endpoints,
    )


def _datatype_sentence(data_type: str, klass: str, rng) -> str:
    """A collection statement for one data type at one specificity."""
    if rng.random() < PHRASING_NOISE_RATE:
        term = rng.choice(_NOISE_TERMS[data_type])
    elif klass == "clear":
        term = rng.choice(_CLEAR_DATA_TERMS[data_type])
    else:
        term = rng.choice(_VAGUE_DATA_TERMS[data_type])
    verb = rng.choice(("collect", "receive", "process"))
    return f"When you use the skill we {verb} your {term}."
