"""Simulated wall clock.

Library code never reads the host clock.  All timestamps come from a
:class:`SimClock`, which starts — matching the paper's measurement window —
in mid-December 2021 (the "holiday season" that Table 6 controls for) and
advances only when the simulation says so.
"""

from __future__ import annotations

import datetime as _dt

__all__ = ["SimClock", "PAPER_EPOCH", "HOLIDAY_SEASON"]

#: Start of the paper's measurement campaign (before Christmas 2021, §5.1).
PAPER_EPOCH = _dt.datetime(2021, 12, 10, 9, 0, 0, tzinfo=_dt.timezone.utc)

#: The holiday-season window that inflates pre-interaction bids (Table 6).
HOLIDAY_SEASON = (
    _dt.datetime(2021, 12, 1, tzinfo=_dt.timezone.utc),
    _dt.datetime(2022, 1, 2, tzinfo=_dt.timezone.utc),
)


class SimClock:
    """Monotonic simulated clock with datetime rendering.

    The clock is a float of seconds since ``epoch``.  ``advance`` moves it
    forward; moving backwards raises, which catches accidental re-use of a
    stale clock across experiment phases.
    """

    def __init__(self, epoch: _dt.datetime = PAPER_EPOCH) -> None:
        if epoch.tzinfo is None:
            raise ValueError("epoch must be timezone-aware")
        self.epoch = epoch
        self._elapsed = 0.0

    @property
    def now(self) -> float:
        """Seconds elapsed since the epoch."""
        return self._elapsed

    def advance(self, seconds: float) -> float:
        """Advance the clock and return the new ``now``."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time ({seconds})")
        self._elapsed += seconds
        return self._elapsed

    def datetime(self) -> _dt.datetime:
        """Current simulated time as an aware datetime."""
        return self.epoch + _dt.timedelta(seconds=self._elapsed)

    def is_holiday_season(self) -> bool:
        """Whether the current sim time falls in the holiday window."""
        start, end = HOLIDAY_SEASON
        return start <= self.datetime() < end

    def __repr__(self) -> str:
        return f"SimClock({self.datetime().isoformat()})"
