"""Unit tests for persona sharding and shard-result merging."""

import pytest

from repro.core.campaign import run_campaign
from repro.core.parallel import (
    ShardResult,
    merge_shard_results,
    shard_personas,
)
from repro.core.personas import all_personas
from repro.util.rng import Seed


class TestShardPersonas:
    def test_partition_covers_roster_in_order(self):
        roster = all_personas()
        shards = shard_personas(roster, 4)
        flattened = [p for shard in shards for p in shard]
        assert flattened == roster

    def test_contiguous_and_balanced(self):
        roster = all_personas()
        shards = shard_personas(roster, 4)
        sizes = [len(s) for s in shards]
        assert sum(sizes) == len(roster)
        assert max(sizes) - min(sizes) <= 1
        assert sorted(sizes, reverse=True) == sizes  # larger shards first

    def test_more_shards_than_personas_collapses(self):
        roster = all_personas()
        shards = shard_personas(roster, len(roster) + 5)
        assert len(shards) == len(roster)
        assert all(len(s) == 1 for s in shards)

    def test_single_shard_is_whole_roster(self):
        roster = all_personas()
        assert shard_personas(roster, 1) == [roster]

    def test_deterministic(self):
        assert shard_personas(all_personas(), 3) == shard_personas(
            all_personas(), 3
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            shard_personas(all_personas(), 0)
        with pytest.raises(ValueError):
            shard_personas([], 2)


def _result(index, names, prebid=("site-a",), crawl=("site-a",)):
    return ShardResult(
        shard_index=index,
        persona_names=list(names),
        personas={name: object() for name in names},
        prebid_sites=list(prebid),
        crawl_sites=list(crawl),
        policy_fetches=[f"fetch-{index}"],
        timings={"total": 1.0},
    )


class TestMergeShardResults:
    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            merge_shard_results(Seed(1), [])

    def test_duplicate_shard_index_rejected(self):
        with pytest.raises(ValueError, match="duplicate shard indices"):
            merge_shard_results(Seed(1), [_result(0, ["a"]), _result(0, ["b"])])

    def test_duplicate_persona_rejected(self):
        with pytest.raises(ValueError, match="two shards"):
            merge_shard_results(Seed(1), [_result(0, ["a"]), _result(1, ["a"])])

    def test_site_disagreement_rejected(self):
        with pytest.raises(RuntimeError, match="disagree"):
            merge_shard_results(
                Seed(1),
                [_result(0, ["a"]), _result(1, ["b"], prebid=("site-b",))],
            )

    def test_merge_orders_personas_canonically(self):
        roster = all_personas()
        # Submit shard results out of completion order.
        shards = shard_personas(roster, 3)
        results = [
            _result(i, [p.name for p in shard]) for i, shard in enumerate(shards)
        ]
        merged = merge_shard_results(Seed(1), list(reversed(results)))
        assert list(merged.personas) == [p.name for p in roster]
        assert merged.policy_fetches == ["fetch-0", "fetch-1", "fetch-2"]
        assert merged.world is not None

    def test_shard_timings_are_namespaced(self):
        merged = merge_shard_results(
            Seed(1), [_result(0, ["a"])], expected_personas=["a"]
        )
        assert merged.timings["shard0.total"] == 1.0


class TestMergeCompleteness:
    def test_missing_personas_rejected_by_default(self):
        with pytest.raises(ValueError, match="missing personas"):
            merge_shard_results(
                Seed(1), [_result(0, ["a"])], expected_personas=["a", "b"]
            )

    def test_default_expectation_is_the_full_roster(self):
        """A bare merge of a partial persona set must never pass silently."""
        with pytest.raises(ValueError, match="missing personas"):
            merge_shard_results(Seed(1), [_result(0, ["a"])])

    def test_allow_partial_records_missing_personas(self):
        merged = merge_shard_results(
            Seed(1),
            [_result(0, ["a"])],
            expected_personas=["a", "b", "c"],
            allow_partial=True,
        )
        assert merged.missing_personas == ("b", "c")

    def test_complete_merge_has_empty_missing_personas(self):
        merged = merge_shard_results(
            Seed(1), [_result(0, ["a"])], expected_personas=["a"]
        )
        assert merged.missing_personas == ()


class TestRunParallelValidation:
    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_campaign(seed=1, parallel=True, backend="greenlet")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(seed=1, parallel=True, workers=0)
