"""Table 3: advertising/tracking vs functional third-party domains
contacted per persona."""

from repro.core.report import render_table
from repro.core.traffic import analyze_traffic
from repro.data import categories as cat

PAPER = {
    cat.FASHION: (9, 4),
    cat.CONNECTED_CAR: (7, 0),
    cat.PETS: (3, 11),
    cat.RELIGION: (3, 8),
    cat.DATING: (5, 1),
    cat.HEALTH: (0, 1),
    cat.SMART_HOME: (0, 0),
    cat.WINE: (0, 0),
    cat.NAVIGATION: (0, 0),
}


def bench_table3_personas(benchmark, dataset, world, vendor_by_skill):
    analysis = benchmark.pedantic(
        analyze_traffic,
        args=(dataset, world.org_resolver(), world.filter_list, vendor_by_skill),
        rounds=2,
        iterations=1,
    )
    rows = []
    for persona in cat.ALL_CATEGORIES:
        at, fn = analysis.persona_third_party.get(persona, (set(), set()))
        paper_at, paper_fn = PAPER[persona]
        rows.append(
            (
                cat.CATEGORY_DISPLAY[persona],
                len(at),
                paper_at,
                len(fn),
                paper_fn,
            )
        )
    print()
    print(
        render_table(
            ["persona", "A&T", "A&T paper", "functional", "func. paper"],
            rows,
            title="Table 3",
        )
    )
    for persona, (paper_at, paper_fn) in PAPER.items():
        at, fn = analysis.persona_third_party.get(persona, (set(), set()))
        assert len(at) == paper_at, persona
        assert len(fn) == paper_fn, persona
