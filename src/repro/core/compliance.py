"""Privacy-policy compliance analysis (paper §7).

Drives the PoliCheck pipeline over the collected artifacts:

* §7.1 — policy availability statistics from the policy crawl;
* §7.2.1 — endpoint analysis on encrypted Echo captures;
* §7.2.2 — data-type analysis on the AVS Echo plaintext (optionally
  consulting Amazon's platform policy as well);
* §7.2.3 — the validation study against a simulated human coder.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.experiment import AuditDataset
from repro.orgmap.resolver import OrgResolver
from repro.policies.corpus import PolicyCorpus
from repro.policies.policheck.analyzer import Disclosure, PolicheckAnalyzer
from repro.policies.policheck.extraction import (
    DataFlow,
    extract_datatype_flows,
    extract_endpoint_flows,
)
from repro.policies.policheck.validation import (
    ValidationReport,
    human_code_flows,
    score_multiclass,
)
from repro.util.rng import Seed

__all__ = [
    "PolicyAvailability",
    "policy_availability",
    "fold_policy_availability",
    "ComplianceAnalysis",
    "analyze_compliance",
    "run_validation_study",
]

AMAZON = "Amazon Technologies, Inc."


@dataclass(frozen=True)
class PolicyAvailability:
    """§7.1 statistics."""

    total_skills: int
    with_link: int
    downloadable: int
    mention_amazon: int
    generic: int  # downloadable policies that never mention Alexa/Amazon
    link_amazon_policy: int


def policy_availability(dataset: AuditDataset) -> PolicyAvailability:
    """Compute the §7.1 availability numbers from the policy crawl."""
    return fold_policy_availability(
        {
            "has_link": fetch.has_link,
            "downloaded": fetch.downloaded,
            "mentions_amazon": (
                fetch.downloaded and fetch.document.mentions_amazon
            ),
            "links_amazon_policy": (
                fetch.downloaded and fetch.document.links_amazon_policy
            ),
        }
        for fetch in dataset.policy_fetches
    )


def fold_policy_availability(records) -> PolicyAvailability:
    """Single-pass fold of policy-crawl records into §7.1 statistics.

    ``records`` is any iterable of mappings with boolean ``has_link``,
    ``downloaded``, ``mentions_amazon``, and ``links_amazon_policy``
    fields — derived from :class:`~repro.core.experiment.PolicyFetch`
    objects in memory or read back from a segment stream.  One counter
    pass, no intermediate lists: memory is O(1) in the crawl size.
    """
    total = with_link = downloadable = mention = links_amazon = 0
    for record in records:
        total += 1
        if record["has_link"]:
            with_link += 1
        if record["downloaded"]:
            downloadable += 1
            if record["mentions_amazon"]:
                mention += 1
            if record["links_amazon_policy"]:
                links_amazon += 1
    return PolicyAvailability(
        total_skills=total,
        with_link=with_link,
        downloadable=downloadable,
        mention_amazon=mention,
        generic=downloadable - mention,
        link_amazon_policy=links_amazon,
    )


@dataclass
class ComplianceAnalysis:
    """§7.2 results."""

    #: Per data type: disclosure class -> count of skills (Table 13).
    datatype_table: Dict[str, Dict[str, int]]
    #: Per endpoint organization: disclosure class -> skills (Table 14).
    endpoint_table: Dict[str, Dict[str, List[str]]]
    datatype_disclosures: List[Disclosure] = field(default_factory=list)
    endpoint_disclosures: List[Disclosure] = field(default_factory=list)

    def platform_disclosure_counts(self) -> Dict[str, int]:
        """How Amazon's own data collection is disclosed across skills."""
        return {
            klass: len(skills)
            for klass, skills in self.endpoint_table.get(AMAZON, {}).items()
        }


def analyze_compliance(
    dataset: AuditDataset,
    corpus: PolicyCorpus,
    resolver: OrgResolver,
    org_categories: Dict[str, Tuple[str, ...]],
    include_platform_policy: bool = False,
) -> ComplianceAnalysis:
    """Run both PoliCheck analyses over all personas' artifacts."""
    analyzer = PolicheckAnalyzer(
        corpus,
        include_platform_policy=include_platform_policy,
        org_categories=org_categories,
    )

    datatype_flows: List[DataFlow] = []
    for artifacts in dataset.interest_personas:
        datatype_flows.extend(extract_datatype_flows(artifacts.avs_plaintext))
    datatype_flows = _dedupe(datatype_flows)
    datatype_disclosures = analyzer.analyze_datatype_flows(datatype_flows)

    endpoint_flows: List[DataFlow] = []
    for artifacts in dataset.interest_personas:
        endpoint_flows.extend(
            extract_endpoint_flows(artifacts.skill_captures, resolver)
        )
    endpoint_flows = _dedupe(endpoint_flows)
    endpoint_disclosures = analyzer.analyze_endpoint_flows(endpoint_flows)

    datatype_table: Dict[str, Dict[str, int]] = defaultdict(Counter)
    for disclosure in datatype_disclosures:
        datatype_table[disclosure.flow.data_type][disclosure.classification] += 1

    endpoint_table: Dict[str, Dict[str, List[str]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for disclosure in endpoint_disclosures:
        endpoint_table[disclosure.flow.entity][disclosure.classification].append(
            disclosure.flow.skill_id
        )

    return ComplianceAnalysis(
        datatype_table={k: dict(v) for k, v in datatype_table.items()},
        endpoint_table={k: {c: sorted(s) for c, s in v.items()} for k, v in endpoint_table.items()},
        datatype_disclosures=datatype_disclosures,
        endpoint_disclosures=endpoint_disclosures,
    )


def run_validation_study(
    analysis: ComplianceAnalysis,
    corpus: PolicyCorpus,
    seed: Seed,
    sample_size: int = 100,
) -> ValidationReport:
    """§7.2.3: score PoliCheck against a human coder on 100 skills."""
    with_policy = [
        d
        for d in analysis.datatype_disclosures
        if corpus.get(d.flow.skill_id) is not None
    ]
    skill_ids = sorted({d.flow.skill_id for d in with_policy})
    rng = seed.rng("validation", "sample")
    sampled = set(rng.sample(skill_ids, min(sample_size, len(skill_ids))))
    disclosures = [d for d in with_policy if d.flow.skill_id in sampled]
    truth = human_code_flows(disclosures, corpus, seed)
    predicted = [d.classification for d in disclosures]
    return score_multiclass(truth, predicted)


def _dedupe(flows: List[DataFlow]) -> List[DataFlow]:
    seen: Set[Tuple[str, Optional[str], str]] = set()
    out: List[DataFlow] = []
    for flow in flows:
        key = (flow.skill_id, flow.data_type, flow.entity)
        if key in seen:
            continue
        seen.add(key)
        out.append(flow)
    return out
