"""Figure 7: CPM distributions across vanilla, Echo interest, and web
interest personas on common ad slots."""

import numpy as np

from repro.core.bids import figure7_series
from repro.core.report import render_distribution
from repro.data import categories as cat


def bench_figure7_web_dists(benchmark, dataset):
    series = benchmark(figure7_series, dataset)
    print()
    print(render_distribution(series, title="Figure 7"))

    medians = {p: float(np.median(v)) for p, v in series.items() if v}
    vanilla = medians[cat.VANILLA]
    echo_medians = [medians[p] for p in cat.ALL_CATEGORIES]
    web_medians = [medians[p] for p in cat.WEB_CATEGORIES]

    # Web personas sit inside the Echo-persona range (no discernible
    # difference), and both are clearly above vanilla.
    assert min(web_medians) >= min(echo_medians) * 0.7
    assert max(web_medians) <= max(echo_medians) * 1.3
    assert all(m > vanilla for m in web_medians)
    assert all(m > vanilla for m in echo_medians)
