"""Tests for the website toplist and the cookie-sync graph views."""

import networkx as nx
import pytest

from repro.core.syncing import SyncAnalysis, detect_cookie_syncing
from repro.data.websites import N_PREBID_TARGET, WEB_PRIMING_SITES, build_toplist
from repro.util.rng import Seed


class TestToplist:
    def test_size(self):
        assert len(build_toplist(Seed(1), size=200)) == 200

    def test_unique_domains(self):
        sites = build_toplist(Seed(1))
        domains = [s.domain for s in sites]
        assert len(domains) == len(set(domains))

    def test_ranks_sequential(self):
        sites = build_toplist(Seed(1), size=50)
        assert [s.rank for s in sites] == list(range(1, 51))

    def test_prebid_share_reasonable(self):
        sites = build_toplist(Seed(1))
        share = sum(1 for s in sites if s.supports_prebid) / len(sites)
        assert 0.2 < share < 0.5

    def test_prebid_sites_have_slots_and_version(self):
        for site in build_toplist(Seed(2), size=300):
            if site.supports_prebid:
                assert site.ad_slots >= 2
                assert site.prebid_version
            else:
                assert site.ad_slots == 0
                assert not site.prebid_version

    def test_enough_prebid_sites_for_discovery(self):
        sites = build_toplist(Seed(3))
        assert sum(1 for s in sites if s.supports_prebid) >= N_PREBID_TARGET

    def test_deterministic(self):
        a = build_toplist(Seed(4), size=100)
        b = build_toplist(Seed(4), size=100)
        assert a == b

    def test_priming_sites_fifty_per_category(self):
        sites = WEB_PRIMING_SITES("web-health")
        assert len(sites) == 50
        assert len(set(sites)) == 50
        assert all("health" in s for s in sites)


class TestSyncGraph:
    @pytest.fixture(scope="class")
    def analysis(self, small_dataset):
        return detect_cookie_syncing(small_dataset)

    def test_graph_roles(self, analysis):
        graph = analysis.sync_graph()
        roles = nx.get_node_attributes(graph, "role")
        assert roles["amazon"] == "amazon"
        assert set(roles.values()) == {"amazon", "partner", "downstream"}

    def test_amazon_sink_only(self, analysis):
        graph = analysis.sync_graph()
        assert graph.out_degree("amazon") == 0
        assert graph.in_degree("amazon") == analysis.partner_count

    def test_downstream_nodes_are_sinks(self, analysis):
        graph = analysis.sync_graph()
        for node, data in graph.nodes(data=True):
            if data["role"] == "downstream":
                assert graph.out_degree(node) == 0
                assert graph.in_degree(node) >= 1

    def test_propagation_reach_positive(self, analysis):
        reach = analysis.propagation_reach()
        assert reach
        assert all(v >= 1 for v in reach.values())

    def test_reach_counts_match_graph(self, analysis):
        graph = analysis.sync_graph()
        for partner, degree in analysis.propagation_reach().items():
            assert graph.out_degree(partner) == degree

    def test_empty_analysis_graph(self):
        graph = SyncAnalysis().sync_graph()
        assert list(graph.nodes) == ["amazon"]
