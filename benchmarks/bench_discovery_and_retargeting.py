"""Two smaller §3.3/§6.2 reproductions:

* prebid discovery stops at exactly 200 supporting sites (§3.3);
* no skill vendor re-targets ads at its installers (§6.2) — the absence
  that leads the paper to conclude Amazon is not sharing interest data
  with skills.
"""

from repro.core.adcontent import vendor_retargeting_check
from repro.core.personas import interest_personas
from repro.core.report import render_kv, render_table


def bench_prebid_discovery(benchmark, dataset):
    def count():
        return (
            len(dataset.prebid_sites),
            all(s.supports_prebid for s in dataset.prebid_sites),
            min(s.ad_slots for s in dataset.prebid_sites),
        )

    n_sites, all_prebid, min_slots = benchmark(count)
    print()
    print(
        render_kv(
            {
                "prebid sites identified": f"{n_sites} (paper stops at 200)",
                "all report a pbjs version": all_prebid,
                "minimum ad slots per site": min_slots,
            },
            title="§3.3 prebid discovery",
        )
    )
    assert n_sites == 200
    assert all_prebid
    assert min_slots >= 2


def bench_vendor_retargeting(benchmark, dataset, world):
    vendors_by_persona = {
        p.name: {s.vendor for s in world.catalog.top_skills(p.category, 50)}
        for p in interest_personas()
    }
    verdicts = benchmark.pedantic(
        vendor_retargeting_check,
        args=(dataset, vendors_by_persona),
        rounds=2,
        iterations=1,
    )
    rows = [
        (advertiser, "RETARGETING" if flag else "seen across personas")
        for advertiser, flag in sorted(verdicts.items())
    ]
    print()
    print(
        render_table(
            ["skill-vendor advertiser", "verdict"],
            rows,
            title="§6.2 vendor retargeting check",
        )
    )
    # The paper: "none of the skills re-target ads to personas".
    assert verdicts  # vendor ads were observed at all
    assert not any(verdicts.values())
