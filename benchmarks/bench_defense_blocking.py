"""§8.1 defense: selective blocking of non-essential skill traffic.

Measures the paper's implied evaluation — how much advertising/tracking
traffic a filter-list router policy removes, and whether skills keep
working ("blocking without breaking", [72])."""

from repro.alexa import AlexaCloud, AmazonAccount, EchoDevice, Marketplace
from repro.core.report import render_kv
from repro.data.domains import PIHOLE_FILTER_TEXT, build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.data import categories as cat
from repro.defenses import BlockingRouter, evaluate_blocking
from repro.netsim.router import Router
from repro.orgmap.filterlists import FilterList
from repro.util.clock import SimClock
from repro.util.rng import Seed


def _run_defended_campaign():
    seed = Seed(42)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))

    account = AmazonAccount(email="defended@persona.example.com", persona="defended")
    device = EchoDevice("echo-defended", account, blocking, cloud, seed)

    # The A&T-heavy personas are where blocking has something to do.
    skills = []
    for category in (cat.CONNECTED_CAR, cat.FASHION, cat.DATING):
        skills.extend(s for s in catalog.top_skills(category, 50) if s.active)
    evaluation = evaluate_blocking(device, marketplace, skills, blocking)
    for spec in skills:
        device.background_sync(list(spec.amazon_endpoints))
    return evaluation, blocking


def bench_defense_blocking(benchmark):
    evaluation, blocking = benchmark.pedantic(
        _run_defended_campaign, rounds=2, iterations=1
    )
    print()
    print(
        render_kv(
            {
                "skills exercised": evaluation.skills_run,
                "skills still functional": evaluation.skills_functional,
                "breakage rate": f"{100 * evaluation.breakage_rate:.1f}%",
                "tracking requests blocked": blocking.report.blocked_total,
                "functional requests allowed": blocking.report.allowed,
                "block rate": f"{100 * blocking.report.block_rate:.1f}%",
                "blocked hosts": len(blocking.report.blocked),
            },
            title="§8.1 defense — selective blocking",
        )
    )

    # The defense's value proposition: zero breakage, real tracking cut.
    assert evaluation.breakage_rate == 0.0
    assert blocking.report.blocked_total > 50
    assert "device-metrics-us-2.amazon.com" in blocking.report.blocked
    assert any("podtrac" in h or "megaphone" in h for h in blocking.report.blocked)
