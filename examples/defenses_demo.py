#!/usr/bin/env python3
"""The paper's §8.1 defenses, demonstrated and measured.

Runs the same skill workload three ways:

1. **stock Echo** — baseline tracking exposure;
2. **behind a blocking router** — filter-listed ad/tracking endpoints
   dropped at the network edge (after "Blocking without Breaking" [72]);
3. **local-processing Echo** — wake word + ASR on device, only text
   commands uploaded (after Porcupine / Rhasspy).
"""

from repro.alexa import AVSEcho, AlexaCloud, AmazonAccount, EchoDevice, Marketplace
from repro.core.report import render_kv, render_table
from repro.data import categories as cat
from repro.data.domains import PIHOLE_FILTER_TEXT, build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.defenses import (
    BlockingRouter,
    LocalProcessingEcho,
    evaluate_blocking,
    voice_exposure,
)
from repro.netsim.router import Router
from repro.orgmap.filterlists import FilterList
from repro.util.clock import SimClock
from repro.util.rng import Seed


def main() -> None:
    seed = Seed(42)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    skills = [s for s in catalog.top_skills(cat.CONNECTED_CAR, 50) if s.active]

    # -- 1. baseline ------------------------------------------------------ #
    baseline_account = AmazonAccount(email="base@persona.example.com", persona="base")
    baseline = EchoDevice("echo-base", baseline_account, router, cloud, seed)
    capture = router.start_capture("baseline", device_filter="echo-base")
    for spec in skills:
        marketplace.install(baseline_account, spec.skill_id)
        baseline.run_skill_session(spec)
        baseline.background_sync(list(spec.amazon_endpoints))
    router.stop_capture(capture)
    filter_list = FilterList.from_text(PIHOLE_FILTER_TEXT)
    baseline_tracking = sum(
        1 for p in capture if p.sni and filter_list.is_blocked(p.sni)
    )
    print(
        render_kv(
            {
                "packets captured": len(capture),
                "ad/tracking packets": baseline_tracking,
            },
            title="1. stock Echo (baseline)",
        )
    )

    # -- 2. blocking router ------------------------------------------------ #
    blocking = BlockingRouter(router, filter_list)
    blocked_account = AmazonAccount(email="blk@persona.example.com", persona="blk")
    blocked_device = EchoDevice("echo-blk", blocked_account, blocking, cloud, seed)
    evaluation = evaluate_blocking(blocked_device, marketplace, skills, blocking)
    for spec in skills:
        blocked_device.background_sync(list(spec.amazon_endpoints))
    print()
    print(
        render_kv(
            {
                "skills functional": f"{evaluation.skills_functional}/{evaluation.skills_run}",
                "breakage rate": f"{100 * evaluation.breakage_rate:.1f}%",
                "tracking requests blocked": blocking.report.blocked_total,
                "top blocked hosts": ", ".join(
                    sorted(blocking.report.blocked, key=blocking.report.blocked.get)[-3:]
                ),
            },
            title="2. behind the blocking router",
        )
    )

    # -- 3. local voice processing ----------------------------------------- #
    rows = []
    for name, device_cls in (("stock AVS Echo", AVSEcho), ("local-processing", LocalProcessingEcho)):
        account = AmazonAccount(
            email=f"{name.split()[0]}@persona.example.com", persona=name
        )
        device = device_cls(f"echo-{name.split()[0]}", account, router, cloud, seed)
        for spec in skills[:10]:
            marketplace.install(account, spec.skill_id)
            device.run_skill_session(spec)
        exposure = voice_exposure(device.plaintext_log)
        rows.append(
            (
                name,
                exposure["audio_uploads"],
                exposure["text_uploads"],
                exposure["skill_voice_fields"],
            )
        )
    print()
    print(
        render_table(
            ["device", "audio uploads", "text uploads", "voice fields to skills"],
            rows,
            title="3. local voice processing",
        )
    )


if __name__ == "__main__":
    main()
