"""§5.5 headline counts: 41 advertisers sync cookies with Amazon, Amazon
never syncs outbound, and partners sync with 247 downstream parties."""

from paper_targets import N_DOWNSTREAM, N_SYNC_PARTNERS

from repro.core.report import render_kv
from repro.core.syncing import detect_cookie_syncing


def bench_sync_counts(benchmark, dataset):
    analysis = benchmark.pedantic(
        detect_cookie_syncing, args=(dataset,), rounds=2, iterations=1
    )
    print()
    print(
        render_kv(
            {
                "partners syncing with Amazon": f"{analysis.partner_count} (paper {N_SYNC_PARTNERS})",
                "Amazon outbound syncs": f"{len(analysis.amazon_outbound_targets)} (paper 0)",
                "downstream third parties": f"{analysis.downstream_count} (paper {N_DOWNSTREAM})",
                "sync events observed": len(analysis.events),
            },
            title="§5.5 cookie syncing",
        )
    )

    assert analysis.partner_count == N_SYNC_PARTNERS
    assert analysis.downstream_count == N_DOWNSTREAM
    assert analysis.amazon_outbound_targets == set()
    # Every partner that synced with Amazon also reaches downstream parties.
    assert set(analysis.partner_downstream) <= set(analysis.amazon_partners) | set(
        analysis.partner_downstream
    )
    assert all(domains for domains in analysis.partner_downstream.values())
