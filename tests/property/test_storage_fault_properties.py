"""Property tests for the storage fault seam.

Two invariants over *randomized* fault schedules (every schedule is
still deterministic given its seed — hypothesis randomizes which seeds
and profiles we try, not the draws within one):

* the atomic-write seam always converges to the exact payload whenever
  writes eventually succeed, and never leaves torn bytes at a live
  name;
* a segment store written under any such schedule holds byte-identical
  durable artifacts to a store written with no faults at all.
"""

import itertools

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import atomic_write_bytes
from repro.core.iosim import (
    StorageFaultPlan,
    StorageFaultProfile,
    storage_faults,
    transient_storage_error,
)
from repro.core.segments import SegmentStore
from repro.util.rng import Seed

ROSTER = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")

_example_counter = itertools.count()

#: Transient-only profiles; rates stay modest so "writes eventually
#: succeed" holds for almost every drawn schedule (the rare schedule
#: that exhausts the 4-attempt retry budget is rejected, matching the
#: determinism bar's own precondition).
profiles = st.builds(
    lambda eio, fsync, rename, torn: StorageFaultProfile(
        name="prop",
        eio_rate=eio,
        fsync_rate=fsync,
        rename_rate=rename,
        torn_rate=torn,
        torn_fraction=(0.05, 0.95),
    ),
    eio=st.floats(0.0, 0.12),
    fsync=st.floats(0.0, 0.08),
    rename=st.floats(0.0, 0.08),
    torn=st.floats(0.0, 0.12),
)


def records_for(positions):
    return {
        "bids": [
            {"pos": pos, "value": f"v{pos}.{k}"}
            for pos in positions
            for k in range(3)
        ]
    }


def durable_bytes(store):
    """Every durable artifact's bytes, minus the advisory digest cache
    (it records verification timestamps, not campaign content)."""
    snapshot = {}
    for path in sorted(store.campaign_dir.rglob("*")):
        if path.is_file() and path.name != "digest-cache.json":
            snapshot[str(path.relative_to(store.campaign_dir))] = (
                path.read_bytes()
            )
    return snapshot


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed_root=st.integers(min_value=0, max_value=2**16),
    profile=profiles,
    payloads=st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=8),
)
def test_atomic_writes_converge_to_exact_bytes(
    tmp_path, seed_root, profile, payloads
):
    plan = StorageFaultPlan(Seed(seed_root), profile)
    # tmp_path is per-test, not per-example: uniquify for each example.
    target = tmp_path / f"t{next(_example_counter)}" / "payload.bin"
    with storage_faults(plan):
        for payload in payloads:
            try:
                atomic_write_bytes(
                    target, payload, component="segments", op="segment"
                )
            except OSError as exc:
                # This schedule exhausted the retry budget — outside the
                # "writes eventually succeed" precondition.  Even then
                # the previous payload must survive untouched.
                assume(not transient_storage_error(exc))
                raise
            assert target.read_bytes() == payload
    assert [p.name for p in target.parent.iterdir()] == ["payload.bin"]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed_root=st.integers(min_value=0, max_value=2**16),
    profile=profiles,
    split=st.integers(min_value=1, max_value=len(ROSTER) - 1),
)
def test_store_bytes_identical_under_any_fault_schedule(
    tmp_path, seed_root, profile, split
):
    example = next(_example_counter)
    oracle = SegmentStore(tmp_path / f"clean{example}", 42, "fp0001", ROSTER)
    oracle.ensure_manifest()
    batches = [list(range(0, split)), list(range(split, len(ROSTER)))]
    for positions in batches:
        oracle.write_batch(positions, records_for(positions))
    oracle.write_manifest("complete")

    plan = StorageFaultPlan(Seed(seed_root), profile)
    faulted = SegmentStore(tmp_path / f"faulted{example}", 42, "fp0001", ROSTER)
    with storage_faults(plan):
        try:
            faulted.ensure_manifest()
            for positions in batches:
                faulted.write_batch(positions, records_for(positions))
            faulted.write_manifest("complete")
        except OSError as exc:
            assume(not transient_storage_error(exc))
            raise

    assert durable_bytes(faulted) == durable_bytes(oracle)
    # And the readers agree record-for-record.
    assert list(faulted.iter_stream("bids")) == list(oracle.iter_stream("bids"))
