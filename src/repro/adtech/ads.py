"""Display-ad creatives and the ad server that selects them.

Creative selection reproduces §5.3's observable facts:

* Amazon house campaigns (Table 8) are scheduled for specific personas
  and iteration subsets, so e.g. the dehumidifier ad appears 7 times in
  5 iterations — and *only* — for the Health & Fitness persona.
* Skill-vendor campaigns (Microsoft, SimpliSafe, Ford, …) appear across
  personas, which is why the paper finds them non-exclusive and draws no
  personalization conclusion from them.
* Everything else is generic brand filler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.data.calibration import (
    AMAZON_HOUSE_CAMPAIGNS,
    GENERIC_DISPLAY_BRANDS,
    VENDOR_CAMPAIGNS,
    HouseCampaign,
    VendorCampaign,
)
from repro.data.categories import base_category
from repro.util.ids import stable_hash
from repro.util.rng import Seed

__all__ = ["AdCreative", "AdServer"]

#: Crawl iterations after interaction (§3.3).
N_POST_ITERATIONS = 25


@dataclass(frozen=True)
class AdCreative:
    """One rendered display ad."""

    creative_id: str
    advertiser: str
    product: str
    #: "amazon-house" | "vendor" | "generic"
    source: str

    @property
    def text(self) -> str:
        return f"{self.product} — by {self.advertiser}"


class AdServer:
    """Chooses the creative rendered into a won ad slot."""

    def __init__(self, seed: Seed) -> None:
        self._seed = seed
        self._house_schedule = self._build_house_schedule(seed)
        self._vendor_rate = {
            c.advertiser: c.impressions / N_POST_ITERATIONS for c in VENDOR_CAMPAIGNS
        }

    @staticmethod
    def _build_house_schedule(
        seed: Seed,
    ) -> Dict[Tuple[str, int], List[HouseCampaign]]:
        """Assign each house campaign's impressions to iterations.

        Returns (persona, iteration) -> campaigns to show, with campaign
        impressions spread over exactly ``campaign.iterations`` distinct
        iterations, as Table 8 reports.
        """
        schedule: Dict[Tuple[str, int], List[HouseCampaign]] = {}
        for campaign in AMAZON_HOUSE_CAMPAIGNS:
            rng = seed.rng("adserver", "house", campaign.product)
            iterations = sorted(rng.sample(range(N_POST_ITERATIONS), campaign.iterations))
            # Spread impressions across the chosen iterations (each gets >= 1).
            counts = [1] * campaign.iterations
            for _ in range(campaign.impressions - campaign.iterations):
                counts[rng.randrange(campaign.iterations)] += 1
            for iteration, count in zip(iterations, counts):
                key = (campaign.target_persona, iteration)
                schedule.setdefault(key, []).extend([campaign] * count)
        return schedule

    def select(
        self,
        persona: str,
        iteration: int,
        slot_id: str,
        slot_index: int,
        interacted: bool,
    ) -> AdCreative:
        """Pick the creative for one won slot.

        ``slot_index`` is the slot's position in the iteration's render
        order; house-campaign impressions are consumed from the front so
        scheduled counts are exact.
        """
        if interacted and iteration >= 0:
            # House campaigns target the persona profile, so replicas
            # ("health-and-fitness-r2") see their base category's slots.
            key = (base_category(persona), iteration)
            pending = self._house_schedule.get(key, [])
            if slot_index < len(pending):
                campaign = pending[slot_index]
                return AdCreative(
                    creative_id=stable_hash("house", campaign.product, length=12),
                    advertiser="Amazon",
                    product=campaign.product,
                    source="amazon-house",
                )
        rng = self._seed.rng("adserver", "fill", persona, iteration, slot_id)
        for campaign in VENDOR_CAMPAIGNS:
            # Impressions/iteration spread over the ~80 candidate renders
            # an iteration produces (calibrated to Table 8's vendor rows).
            if rng.random() < self._vendor_rate[campaign.advertiser] / 84.0:
                return AdCreative(
                    creative_id=stable_hash("vendor", campaign.advertiser, length=12),
                    advertiser=campaign.advertiser,
                    product=campaign.product,
                    source="vendor",
                )
        brand = rng.choice(GENERIC_DISPLAY_BRANDS)
        return AdCreative(
            creative_id=stable_hash("generic", brand, rng.random(), length=12),
            advertiser=brand,
            product=f"{brand} offer",
            source="generic",
        )
