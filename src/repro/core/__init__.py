"""The auditing framework — the paper's primary contribution.

Orchestrates the measurement campaign (:mod:`repro.core.experiment`) and
implements every analysis of §4–§7: traffic attribution, bid statistics,
ad-content labelling, cookie-sync detection, DSAR profiling, and policy
compliance.
"""

from repro.core.adcontent import (
    AudioAdAnalysis,
    DisplayAdAnalysis,
    analyze_audio_ads,
    analyze_display_ads,
    extract_audio_ads,
    transcribe_session,
)
from repro.core.bids import (
    bid_summary_table,
    bids_on_slots,
    common_slots,
    echo_vs_web_matrix,
    figure3_series,
    figure7_series,
    holiday_window_means,
    partner_split,
    representative_bids,
    significance_vs_vanilla,
)
from repro.core.compliance import (
    ComplianceAnalysis,
    PolicyAvailability,
    analyze_compliance,
    policy_availability,
    run_validation_study,
)
from repro.core.cache import DatasetCache
from repro.core.campaign import run_campaign, run_segment_campaign
from repro.core.checkpoint import (
    CheckpointError,
    CorruptShardError,
    ShardJournal,
    atomic_write_bytes,
    quarantine_path,
)
from repro.core.fsck import FsckReport, fsck_path
from repro.core.iosim import (
    StorageFaultPlan,
    StorageFaultProfile,
    StorageRetryPolicy,
    install_storage_faults,
    storage_faults,
    uninstall_storage_faults,
)
from repro.core.experiment import (
    AuditDataset,
    ExperimentConfig,
    ExperimentRunner,
    PersonaArtifacts,
    PolicyFetch,
)
from repro.core.parallel import (
    ShardFailure,
    ShardResult,
    SupervisorPolicy,
    SupervisorReport,
    WorkerFaultPlan,
    parallel_map,
    shard_personas,
)
from repro.core.personas import (
    Persona,
    all_personas,
    control_personas,
    interest_personas,
    scaled_roster,
)
from repro.core.profiling import ProfilingAnalysis, analyze_profiling
from repro.core.segments import (
    CorruptSegmentError,
    SegmentError,
    SegmentStore,
    persona_stream_records,
    write_dataset_segments,
)
from repro.core.stats import (
    MannWhitneyResult,
    effect_size_label,
    mann_whitney_u,
    rank_biserial,
    summarize,
)
from repro.core.syncing import SyncAnalysis, SyncEvent, detect_cookie_syncing
from repro.core.traffic import TrafficAnalysis, analyze_traffic
from repro.core.world import World, build_world

__all__ = [
    "AuditDataset",
    "AudioAdAnalysis",
    "CheckpointError",
    "ComplianceAnalysis",
    "CorruptSegmentError",
    "CorruptShardError",
    "DatasetCache",
    "DisplayAdAnalysis",
    "ExperimentConfig",
    "ExperimentRunner",
    "FsckReport",
    "MannWhitneyResult",
    "Persona",
    "PersonaArtifacts",
    "PolicyAvailability",
    "PolicyFetch",
    "ProfilingAnalysis",
    "SegmentError",
    "SegmentStore",
    "ShardFailure",
    "ShardJournal",
    "ShardResult",
    "StorageFaultPlan",
    "StorageFaultProfile",
    "StorageRetryPolicy",
    "SupervisorPolicy",
    "SupervisorReport",
    "SyncAnalysis",
    "SyncEvent",
    "TrafficAnalysis",
    "WorkerFaultPlan",
    "World",
    "all_personas",
    "atomic_write_bytes",
    "analyze_audio_ads",
    "analyze_compliance",
    "analyze_display_ads",
    "analyze_profiling",
    "analyze_traffic",
    "bid_summary_table",
    "bids_on_slots",
    "build_world",
    "common_slots",
    "control_personas",
    "detect_cookie_syncing",
    "echo_vs_web_matrix",
    "effect_size_label",
    "extract_audio_ads",
    "figure3_series",
    "figure7_series",
    "fsck_path",
    "holiday_window_means",
    "install_storage_faults",
    "interest_personas",
    "mann_whitney_u",
    "parallel_map",
    "partner_split",
    "persona_stream_records",
    "policy_availability",
    "quarantine_path",
    "rank_biserial",
    "representative_bids",
    "run_campaign",
    "run_segment_campaign",
    "run_validation_study",
    "scaled_roster",
    "shard_personas",
    "significance_vs_vanilla",
    "storage_faults",
    "summarize",
    "transcribe_session",
    "uninstall_storage_faults",
    "write_dataset_segments",
]
