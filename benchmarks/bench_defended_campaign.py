"""§8.1 end-to-end: the full audit campaign behind the blocking router.

Re-runs a scaled campaign with the filter-list defense at the network
edge and recomputes Table 2: the advertising/tracking share of Echo
traffic collapses while the skills keep working."""

from repro.core.experiment import ExperimentConfig
from repro.core.report import render_table
from repro.core.traffic import analyze_traffic
from repro.core.world import build_world
from repro.defenses import BlockingRouter
from repro.util.rng import Seed

CONFIG = ExperimentConfig(
    skills_per_persona=10,
    pre_iterations=1,
    post_iterations=2,
    crawl_sites=4,
    prebid_discovery_target=15,
    audio_hours=0.5,
)


def _run(defended: bool):
    world = build_world(Seed(77))
    if defended:
        world.router = BlockingRouter(world.router, world.filter_list)
    from repro.core.experiment import ExperimentRunner

    dataset = ExperimentRunner(world, CONFIG).run()
    vendor_by_skill = {s.skill_id: s.vendor for s in world.catalog}
    traffic = analyze_traffic(
        dataset, world.org_resolver(), world.filter_list, vendor_by_skill
    )
    shares = traffic.ad_tracking_traffic_share()
    ad_share = sum(v for (_, ad), v in shares.items() if ad)
    captured = sum(
        1
        for a in dataset.interest_personas
        for c in a.skill_captures.values()
        if len(c) > 0
    )
    return ad_share, captured


def bench_defended_campaign(benchmark):
    baseline_share, baseline_skills = _run(defended=False)
    defended_share, defended_skills = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["configuration", "A&T traffic share", "skills with traffic"],
            [
                ("stock router", f"{100 * baseline_share:.2f}%", baseline_skills),
                ("blocking router", f"{100 * defended_share:.2f}%", defended_skills),
            ],
            title="§8.1 defended campaign (Table 2 recomputed)",
        )
    )

    # The defense eliminates the tracking share entirely (nothing
    # filter-listed reaches the wire, so the capture contains none of it)
    # while every skill still produces traffic.
    assert baseline_share > 0.02
    assert defended_share == 0.0
    assert defended_skills == baseline_skills
