"""Durable campaign jobs for the audit service.

A **job** is one submitted :class:`~repro.core.campaign.CampaignSpec`
plus everything the service knows about executing it, laid out under its
own directory so two tenants' campaigns can never touch each other's
artifacts::

    <root>/jobs/<job-id>/
        spec.json        # the submitted spec, exact to_json() form
        state.json       # job lifecycle state (atomic writes)
        events.jsonl     # lifecycle + progress events (SSE tails this)
        out/             # export files (results endpoint serves this)
        checkpoint/      # shard journal namespace (parallel memory jobs)
        segments/        # segment store namespace (store="segments" jobs)

Durability follows the same rules as the shard journal
(:mod:`repro.core.checkpoint`): every ``state.json`` write is atomic
(temp → fsync → rename), so a SIGKILL'd service never leaves a
half-written state behind, and on restart :meth:`JobStore.recover`
re-enqueues every non-terminal job.  Because the checkpoint journal and
the segment store are both crash-safe and job-local, a recovered job
*resumes* — completed shards/batches are loaded, not recomputed — and
its exports are byte-identical to an uninterrupted run.

The event log speaks the exact five-key schema of the campaign obs
trace (:func:`repro.obs.make_event_record`), one canonical JSON object
per line, so the SSE stream and a ``repro run --trace-out`` trace can
be processed by the same tooling.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.campaign import CampaignSpec, execute_spec
from repro.core.checkpoint import atomic_write_bytes
from repro.core.iosim import is_enospc
from repro.obs import event_line, make_event_record

__all__ = [
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobEventWriter",
    "JobStore",
    "SubmitError",
]

#: Bump whenever the persisted ``state.json`` layout changes shape.
JOB_SCHEMA_VERSION = 1

#: The job lifecycle.  ``queued`` → ``running`` → one of the terminal
#: states: ``complete`` (all personas), ``partial`` (a degraded parallel
#: run dropped personas), ``failed`` (the campaign raised), or
#: ``cancelled`` (dequeued before it started).
JOB_STATES = ("queued", "running", "complete", "partial", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("complete", "partial", "failed", "cancelled")

#: Spec fields the service owns: placement is per-job, so a submitted
#: spec must not try to point the campaign at caller-chosen paths.
_MANAGED_FIELDS = ("cache", "checkpoint_dir", "resume", "store_dir")

_SPEC_NAME = "spec.json"
_STATE_NAME = "state.json"
_EVENTS_NAME = "events.jsonl"

#: Progress-watcher poll interval (seconds).  Coarse on purpose: the
#: watcher exists to feed the SSE stream, not to be a profiler.
_PROGRESS_POLL_SECONDS = 0.1


class SubmitError(ValueError):
    """The submitted spec cannot be accepted as a job."""


class JobEventWriter:
    """Append-only JSONL event log for one job.

    Same five-key record schema and canonical serialization as the
    in-memory :class:`~repro.obs.EventLog`; ``seq`` continues across
    service restarts by counting the lines already on disk.  Writes are
    line-buffered appends — an append either lands as a whole line or
    (on a crash mid-write) as a trailing fragment that tail readers
    skip, so the SSE stream never emits a torn event.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._seq = len(read_event_lines(self.path))
        self._truncate_torn_tail()

    def _truncate_torn_tail(self) -> None:
        """Drop a torn trailing fragment left by a crash mid-append.

        Readers already skip the fragment, but the next append would
        splice onto it and turn two events into one garbage line —
        truncate the log back to its last complete line instead, so seq
        continuation and replay both resume from clean state.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1
        with self.path.open("rb+") as handle:
            handle.truncate(keep)

    def emit(self, event_type: str, **fields: object) -> Dict[str, object]:
        """Append one event; returns the record."""
        with self._lock:
            record = make_event_record(self._seq, event_type, fields)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(event_line(record) + "\n")
            self._seq += 1
        return record


def read_event_lines(path: Union[str, Path]) -> List[str]:
    """The complete event lines currently in a job log.

    A trailing fragment without a newline (crash mid-append) is ignored;
    it will be overwritten-in-place semantics-wise by never being
    counted, because :class:`JobEventWriter` numbers from the complete
    lines only.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    lines = text.split("\n")
    if lines and lines[-1] != "":
        lines = lines[:-1]  # torn trailing fragment
    else:
        lines = lines[:-1] if lines else []
    return [line for line in lines if line]


class Job:
    """One submitted campaign and its on-disk namespace."""

    def __init__(self, root: Union[str, Path], job_id: str, spec: CampaignSpec) -> None:
        self.root = Path(root)
        self.id = job_id
        self.spec = spec
        self.events = JobEventWriter(self.root / _EVENTS_NAME)
        self._lock = threading.Lock()
        self._state: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Namespaces
    # ------------------------------------------------------------------ #

    @property
    def out_dir(self) -> Path:
        return self.root / "out"

    @property
    def checkpoint_dir(self) -> Path:
        return self.root / "checkpoint"

    @property
    def segments_dir(self) -> Path:
        return self.root / "segments"

    @property
    def events_path(self) -> Path:
        return self.root / _EVENTS_NAME

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        with self._lock:
            return str(self._state.get("state", "queued"))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> Dict[str, object]:
        """The job as the HTTP API reports it."""
        with self._lock:
            payload = dict(self._state)
        payload["id"] = self.id
        payload["spec"] = self.spec.to_dict()
        return payload

    def update_state(self, state: str, **extra: object) -> None:
        """Atomically persist a state transition (plus extra fields)."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state: {state!r}")
        with self._lock:
            current = str(self._state.get("state", "queued"))
            if current in TERMINAL_STATES and state != current:
                # Terminal states are final: a watchdog-reaped job's
                # still-running worker thread must not resurrect it.
                return
            self._state.update(extra)
            self._state["state"] = state
            self._state["schema"] = JOB_SCHEMA_VERSION
            self._state["fingerprint"] = self.spec.fingerprint()
            payload = json.dumps(self._state, indent=2, sort_keys=True)
        atomic_write_bytes(
            self.root / _STATE_NAME,
            payload.encode("utf-8"),
            component="jobs",
            op="state",
        )

    def set_flag(self, name: str, value: object) -> None:
        """Persist one extra state field without changing the state."""
        self.update_state(self.state, **{name: value})

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def effective_spec(self) -> CampaignSpec:
        """The submitted spec re-rooted into this job's namespace.

        Placement fields are service-managed: a parallel memory campaign
        checkpoints into ``checkpoint/`` (and resumes from it when a
        journal is already there — the restart-recovery path), a segment
        campaign streams into ``segments/``.  Everything that defines
        *what* runs — config, seed, topology, failure policy — is the
        submitted spec verbatim, which is what keeps the exports
        byte-identical to a local ``repro run`` of the same spec.
        """
        spec = self.spec
        if spec.store == "segments":
            return spec.replace(store_dir=str(self.segments_dir))
        if spec.parallel:
            journal = self.checkpoint_dir / "journal.json"
            return spec.replace(
                checkpoint_dir=str(self.checkpoint_dir),
                resume=journal.exists(),
            )
        return spec

    def execute(self) -> str:
        """Run the campaign; returns the terminal state reached.

        Called by a scheduler worker.  Emits lifecycle events
        (``job.started`` / ``job.progress`` / ``job.finished`` or
        ``job.failed``) into the job log and keeps ``state.json``
        current, so both the SSE stream and a post-mortem reader of the
        job directory see the same story.
        """
        if self.describe().get("cancel_requested"):
            # Cancelled after being handed to a worker but before any
            # work started: honour it instead of burning the worker.
            self.events.emit("job.cancelled", reason="cancel_requested")
            self.update_state("cancelled")
            return "cancelled"
        spec = self.effective_spec()
        resumed = spec.resume
        self.update_state("running", resumed=resumed)
        self.events.emit(
            "job.started",
            fingerprint=self.spec.fingerprint(),
            resumed=resumed,
            store=spec.store,
            parallel=spec.parallel,
        )
        watcher = _ProgressWatcher(self)
        watcher.start()
        try:
            counts, result = execute_spec(spec, self.out_dir)
        except Exception as exc:  # noqa: BLE001 - job boundary
            watcher.stop()
            message = f"{type(exc).__name__}: {exc}"
            # Machine-readable failure class: a full disk is an operable
            # condition (free space, resubmit, the job resumes), not a
            # generic error.
            reason = "storage_exhausted" if is_enospc(exc) else "error"
            # Event first, state second: an SSE tail that sees the
            # terminal state must already find the final event on disk.
            self.events.emit("job.failed", error=message, reason=reason)
            self.update_state("failed", error=message, reason=reason)
            return "failed"
        watcher.stop()
        state = self._classify(result)
        self.events.emit(
            "job.finished",
            state=state,
            rows=sum(v for k, v in counts.items() if k.endswith(".csv")),
        )
        self.update_state(state, counts=_json_counts(counts))
        return state

    def _classify(self, result) -> str:
        """``complete`` vs ``partial`` from the campaign's own records."""
        if self.spec.store == "segments":
            status = result.status()
            return "partial" if status == "partial" else "complete"
        obs = getattr(result, "obs", None)
        manifest = getattr(obs, "manifest", None)
        missing = getattr(manifest, "missing_personas", ()) or ()
        return "partial" if missing else "complete"


def _json_counts(counts: Dict[str, int]) -> Dict[str, int]:
    return {str(k): int(v) for k, v in sorted(counts.items())}


class _ProgressWatcher:
    """Background poll of a running job's durable namespace.

    Parallel memory jobs leave ``shard-*.pkl`` entries in the checkpoint
    journal and segment jobs leave ``batch-*.json`` coverage markers;
    counting them is a cheap, read-only progress signal that feeds
    ``job.progress`` events (and therefore the SSE stream) without
    touching the campaign's own code paths.  Serial in-memory jobs have
    no durable footprint, so they simply emit no progress events.
    """

    def __init__(self, job: Job) -> None:
        self._job = job
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"progress-{self._job.id}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _count(self) -> Optional[int]:
        job = self._job
        if job.spec.store == "segments":
            if job.segments_dir.is_dir():
                return len(list(job.segments_dir.glob("**/batch-*.json")))
            return 0
        if job.spec.parallel:
            if job.checkpoint_dir.is_dir():
                return len(list(job.checkpoint_dir.glob("shard-*.pkl")))
            return 0
        return None

    def _run(self) -> None:
        last: Optional[int] = None
        unit = "batches" if self._job.spec.store == "segments" else "shards"
        while not self._stop.wait(_PROGRESS_POLL_SECONDS):
            count = self._count()
            if count is None:
                return
            if count != last and count > 0:
                self._job.events.emit("job.progress", completed=count, unit=unit)
                last = count


# ---------------------------------------------------------------------- #
# JobStore
# ---------------------------------------------------------------------- #


class JobStore:
    """All jobs under one service root, durable across restarts.

    Submission validates (the spec's own ``__post_init__`` already ran;
    the store adds the service-placement rules), assigns the job id
    ``job-<seq>-<fingerprint-prefix>``, and persists ``spec.json`` +
    ``state.json`` before returning — a job the caller has seen is
    always recoverable.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._next_seq = 1
        self._load()

    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        """Adopt every job directory already on disk (restart path)."""
        if not self.jobs_dir.is_dir():
            return
        for job_dir in sorted(self.jobs_dir.iterdir()):
            spec_path = job_dir / _SPEC_NAME
            if not spec_path.is_file():
                continue
            spec = CampaignSpec.from_json(spec_path.read_text(encoding="utf-8"))
            job = Job(job_dir, job_dir.name, spec)
            state_path = job_dir / _STATE_NAME
            if state_path.is_file():
                job._state = json.loads(state_path.read_text(encoding="utf-8"))
            self._jobs[job.id] = job
            seq = _seq_of(job.id)
            if seq is not None and seq >= self._next_seq:
                self._next_seq = seq + 1

    def submit(self, spec: CampaignSpec, *, queued_at: Optional[float] = None) -> Job:
        """Persist a new queued job for ``spec``."""
        if not isinstance(spec, CampaignSpec):
            raise SubmitError(
                f"submit takes a CampaignSpec, got {type(spec).__name__}"
            )
        managed = [
            name
            for name in _MANAGED_FIELDS
            if getattr(spec, name) not in (None, False)
        ]
        if managed:
            raise SubmitError(
                f"{', '.join(managed)} are managed by the service — each job "
                "gets its own cache/checkpoint/segment namespace, so a "
                "submitted spec must leave placement fields unset"
            )
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job_id = f"job-{seq:06d}-{spec.fingerprint()[:8]}"
            job_dir = self.jobs_dir / job_id
            job_dir.mkdir(parents=True)
            atomic_write_bytes(
                job_dir / _SPEC_NAME,
                (spec.to_json(indent=2) + "\n").encode("utf-8"),
                component="jobs",
                op="spec",
            )
            job = Job(job_dir, job_id, spec)
            self._jobs[job_id] = job
        job.update_state(
            "queued",
            seq=seq,
            queued_at=queued_at if queued_at is not None else time.time(),
        )
        job.events.emit("job.submitted", fingerprint=spec.fingerprint(), seq=seq)
        return job

    # ------------------------------------------------------------------ #

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        """All jobs in submission order."""
        with self._lock:
            jobs = list(self._jobs.values())
        return sorted(jobs, key=lambda j: _seq_of(j.id) or 0)

    def recover(self) -> List[Job]:
        """Jobs to re-enqueue after a restart, in submission order.

        A ``queued`` job never started; a ``running`` job was cut down
        by the crash — both go back to ``queued`` with their original
        submission-ordering keys (``seq``, ``queued_at``) intact, so a
        restarted service replays the queue in the order callers
        submitted it.  A job whose ``state.json`` never landed (crash
        between the spec persist and the first state write) is
        re-stamped: ``seq`` is reconstructed from its id, and since the
        original wall-clock time is unrecoverable, ``queued_at`` gets
        the recovery time — FIFO order is carried by ``seq`` either way.
        Running jobs keep their checkpoint/segment namespaces, so
        re-execution resumes from durable work instead of starting over.
        """
        recovered: List[Job] = []
        for job in self.list():
            state = job.state
            if state in TERMINAL_STATES:
                continue
            persisted = job.describe()
            ordering: Dict[str, object] = {}
            if "seq" not in persisted:
                seq = _seq_of(job.id)
                if seq is not None:
                    ordering["seq"] = seq
            if "queued_at" not in persisted:
                ordering["queued_at"] = time.time()
            if state == "running":
                job.update_state("queued", recovered=True, **ordering)
                job.events.emit("job.recovered", previous_state="running")
            elif ordering:
                job.update_state("queued", **ordering)
            recovered.append(job)
        return recovered


def _seq_of(job_id: str) -> Optional[int]:
    parts = job_id.split("-")
    if len(parts) >= 2 and parts[0] == "job":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None
