"""Tests for the web-tracking pixel mechanism behind web personas."""

import pytest

from repro.adtech.exchange import (
    TRACKER_DOMAIN,
    WEB_EVIDENCE_THRESHOLD,
    AdTechWorld,
)
from repro.core.syncing import detect_cookie_syncing
from repro.data import categories as cat
from repro.util.clock import SimClock
from repro.util.rng import Seed
from repro.web.browser import Browser, BrowserProfile, WebUniverse


@pytest.fixture
def rig():
    universe = WebUniverse()
    adtech = AdTechWorld(Seed(61), universe)
    profile = BrowserProfile("prof-web", cat.WEB_HEALTH)
    state = adtech.register_profile(profile)
    browser = Browser(profile, universe, SimClock())
    return adtech, browser, state


def hit_pixel(browser, category, n):
    for i in range(n):
        browser.get(
            f"https://{TRACKER_DOMAIN}/t?cat={category}&page=site{i}.example.org"
        )


class TestTrackerPixel:
    def test_evidence_accumulates(self, rig):
        adtech, browser, state = rig
        hit_pixel(browser, cat.WEB_HEALTH, 3)
        assert state.web_evidence[cat.WEB_HEALTH] == 3
        assert not state.interacted

    def test_threshold_flips_interacted(self, rig):
        adtech, browser, state = rig
        hit_pixel(browser, cat.WEB_HEALTH, WEB_EVIDENCE_THRESHOLD)
        assert state.interacted

    def test_off_category_evidence_does_not_flip(self, rig):
        adtech, browser, state = rig
        hit_pixel(browser, cat.WEB_SCIENCE, WEB_EVIDENCE_THRESHOLD + 5)
        assert state.web_evidence[cat.WEB_SCIENCE] > WEB_EVIDENCE_THRESHOLD
        assert not state.interacted  # not this profile's own category

    def test_unknown_uid_ignored(self, rig):
        adtech, _, state = rig
        fresh = Browser(
            BrowserProfile("stranger", cat.WEB_HEALTH),
            adtech.universe,
            SimClock(),
        )
        # Profile never registered: evidence goes nowhere, no crash.
        fresh.get(f"https://{TRACKER_DOMAIN}/t?cat=web-health&page=x.example.org")
        assert state.web_evidence == {}


class TestPrimingIntegration:
    def test_web_personas_primed_via_pixels(self, small_dataset):
        adtech = small_dataset.world.adtech
        for name in (cat.WEB_HEALTH, cat.WEB_SCIENCE, cat.WEB_COMPUTERS):
            assert adtech.is_interacted(f"profile-{name}")
            state = adtech._profiles[f"profile-{name}"]
            assert state.web_evidence[name] >= WEB_EVIDENCE_THRESHOLD

    def test_pixel_traffic_in_request_logs(self, small_dataset):
        artifacts = small_dataset.artifacts(cat.WEB_HEALTH)
        crawler_log = artifacts.request_log
        pixel_hits = [r for r in crawler_log if TRACKER_DOMAIN in r.url]
        assert len(pixel_hits) == 50  # one per priming site

    def test_pixels_not_mistaken_for_cookie_syncs(self, small_dataset):
        sync = detect_cookie_syncing(small_dataset)
        assert all(
            TRACKER_DOMAIN not in event.destination_host for event in sync.events
        )
