"""Bid analysis (paper §5.1–§5.2, §5.5–§5.6).

All statistics run on bids from *common ad slots* — slots that loaded for
every crawling persona (§3.3 "Interpreting bids") — so slot-mix
differences cannot masquerade as targeting.

The Mann-Whitney comparisons use one representative bid per common slot
(the first bid response received on that slot in the final crawl
iteration).  This keeps the sample at the paper's scale (~40 values per
persona) so p-values are comparable to Table 7; using all ~8k pooled
bids would drive every p to zero without changing the effect sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.experiment import AuditDataset, PersonaArtifacts
from repro.core.stats import DistributionSummary, MannWhitneyResult, mann_whitney_u, summarize
from repro.data import categories as cat
from repro.web.openwpm import BidRecord

__all__ = [
    "common_slots",
    "common_slots_from_sets",
    "bids_on_slots",
    "representative_bids",
    "post_cpms_from_rows",
    "representative_from_rows",
    "BidTableRow",
    "bid_summary_table",
    "bid_summary_table_stream",
    "holiday_window_means",
    "significance_vs_vanilla",
    "partner_split",
    "echo_vs_web_matrix",
    "figure3_series",
    "figure7_series",
]


def common_slots(dataset: AuditDataset) -> Set[str]:
    """Slots that loaded for every crawling persona."""
    return common_slots_from_sets(
        a.loaded_slots for a in dataset.personas.values()
    )


def common_slots_from_sets(slot_sets) -> Set[str]:
    """Single-pass intersection of the non-empty per-persona slot sets.

    ``slot_sets`` is any iterable of slot-id collections in roster order
    (in-memory ``loaded_slots`` sets or segment-stream lists); empty
    collections are skipped, matching :func:`common_slots`.
    """
    common: Optional[Set[str]] = None
    for slots in slot_sets:
        if not slots:
            continue
        common = set(slots) if common is None else common & set(slots)
    return common if common is not None else set()


def bids_on_slots(
    artifacts: PersonaArtifacts,
    slots: Set[str],
    phase: str = "post",
) -> List[BidRecord]:
    """Bids restricted to ``slots``; phase is "pre", "post", or "all"."""
    if phase not in {"pre", "post", "all"}:
        raise ValueError(f"invalid phase: {phase}")
    records = []
    for bid in artifacts.bids:
        if bid.slot_id not in slots:
            continue
        if phase == "pre" and bid.iteration >= 0:
            continue
        if phase == "post" and bid.iteration < 0:
            continue
        records.append(bid)
    return records


def representative_bids(
    artifacts: PersonaArtifacts, slots: Set[str], iteration: Optional[int] = None
) -> List[float]:
    """One bid per common slot: the first response in ``iteration``.

    When ``iteration`` is None the last post-interaction iteration is
    used.
    """
    post = [b for b in artifacts.bids if b.iteration >= 0 and b.slot_id in slots]
    if not post:
        return []
    target = iteration if iteration is not None else max(b.iteration for b in post)
    chosen: Dict[str, float] = {}
    for bid in post:
        if bid.iteration != target:
            continue
        chosen.setdefault(bid.slot_id, bid.cpm)
    return [chosen[s] for s in sorted(chosen)]


def post_cpms_from_rows(rows, slots: Set[str]) -> List[float]:
    """Post-interaction CPMs on ``slots`` from plain bid rows.

    ``rows`` are mappings with ``slot``, ``iteration``, and ``cpm``
    fields in collection order (one persona's slice of a segment-store
    bid stream); the result equals
    ``[b.cpm for b in bids_on_slots(artifacts, slots, "post")]``.
    """
    return [
        row["cpm"]
        for row in rows
        if row["slot"] in slots and row["iteration"] >= 0
    ]


def representative_from_rows(rows, slots: Set[str]) -> List[float]:
    """:func:`representative_bids` computed from plain bid rows."""
    post = [r for r in rows if r["iteration"] >= 0 and r["slot"] in slots]
    if not post:
        return []
    target = max(r["iteration"] for r in post)
    chosen: Dict[str, float] = {}
    for row in post:
        if row["iteration"] != target:
            continue
        chosen.setdefault(row["slot"], row["cpm"])
    return [chosen[s] for s in sorted(chosen)]


@dataclass(frozen=True)
class BidTableRow:
    """One row of Table 5 / Table 10."""

    persona: str
    summary: DistributionSummary


def bid_summary_table(dataset: AuditDataset) -> List[BidTableRow]:
    """Table 5: median/mean CPM per persona on common slots (post)."""
    slots = common_slots(dataset)
    rows: List[BidTableRow] = []
    for artifacts in dataset.personas.values():
        if artifacts.persona.kind == "web":
            continue
        cpms = [b.cpm for b in bids_on_slots(artifacts, slots, "post")]
        if not cpms:
            continue
        rows.append(BidTableRow(persona=artifacts.persona.name, summary=summarize(cpms)))
    return rows


def bid_summary_table_stream(store) -> List[BidTableRow]:
    """:func:`bid_summary_table` as folds over a segment store.

    Two bounded passes: the ``personas`` stream yields each position's
    name/kind and the common-slot intersection; the ``bids`` stream —
    contiguous per persona after the k-way merge — is reduced one run at
    a time, so memory never holds more than one persona's CPM list.
    """
    kinds: Dict[int, Tuple[str, str]] = {}
    slot_sets = []
    for record in store.iter_stream("personas"):
        kinds[record["pos"]] = (record["name"], record["kind"])
        slot_sets.append(record["loaded_slots"])
    slots = common_slots_from_sets(slot_sets)

    rows: List[BidTableRow] = []

    def finish(pos: int, cpms: List[float]) -> None:
        name, kind = kinds[pos]
        if kind == "web" or not cpms:
            return
        rows.append(BidTableRow(persona=name, summary=summarize(cpms)))

    current: Optional[int] = None
    cpms: List[float] = []
    for row in store.iter_stream("bids"):
        if row["pos"] != current:
            if current is not None:
                finish(current, cpms)
            current, cpms = row["pos"], []
        if row["slot"] in slots and row["iteration"] >= 0:
            cpms.append(row["cpm"])
    if current is not None:
        finish(current, cpms)
    return rows


def holiday_window_means(
    dataset: AuditDataset, window: int = 3
) -> Dict[str, Tuple[float, float]]:
    """Table 6: mean CPM in the last ``window`` pre-interaction iterations
    vs the first ``window`` post-interaction iterations (both inside the
    holiday season)."""
    slots = common_slots(dataset)
    result: Dict[str, Tuple[float, float]] = {}
    for artifacts in dataset.personas.values():
        if artifacts.persona.kind == "web":
            continue
        pre = [b for b in bids_on_slots(artifacts, slots, "pre")]
        post = [b for b in bids_on_slots(artifacts, slots, "post")]
        if not pre or not post:
            continue
        pre_last = [b.cpm for b in pre if b.iteration >= -window]
        post_first = [b.cpm for b in post if b.iteration < window]
        if not pre_last or not post_first:
            continue
        result[artifacts.persona.name] = (
            summarize(pre_last).mean,
            summarize(post_first).mean,
        )
    return result


def significance_vs_vanilla(dataset: AuditDataset) -> Dict[str, MannWhitneyResult]:
    """Table 7: one-sided Mann-Whitney of each interest persona vs vanilla."""
    slots = common_slots(dataset)
    vanilla_sample = representative_bids(dataset.vanilla, slots)
    results: Dict[str, MannWhitneyResult] = {}
    for artifacts in dataset.interest_personas:
        sample = representative_bids(artifacts, slots)
        if not sample or not vanilla_sample:
            continue
        results[artifacts.persona.name] = mann_whitney_u(
            sample, vanilla_sample, alternative="greater"
        )
    return results


def partner_split(
    dataset: AuditDataset, partner_bidders: Set[str]
) -> Dict[str, Tuple[Optional[DistributionSummary], Optional[DistributionSummary]]]:
    """Table 10: (partner, non-partner) bid summaries per persona.

    ``partner_bidders`` is the set of bidder codes the cookie-sync
    analysis identified as syncing with Amazon (§5.5) — the auditor
    derives it from crawl traffic, not from ground truth.
    """
    slots = common_slots(dataset)
    result = {}
    for artifacts in dataset.personas.values():
        if artifacts.persona.kind == "web":
            continue
        post = bids_on_slots(artifacts, slots, "post")
        partner = [b.cpm for b in post if b.bidder in partner_bidders]
        non_partner = [b.cpm for b in post if b.bidder not in partner_bidders]
        result[artifacts.persona.name] = (
            summarize(partner) if partner else None,
            summarize(non_partner) if non_partner else None,
        )
    return result


def echo_vs_web_matrix(dataset: AuditDataset) -> Dict[Tuple[str, str], MannWhitneyResult]:
    """Table 11: two-sided Mann-Whitney of Echo vs web interest personas."""
    slots = common_slots(dataset)
    web_samples = {
        a.persona.category: representative_bids(a, slots)
        for a in dataset.personas.values()
        if a.persona.kind == "web"
    }
    results: Dict[Tuple[str, str], MannWhitneyResult] = {}
    for artifacts in dataset.interest_personas:
        sample = representative_bids(artifacts, slots)
        for web_category, web_sample in web_samples.items():
            if not sample or not web_sample:
                continue
            results[(artifacts.persona.name, web_category)] = mann_whitney_u(
                sample, web_sample, alternative="two-sided"
            )
    return results


def figure3_series(dataset: AuditDataset) -> Dict[str, Dict[str, List[float]]]:
    """Figure 3: CPM distributions per persona, without/with interaction."""
    slots = common_slots(dataset)
    series: Dict[str, Dict[str, List[float]]] = {"pre": {}, "post": {}}
    for artifacts in dataset.personas.values():
        if artifacts.persona.kind == "web":
            continue
        series["pre"][artifacts.persona.name] = [
            b.cpm for b in bids_on_slots(artifacts, slots, "pre")
        ]
        series["post"][artifacts.persona.name] = [
            b.cpm for b in bids_on_slots(artifacts, slots, "post")
        ]
    return series


def figure7_series(dataset: AuditDataset) -> Dict[str, List[float]]:
    """Figure 7: CPM distributions for vanilla, Echo, and web personas."""
    slots = common_slots(dataset)
    series: Dict[str, List[float]] = {}
    for artifacts in dataset.personas.values():
        series[artifacts.persona.name] = [
            b.cpm for b in bids_on_slots(artifacts, slots, "post")
        ]
    return series
