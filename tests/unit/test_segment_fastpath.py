"""Tests for the segment-store I/O fast path.

Covers the four hot-path structures: zero-copy batch adoption
(``adopt_batch`` + the ``os.link`` → byte-copy fallback), the per-batch
offset sidecar index behind ``stream_records_for``, the persisted
verified-digest cache, and the non-overlapping merge fast path — plus
the corruption contract (a digest-mismatching segment is quarantined
with a warning, never silently recomputed over).
"""

import json
import logging
import os

import pytest

from repro.obs import ObsCollector
from repro.core.segments import (
    PositionsCoveredError,
    SegmentStore,
    STREAMS,
)

ROSTER = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")


def make_store(root, fingerprint="fingerprint0001") -> SegmentStore:
    return SegmentStore(root, 42, fingerprint, ROSTER)


def records_for(*positions, streams=("bids", "flows"), per_pos=3):
    """Deterministic synthetic records keyed by position."""
    return {
        stream: [
            {"pos": pos, "stream": stream, "k": k, "value": f"{stream}-{pos}-{k}"}
            for pos in positions
            for k in range(per_pos)
        ]
        for stream in streams
    }


def all_streams(store):
    return {stream: list(store.iter_stream(stream)) for stream in STREAMS}


class TestAdoptBatch:
    def test_adoption_preserves_records_and_counts_links(self, tmp_path):
        prev = make_store(tmp_path / "prev", "fingerprint0001")
        prev.write_batch([0, 1], records_for(0, 1))
        prev.write_batch([2], records_for(2))
        cur = make_store(tmp_path / "cur", "fingerprint0002")
        cur.obs = ObsCollector()
        total = {"linked": 0, "copied": 0}
        for entry in prev.batches():
            counts = cur.adopt_batch(prev, entry)
            total["linked"] += counts["linked"]
            total["copied"] += counts["copied"]
        assert total == {"linked": 4, "copied": 0}  # 2 batches x 2 streams
        assert all_streams(cur) == all_streams(prev)
        counters = cur.obs.metrics.as_dict()["counters"]
        assert counters["segments.reuse.linked"] == 4
        assert "segments.reuse.copied" not in counters

    def test_adopted_files_are_hard_links(self, tmp_path):
        prev = make_store(tmp_path / "prev", "fingerprint0001")
        prev.write_batch([0], records_for(0))
        cur = make_store(tmp_path / "cur", "fingerprint0002")
        cur.adopt_batch(prev, prev.batches()[0])
        source = next(prev.segments_dir.glob("bids-*.jsonl"))
        target = cur.segments_dir / source.name
        assert target.stat().st_ino == source.stat().st_ino

    def test_link_failure_falls_back_to_byte_copy(self, tmp_path, monkeypatch):
        prev = make_store(tmp_path / "prev", "fingerprint0001")
        prev.write_batch([0, 1], records_for(0, 1))
        cur = make_store(tmp_path / "cur", "fingerprint0002")
        cur.obs = ObsCollector()

        def refuse(*args, **kwargs):
            raise OSError("EXDEV: cross-device link")

        monkeypatch.setattr(os, "link", refuse)
        counts = cur.adopt_batch(prev, prev.batches()[0])
        assert counts == {"linked": 0, "copied": 2}
        assert all_streams(cur) == all_streams(prev)
        source = next(prev.segments_dir.glob("bids-*.jsonl"))
        target = cur.segments_dir / source.name
        assert target.read_bytes() == source.read_bytes()
        assert target.stat().st_ino != source.stat().st_ino
        counters = cur.obs.metrics.as_dict()["counters"]
        assert counters["segments.reuse.copied"] == 2

    def test_adopted_marker_records_origin_fingerprint(self, tmp_path):
        prev = make_store(tmp_path / "prev", "fingerprint0001")
        prev.write_batch([0], records_for(0))
        cur = make_store(tmp_path / "cur", "fingerprint0002")
        cur.adopt_batch(prev, prev.batches()[0])
        marker = json.loads(
            next(cur.batches_dir.glob("batch-*.json")).read_text()
        )
        assert marker["origin"] == {"config_fingerprint": "fingerprint0001"}
        assert marker["config_fingerprint"] == "fingerprint0002"
        # A fresh handle re-validates everything from disk, including
        # the adopted headers (stamped with the origin fingerprint).
        fresh = make_store(tmp_path / "cur", "fingerprint0002")
        assert fresh.covered_positions() == {0}
        assert all_streams(fresh) == all_streams(prev)

    def test_second_hand_adoption_keeps_the_original_origin(self, tmp_path):
        first = make_store(tmp_path / "a", "fingerprint000a")
        first.write_batch([0], records_for(0))
        second = make_store(tmp_path / "b", "fingerprint000b")
        second.adopt_batch(first, first.batches()[0])
        third = make_store(tmp_path / "c", "fingerprint000c")
        third.adopt_batch(second, second.batches()[0])
        marker = json.loads(
            next(third.batches_dir.glob("batch-*.json")).read_text()
        )
        # Headers inside the linked files carry store A's fingerprint.
        assert marker["origin"] == {"config_fingerprint": "fingerprint000a"}
        assert all_streams(third) == all_streams(first)

    def test_adoption_rejects_covered_positions_and_foreign_stores(
        self, tmp_path
    ):
        prev = make_store(tmp_path / "prev", "fingerprint0001")
        prev.write_batch([0], records_for(0))
        entry = prev.batches()[0]
        cur = make_store(tmp_path / "cur", "fingerprint0002")
        cur.write_batch([0], records_for(0))
        with pytest.raises(PositionsCoveredError):
            cur.adopt_batch(prev, entry)
        foreign = SegmentStore(tmp_path / "f", 99, "fingerprint0002", ROSTER)
        with pytest.raises(ValueError):
            foreign.adopt_batch(prev, entry)
        other_roster = SegmentStore(
            tmp_path / "r", 42, "fingerprint0002", ("solo",)
        )
        with pytest.raises(ValueError):
            other_roster.adopt_batch(prev, entry)


class TestSidecarIndex:
    def test_point_read_matches_full_scan(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 2, 4], records_for(0, 2, 4))
        store.write_batch([1, 5], records_for(1, 5))
        for pos in range(6):
            expected = [
                r for r in store.iter_stream("bids") if r["pos"] == pos
            ]
            assert store.stream_records_for("bids", pos) == expected

    def test_index_file_written_per_batch(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1], records_for(0, 1))
        index = json.loads(
            (store.batches_dir / "index-00000000.json").read_text()
        )
        offsets = index["streams"]["bids"]["offsets"]
        assert set(offsets) == {"0", "1"}
        start, length, count = offsets["1"]
        segment = next(store.segments_dir.glob("bids-*.jsonl"))
        blob = segment.read_bytes()[start : start + length]
        parsed = [json.loads(line) for line in blob.splitlines()]
        assert len(parsed) == count
        assert all(r["pos"] == 1 for r in parsed)

    def test_deleted_index_is_rebuilt_from_the_segment(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1, 2], records_for(0, 1, 2))
        expected = store.stream_records_for("bids", 1)
        index_path = store.batches_dir / "index-00000000.json"
        index_path.unlink()
        fresh = make_store(tmp_path)
        assert fresh.stream_records_for("bids", 1) == expected
        rebuilt = json.loads(index_path.read_text())
        assert set(rebuilt["streams"]["bids"]["offsets"]) == {"0", "1", "2"}

    def test_stale_index_is_rebuilt_not_trusted(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1], records_for(0, 1))
        expected = store.stream_records_for("bids", 1)
        index_path = store.batches_dir / "index-00000000.json"
        payload = json.loads(index_path.read_text())
        payload["streams"]["bids"]["digest"] = "0" * 64  # foreign segment
        index_path.write_text(json.dumps(payload))
        fresh = make_store(tmp_path)
        assert fresh.stream_records_for("bids", 1) == expected

    def test_point_read_for_uncovered_position_is_empty(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], records_for(0))
        assert store.stream_records_for("bids", 3) == []
        assert store.stream_records_for("audio", 0) == []


class TestDigestCache:
    def test_second_scan_never_rehashes(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 1], records_for(0, 1))
        store.write_batch([2], records_for(2))
        warm = make_store(tmp_path)
        warm.obs = ObsCollector()
        warm.covered_positions()
        counters = warm.obs.metrics.as_dict()["counters"]
        # The writer already verified these bytes; the cache it
        # persisted serves every later scan, in any process.
        assert counters["segments.digest_cache.hits"] == 4
        assert "segments.digest_cache.misses" not in counters

    def test_cache_survives_restarts_on_disk(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], records_for(0))
        payload = json.loads(store.digest_cache_path.read_text())
        assert len(payload["files"]) == 2  # bids + flows
        for name, entry in payload["files"].items():
            assert set(entry) == {"size", "mtime_ns", "digest"}
            assert (store.segments_dir / name).stat().st_size == entry["size"]

    def test_full_verification_can_be_forced(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], records_for(0))
        cold = make_store(tmp_path)
        cold.verify_digests_fully = True
        cold.obs = ObsCollector()
        cold.covered_positions()
        counters = cold.obs.metrics.as_dict()["counters"]
        assert counters["segments.digest_cache.misses"] == 2
        assert "segments.digest_cache.hits" not in counters

    def test_modified_file_misses_the_cache_and_is_caught(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], records_for(0))
        store.write_batch([1], records_for(1))
        segment = next(store.segments_dir.glob("bids-00000000-*.jsonl"))
        segment.write_bytes(segment.read_bytes() + b"tampered\n")
        fresh = make_store(tmp_path)
        assert fresh.covered_positions() == {1}

    def test_mismatch_quarantines_the_segment_with_a_warning(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], records_for(0))
        segment = next(store.segments_dir.glob("bids-*.jsonl"))
        segment.write_bytes(b"garbage")
        fresh = make_store(tmp_path)
        # Capture on the module logger itself: the CLI cuts propagation
        # at the "repro" root, so a root-attached caplog can miss it.
        captured = []
        handler = logging.Handler()
        handler.emit = captured.append
        log = logging.getLogger("repro.core.segments")
        log.addHandler(handler)
        try:
            assert fresh.covered_positions() == set()
        finally:
            log.removeHandler(handler)
        assert any(
            record.levelno == logging.WARNING
            and "quarantined" in record.getMessage()
            for record in captured
        )
        # The bad segment is preserved as evidence, not left at a live
        # name for the recompute to overwrite; the marker follows.
        assert segment.with_name(segment.name + ".corrupt").exists()
        assert not segment.exists()
        assert list(fresh.batches_dir.glob("*.corrupt"))

    def test_mismatch_clears_the_persisted_cache(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0], records_for(0))
        store.write_batch([1], records_for(1))
        segment = next(store.segments_dir.glob("bids-00000000-*.jsonl"))
        segment.write_bytes(b"garbage")
        fresh = make_store(tmp_path)
        assert fresh.covered_positions() == {1}
        assert fresh._digest_cache_distrusted
        # Only entries re-verified cold after the mismatch survive; the
        # corrupt file's stale entry is gone with the rest of the
        # pre-mismatch cache.
        payload = json.loads(fresh.digest_cache_path.read_text())
        assert segment.name not in payload["files"]
        for name in payload["files"]:
            assert (fresh.segments_dir / name).exists()


class TestMergeFastPath:
    def test_non_overlapping_batches_chain_without_heap(
        self, tmp_path, monkeypatch
    ):
        store = make_store(tmp_path)
        store.write_batch([0, 1], records_for(0, 1))
        store.write_batch([2, 3], records_for(2, 3))

        def no_heap(*args, **kwargs):
            raise AssertionError("heap merge on a non-overlapping plan")

        monkeypatch.setattr(
            type(store), "_heap_merge_entries", no_heap
        )
        positions = [r["pos"] for r in store.iter_stream("bids")]
        assert positions == sorted(positions)

    def test_overlapping_batches_still_heap_merge(self, tmp_path):
        store = make_store(tmp_path)
        store.write_batch([0, 3], records_for(0, 3))
        store.write_batch([1, 2], records_for(1, 2))
        positions = [r["pos"] for r in store.iter_stream("bids")]
        assert positions == sorted(positions)
        values = [r["value"] for r in store.iter_stream("bids")]
        assert values == [f"bids-{p}-{k}" for p in range(4) for k in range(3)]
