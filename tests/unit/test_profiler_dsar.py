"""Tests for the interest profiler and the DSAR portal."""

import pytest

from repro.alexa.account import AmazonAccount
from repro.alexa.cloud import AlexaCloud
from repro.alexa.device import EchoDevice
from repro.alexa.dsar import DataRequestPortal
from repro.alexa.marketplace import Marketplace
from repro.alexa.profiler import InterestProfiler
from repro.data import categories as cat
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed


@pytest.fixture
def rig():
    seed = Seed(13)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    portal = DataRequestPortal(cloud)
    return seed, router, catalog, cloud, marketplace, portal


def build_persona(rig, persona, n_skills=30, interact_waves=0):
    """Install top-N skills for a persona; optionally run interactions."""
    seed, router, catalog, cloud, marketplace, portal = rig
    account = AmazonAccount(email=f"{persona}@example.com", persona=persona)
    device = EchoDevice(f"dev-{persona}-{interact_waves}", account, router, cloud, seed)
    skills = [s for s in catalog.top_skills(persona, n_skills) if s.active]
    for spec in skills:
        marketplace.install(account, spec.skill_id)
    for _ in range(interact_waves):
        for spec in skills:
            device.run_skill_session(spec)
        cloud.advance_epoch(account.customer_id)
    return account


class TestInterestProfiler:
    def test_install_only_health_infers_interests(self, rig):
        _, _, catalog, cloud, *_ = rig
        account = build_persona(rig, cat.HEALTH, n_skills=30)
        profile = InterestProfiler(catalog).profile(
            cloud.account_state(account.customer_id)
        )
        assert "Electronics" in profile.interests
        assert "Home & Garden: DIY & Tools" in profile.interests

    def test_install_only_fashion_infers_nothing(self, rig):
        _, _, catalog, cloud, *_ = rig
        account = build_persona(rig, cat.FASHION, n_skills=30)
        profile = InterestProfiler(catalog).profile(
            cloud.account_state(account.customer_id)
        )
        assert profile.interests == ()

    def test_interaction_unlocks_fashion_interests(self, rig):
        _, _, catalog, cloud, *_ = rig
        account = build_persona(rig, cat.FASHION, n_skills=15, interact_waves=1)
        profile = InterestProfiler(catalog).profile(
            cloud.account_state(account.customer_id)
        )
        assert "Fashion" in profile.interests
        assert "Beauty & Personal Care" in profile.interests

    def test_second_wave_evolves_interests(self, rig):
        _, _, catalog, cloud, *_ = rig
        account = build_persona(rig, cat.SMART_HOME, n_skills=15, interact_waves=2)
        profile = InterestProfiler(catalog).profile(
            cloud.account_state(account.customer_id)
        )
        assert "Pet Supplies" in profile.interests  # interaction-2 rule
        assert "Electronics" not in profile.interests  # dropped from -1

    def test_below_threshold_installs_ignored(self, rig):
        _, _, catalog, cloud, *_ = rig
        account = build_persona(rig, cat.HEALTH, n_skills=5)
        profile = InterestProfiler(catalog).profile(
            cloud.account_state(account.customer_id)
        )
        assert profile.interests == ()


class TestDsarPortal:
    def test_export_contains_transcripts(self, rig):
        *_, portal = rig
        account = build_persona(rig, cat.FASHION, n_skills=5, interact_waves=1)
        export = portal.request_data(account.customer_id)
        assert export.transcripts
        assert export.files["Alexa.SkillsActivity.csv"] == len(export.transcripts)

    def test_interest_file_present_before_interaction(self, rig):
        *_, portal = rig
        account = build_persona(rig, cat.HEALTH, n_skills=30)
        export = portal.request_data(account.customer_id)
        assert export.advertising_interests is not None

    def test_interest_file_missing_on_second_post_interaction_request(self, rig):
        _, _, _, cloud, _, portal = rig
        account = build_persona(rig, cat.HEALTH, n_skills=30, interact_waves=1)
        first = portal.request_data(account.customer_id)
        assert first.advertising_interests is not None
        cloud.advance_epoch(account.customer_id)
        second = portal.request_data(account.customer_id)
        assert second.advertising_interests is None

    def test_rerequest_still_missing(self, rig):
        _, _, _, cloud, _, portal = rig
        account = build_persona(rig, cat.WINE, n_skills=30, interact_waves=1)
        portal.request_data(account.customer_id)
        cloud.advance_epoch(account.customer_id)
        portal.request_data(account.customer_id)
        again = portal.request_data(account.customer_id)
        assert again.advertising_interests is None

    def test_unaffected_persona_keeps_file(self, rig):
        _, _, _, cloud, _, portal = rig
        account = build_persona(rig, cat.SMART_HOME, n_skills=30, interact_waves=1)
        portal.request_data(account.customer_id)
        cloud.advance_epoch(account.customer_id)
        second = portal.request_data(account.customer_id)
        assert second.advertising_interests is not None

    def test_request_index_increments(self, rig):
        *_, portal = rig
        account = build_persona(rig, cat.DATING, n_skills=3)
        assert portal.request_data(account.customer_id).request_index == 1
        assert portal.request_data(account.customer_id).request_index == 2
