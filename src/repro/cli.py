"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        run the full (or scaled) campaign and export artifacts
``timeline``   longitudinal multi-epoch audits (``generate`` / ``run``)
``serve``      start the audit HTTP service (:mod:`repro.service`)
``submit``     submit a CampaignSpec file to a running audit service
``tables``     print the paper's headline tables from a fresh campaign
``report``     render campaign reports (``obs-summary``)
``policheck``  run the §7 policy-compliance analysis
``sync``       run the §5.5 cookie-sync analysis
``audio``      run the §5.4 audio-ad study
``defend``     run the §8.1 defense evaluations
``version``    print the package version

Every campaign-running command shares one flag set (``--seed``,
``--small``, ``--parallel``, ``--workers``, ``--backend``, ``--faults``,
``--cache``, ``--quiet``, ``--trace-out``, ``--metrics-out``) and goes
through
:func:`repro.core.run_campaign`.  ``run`` additionally exposes the
crash-safety knobs (``--checkpoint-dir``, ``--resume``,
``--on-shard-failure``, ``--shard-timeout``) and accepts a serialized
:class:`~repro.core.campaign.CampaignSpec` via ``--spec`` — the same
document the HTTP service takes, so ``repro run --spec`` and an HTTP
submission of the same file export byte-identical directories.  Output
is emitted through the ``repro.cli`` logger; ``--quiet`` raises the
threshold to warnings.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.core.bids import bid_summary_table, significance_vs_vanilla
from repro.core.campaign import CampaignSpec, execute_spec, run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.report import render_kv, render_table
from repro.core.syncing import detect_cookie_syncing
from repro.util.rng import Seed

__all__ = ["main", "build_parser"]

_LOG = logging.getLogger("repro.cli")


class _ConsoleHandler(logging.Handler):
    """Stdout handler that resolves ``sys.stdout`` at emit time, so
    output lands in whatever stream is active (pytest's ``capsys``
    swaps the stream between tests)."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stdout.write(self.format(record) + "\n")
        except Exception:
            self.handleError(record)


def _configure_logging(quiet: bool = False) -> None:
    """Idempotent logger setup for the ``repro`` namespace."""
    root = logging.getLogger("repro")
    if not any(isinstance(h, _ConsoleHandler) for h in root.handlers):
        handler = _ConsoleHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
    root.setLevel(logging.WARNING if quiet else logging.INFO)
    root.propagate = False


# ---------------------------------------------------------------------- #
# Parsers
# ---------------------------------------------------------------------- #


def _common_parent() -> argparse.ArgumentParser:
    """Flags every command shares."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=42)
    parent.add_argument(
        "--quiet", action="store_true", help="suppress informational output"
    )
    return parent


def _campaign_parent(common: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Flags every campaign-running command shares, on top of the
    common set.  Declared once; each subcommand mounts it via
    ``parents=[...]`` instead of redeclaring the flags."""
    parent = argparse.ArgumentParser(add_help=False, parents=[common])
    parent.add_argument("--small", action="store_true", help="scaled-down campaign")
    parent.add_argument(
        "--parallel",
        action="store_true",
        help="shard the campaign by persona across workers; exports and "
        "the merged trace's simulated-time span tree are identical to a "
        "serial run",
    )
    parent.add_argument(
        "--workers", type=int, default=4, help="worker count for --parallel"
    )
    parent.add_argument(
        "--backend",
        choices=("process", "thread"),
        default="process",
        help="executor backend for --parallel",
    )
    parent.add_argument(
        "--faults",
        metavar="PROFILE",
        default="none",
        help="network fault profile: none|mild|harsh or a float rate "
        "(e.g. 0.05); seeded and deterministic, see repro.netsim.faults",
    )
    parent.add_argument(
        "--storage-faults",
        metavar="PROFILE",
        default="none",
        help="storage fault profile: none|mild|harsh or a float rate; "
        "seeded, deterministic I/O fault injection on every durable "
        "write/read path, see repro.core.iosim.  Harness-level: exports "
        "stay byte-identical to a fault-free run",
    )
    parent.add_argument(
        "--cache",
        action="store_true",
        help="serve the campaign from the on-disk dataset cache, computing "
        "and storing it on first use; the CLI only reads the dataset, so "
        "the cached instance is aliased without a deep copy",
    )
    parent.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the campaign trace (manifest, spans, events) as JSONL",
    )
    parent.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write campaign counters/gauges as JSON",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="echo-audit: smart-speaker ecosystem auditing framework",
    )
    common = _common_parent()
    campaign = _campaign_parent(common)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", parents=[campaign], help="run the campaign and export artifacts"
    )
    run.add_argument("--out", default="results", help="output directory")
    run.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="run the campaign described by a serialized CampaignSpec "
        "(JSON; '-' for stdin) instead of composing one from flags — the "
        "same document `repro submit` sends to the audit service, so both "
        "surfaces export byte-identical directories",
    )
    run.add_argument(
        "--store",
        choices=("memory", "segments"),
        default="memory",
        help="campaign backend: memory (default) holds the full dataset "
        "in RAM; segments streams persona batches through the on-disk "
        "segment store, keeping peak memory flat in the roster size — "
        "exports are byte-identical either way",
    )
    run.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="segment store root for --store segments "
        "(default: <out>/_segments); covered personas found there are "
        "reused instead of recomputed",
    )
    run.add_argument(
        "--roster-scale",
        type=int,
        default=1,
        metavar="N",
        help="replicate each interest persona N times (controls are "
        "never replicated): roster grows from 13 to 9*N+4 personas; "
        "large scales should use --store segments",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="journal completed persona shards to DIR (requires --parallel); "
        "a killed run can be resumed from it with --resume",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint journal in --checkpoint-dir instead "
        "of recomputing completed shards; exports are byte-identical to an "
        "uninterrupted run of the same seed/config",
    )
    run.add_argument(
        "--on-shard-failure",
        choices=("retry", "degrade", "raise"),
        default="retry",
        help="supervisor policy for a crashed/hung shard worker: retry "
        "(requeue, then fail), degrade (drop the shard, export a partial "
        "dataset with missing_personas recorded), or raise immediately",
    )
    run.add_argument(
        "--shard-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock watchdog: reap and requeue a shard worker that "
        "produces no result within SECONDS (host clock, not sim clock)",
    )

    serve = sub.add_parser(
        "serve", parents=[common], help="start the audit HTTP service"
    )
    serve.add_argument(
        "--root",
        default="audit-jobs",
        help="service state directory (jobs, checkpoints, exports); "
        "restarting with the same root recovers in-flight jobs",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--total-workers",
        type=int,
        default=4,
        metavar="N",
        help="worker-token budget shared by all running campaigns: a "
        "serial campaign costs 1, a parallel one its worker count",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="bounded admission queue: submissions beyond N queued "
        "campaigns get HTTP 429 with Retry-After",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock watchdog: a campaign running longer is "
        "marked failed and its worker tokens are freed",
    )

    fsck = sub.add_parser(
        "fsck",
        parents=[common],
        help="cold integrity audit of a segment store, checkpoint "
        "journal, or service job tree",
    )
    fsck.add_argument(
        "path",
        metavar="DIR",
        help="artifact tree to audit (auto-detected: segment store / "
        "campaign dir / checkpoint journal / job tree)",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="apply repairs: rebuild sidecar indexes, drop stale digest "
        "caches, re-stamp recoverable journal manifests, truncate torn "
        "event-log tails, quarantine corrupt artifacts to *.corrupt",
    )
    fsck.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the JSON report here",
    )

    submit = sub.add_parser(
        "submit", parents=[common], help="submit a CampaignSpec to a service"
    )
    submit.add_argument(
        "spec", metavar="FILE", help="CampaignSpec JSON file ('-' for stdin)"
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8321", help="audit service base URL"
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll the job until it reaches a terminal state",
    )
    submit.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval for --wait",
    )
    submit.add_argument(
        "--download",
        metavar="DIR",
        default=None,
        help="after completion, download every result file to DIR "
        "(implies --wait)",
    )

    timeline = sub.add_parser(
        "timeline", help="longitudinal multi-epoch audits (TimelineSpec)"
    )
    tsub = timeline.add_subparsers(dest="timeline_command", required=True)
    tgen = tsub.add_parser(
        "generate",
        parents=[common],
        help="author a seeded TimelineSpec and print/write its JSON",
    )
    tgen.add_argument("--small", action="store_true", help="scaled-down campaign")
    tgen.add_argument(
        "--parallel", action="store_true", help="shard each epoch across workers"
    )
    tgen.add_argument(
        "--workers", type=int, default=4, help="worker count for --parallel"
    )
    tgen.add_argument(
        "--backend", choices=("process", "thread"), default="process"
    )
    tgen.add_argument(
        "--faults", metavar="PROFILE", default="none",
        help="network fault profile for every epoch (none|mild|harsh|rate)",
    )
    tgen.add_argument("--epochs", type=int, default=2, metavar="N")
    tgen.add_argument(
        "--gap-days", type=int, default=0, metavar="DAYS",
        help="sim-clock shift between epochs; nonzero marches the campaign "
        "across the holiday ramp but dirties every persona",
    )
    tgen.add_argument("--drift-personas", type=int, default=2, metavar="N")
    tgen.add_argument("--churn-categories", type=int, default=1, metavar="N")
    tgen.add_argument("--filterlist-updates", type=int, default=1, metavar="N")
    tgen.add_argument(
        "--out", default="-", metavar="FILE",
        help="write the TimelineSpec JSON here ('-' for stdout)",
    )
    trun = tsub.add_parser(
        "run",
        parents=[common],
        help="execute a TimelineSpec: per-epoch exports + delta reports",
    )
    trun.add_argument(
        "--spec", metavar="FILE", required=True,
        help="TimelineSpec JSON file ('-' for stdin)",
    )
    trun.add_argument("--out", default="timeline-results", help="output directory")
    trun.add_argument(
        "--cold", action="store_true",
        help="disable incremental reuse: every epoch recomputes the full "
        "roster (exports are byte-identical either way — this flag exists "
        "to verify exactly that)",
    )

    sub.add_parser("tables", parents=[campaign], help="print headline tables")

    report = sub.add_parser("report", parents=[campaign], help="render reports")
    report.add_argument(
        "view",
        choices=("obs-summary",),
        help="obs-summary: per-phase cost, counters, and the run manifest",
    )

    policheck = sub.add_parser(
        "policheck", parents=[campaign], help="run the §7 compliance analysis"
    )
    policheck.add_argument("--with-amazon-policy", action="store_true")

    sub.add_parser("sync", parents=[campaign], help="run the §5.5 cookie-sync analysis")

    audio = sub.add_parser(
        "audio", parents=[common], help="run the §5.4 audio-ad study"
    )
    audio.add_argument("--hours", type=float, default=6.0)

    sub.add_parser(
        "defend", parents=[common], help="run the §8.1 defense evaluations"
    )

    sub.add_parser("version", help="print version")
    return parser


def _config(small: bool) -> ExperimentConfig:
    if not small:
        return ExperimentConfig()
    return ExperimentConfig(
        skills_per_persona=8,
        pre_iterations=2,
        post_iterations=6,
        crawl_sites=8,
        prebid_discovery_target=50,
        audio_hours=2.0,
    )


def _resolve_config(args, config: Optional[ExperimentConfig] = None):
    """Parsed flags -> the effective campaign config."""
    config = config if config is not None else _config(args.small)
    faults = getattr(args, "faults", "none")
    if faults != config.fault_profile:
        config = dataclasses.replace(config, fault_profile=faults)
    roster_scale = getattr(args, "roster_scale", 1)
    if roster_scale != config.roster_scale:
        config = dataclasses.replace(config, roster_scale=roster_scale)
    return config


def _run_campaign_from_args(args, config: Optional[ExperimentConfig] = None):
    """One code path from parsed flags to a campaign dataset."""
    config = _resolve_config(args, config)
    use_cache = getattr(args, "cache", False)
    dataset = run_campaign(
        config,
        args.seed,
        parallel=args.parallel,
        workers=args.workers if args.parallel else None,
        backend=args.backend,
        cache=True if use_cache else None,
        cache_copy=not use_cache,
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=getattr(args, "resume", False),
        on_shard_failure=getattr(args, "on_shard_failure", "retry"),
        shard_timeout=getattr(args, "shard_timeout", None),
    )
    _write_obs_outputs(dataset, args)
    return dataset


def _write_obs_outputs(dataset, args) -> None:
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if dataset.obs is None:
        if trace_out or metrics_out:
            _LOG.warning("observability was disabled; nothing to write")
        return
    if trace_out:
        count = dataset.obs.write_trace(trace_out)
        _LOG.info("wrote %d trace records to %s", count, trace_out)
    if metrics_out:
        dataset.obs.write_metrics(metrics_out)
        _LOG.info("wrote metrics to %s", metrics_out)


# ---------------------------------------------------------------------- #
# Commands
# ---------------------------------------------------------------------- #


def _spec_from_run_args(args) -> Optional[CampaignSpec]:
    """``run`` flags -> a :class:`CampaignSpec`, or ``None`` on a flag
    conflict (already logged, exit code 2)."""
    if args.store == "segments":
        incompatible = [
            flag
            for flag, active in (
                ("--cache", args.cache),
                ("--resume", args.resume),
                ("--checkpoint-dir", args.checkpoint_dir is not None),
                ("--trace-out", args.trace_out is not None),
                ("--metrics-out", args.metrics_out is not None),
            )
            if active
        ]
        if incompatible:
            _LOG.warning(
                "%s do(es) not apply to --store segments: the store's "
                "content-addressed batches already provide reuse and resume, "
                "and segment workers do not trace",
                ", ".join(incompatible),
            )
            return None
        return CampaignSpec(
            config=_resolve_config(args),
            seed=args.seed,
            parallel=args.parallel,
            workers=args.workers if args.parallel else None,
            backend=args.backend,
            store="segments",
            store_dir=args.store_dir,
            on_shard_failure=args.on_shard_failure,
            shard_timeout=args.shard_timeout,
        )
    if args.store_dir is not None:
        _LOG.warning("--store-dir is ignored without --store segments")
    cache_root = None
    if args.cache:
        from repro.core.cache import DatasetCache

        cache_root = str(DatasetCache().root)
    return CampaignSpec(
        config=_resolve_config(args),
        seed=args.seed,
        parallel=args.parallel,
        workers=args.workers if args.parallel else None,
        backend=args.backend,
        # the CLI only reads the dataset, so a cache hit is aliased
        cache=cache_root,
        cache_copy=not args.cache,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        on_shard_failure=args.on_shard_failure,
        shard_timeout=args.shard_timeout,
    )


def _load_spec_file(path: str) -> CampaignSpec:
    text = sys.stdin.read() if path == "-" else Path(path).read_text(encoding="utf-8")
    return CampaignSpec.from_json(text)


def _cmd_run(args) -> int:
    if args.spec is not None:
        shaping = [
            flag
            for flag, active in (
                ("--seed", args.seed != 42),
                ("--small", args.small),
                ("--parallel", args.parallel),
                ("--backend", args.backend != "process"),
                ("--faults", args.faults != "none"),
                ("--cache", args.cache),
                ("--store", args.store != "memory"),
                ("--store-dir", args.store_dir is not None),
                ("--roster-scale", args.roster_scale != 1),
                ("--checkpoint-dir", args.checkpoint_dir is not None),
                ("--resume", args.resume),
                ("--on-shard-failure", args.on_shard_failure != "retry"),
                ("--shard-timeout", args.shard_timeout is not None),
            )
            if active
        ]
        if shaping:
            _LOG.warning(
                "--spec takes the whole campaign from the file; also passing "
                "%s is ambiguous — edit the spec instead",
                ", ".join(shaping),
            )
            return 2
        spec = _load_spec_file(args.spec)
    else:
        spec = _spec_from_run_args(args)
        if spec is None:
            return 2
    counts, result = execute_spec(spec, args.out)
    _LOG.info("%s", render_kv(counts, title=f"exported to {args.out}/"))
    if spec.store == "segments":
        _LOG.info("segment store: %s", result.campaign_dir)
        return 0
    _write_obs_outputs(result, args)
    if result.timings:
        total = result.timings.get("total", 0.0)
        _LOG.info("campaign wall-clock: %.1fs", total)
    return 0


def _cmd_timeline(args) -> int:
    from repro.core.timeline import TimelineSpec, run_timeline

    if args.timeline_command == "generate":
        config = _config(args.small)
        if args.faults != config.fault_profile:
            config = dataclasses.replace(config, fault_profile=args.faults)
        base = CampaignSpec(
            config=config,
            seed=args.seed,
            parallel=args.parallel,
            workers=args.workers if args.parallel else None,
            backend=args.backend,
            store="segments",
        )
        spec = TimelineSpec.generate(
            base,
            n_epochs=args.epochs,
            epoch_gap_days=args.gap_days,
            drift_personas=args.drift_personas,
            churn_categories=args.churn_categories,
            filterlist_updates=args.filterlist_updates,
        )
        text = spec.to_json(indent=2) + "\n"
        if args.out == "-":
            sys.stdout.write(text)
        else:
            Path(args.out).write_text(text, encoding="utf-8")
            _LOG.info("wrote TimelineSpec (%d epochs) to %s", args.epochs, args.out)
        return 0

    text = (
        sys.stdin.read()
        if args.spec == "-"
        else Path(args.spec).read_text(encoding="utf-8")
    )
    spec = TimelineSpec.from_json(text)
    result = run_timeline(spec, args.out, incremental=not args.cold)
    for run in result.epochs:
        counts = dict(run.counts)
        counts["personas_reused"] = run.personas_reused
        counts["personas_recomputed"] = run.personas_recomputed
        _LOG.info(
            "%s",
            render_kv(
                counts,
                title=f"epoch {run.index:02d} -> {run.export_dir}/ ({run.status})",
            ),
        )
    for delta in result.deltas:
        epochs = delta["epochs"]
        _LOG.info(
            "delta epoch %02d -> %02d: %d new / %d vanished tracker domains, "
            "%d policy regressions",
            epochs["previous"],
            epochs["current"],
            len(delta["tracker_domains"]["new"]),
            len(delta["tracker_domains"]["vanished"]),
            len(delta["policy_regressions"]),
        )
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.service import AuditService

    service = AuditService(
        args.root,
        host=args.host,
        port=args.port,
        total_workers=args.total_workers,
        max_queue=args.max_queue,
        job_timeout=args.job_timeout,
    )
    service.start()
    _LOG.info("audit service listening on %s (root: %s)", service.url, args.root)

    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        while not stop.wait(0.5):
            pass
        # SIGTERM: graceful drain — stop admission, let running
        # campaigns finish (queued jobs stay durably queued for the
        # next start), flush, exit 0.
        _LOG.info("SIGTERM: draining running campaigns")
        finished = service.drain()
        _LOG.info(
            "drain %s", "complete" if finished else "timed out; exiting anyway"
        )
    except KeyboardInterrupt:
        _LOG.info("shutting down")
        service.stop(wait=False)
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def _cmd_fsck(args) -> int:
    from repro.core.fsck import fsck_path

    try:
        report = fsck_path(args.path, repair=args.repair)
    except ValueError as exc:
        _LOG.warning("%s", exc)
        return 2
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    sys.stdout.write(text)
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
    return 0 if report["unrecoverable"] == 0 else 1


_TERMINAL_JOB_STATES = ("complete", "partial", "failed", "cancelled")


def _http_json(url: str, data: Optional[bytes] = None) -> dict:
    import urllib.request

    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def _cmd_submit(args) -> int:
    import urllib.error
    import urllib.request

    spec = _load_spec_file(args.spec)  # fail locally before going remote
    base = args.url.rstrip("/")
    try:
        job = _http_json(base + "/campaigns", spec.to_json().encode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        _LOG.warning("submit rejected (%d): %s", exc.code, detail)
        return 1
    _LOG.info("submitted %s (fingerprint %s)", job["id"], spec.fingerprint())
    if not args.wait and args.download is None:
        return 0
    while True:
        detail = _http_json(f"{base}/campaigns/{job['id']}")
        if detail["state"] in _TERMINAL_JOB_STATES:
            break
        time.sleep(args.poll)
    _LOG.info("job %s: %s", job["id"], detail["state"])
    if args.download is not None:
        listing = _http_json(f"{base}/campaigns/{job['id']}/results")
        out = Path(args.download)
        out.mkdir(parents=True, exist_ok=True)
        for name in listing["files"]:
            with urllib.request.urlopen(
                f"{base}/campaigns/{job['id']}/results/{name}"
            ) as response:
                (out / name).write_bytes(response.read())
        _LOG.info("downloaded %d files to %s/", len(listing["files"]), out)
    return 0 if detail["state"] in ("complete", "partial") else 1


def _cmd_tables(args) -> int:
    dataset = _run_campaign_from_args(args)
    rows = [
        (r.persona, f"{r.summary.median:.3f}", f"{r.summary.mean:.3f}")
        for r in bid_summary_table(dataset)
    ]
    _LOG.info(
        "%s\n", render_table(["persona", "median CPM", "mean CPM"], rows, title="Table 5")
    )
    rows = [
        (p, f"{r.p_value:.3f}", f"{r.effect_size:.3f}", "yes" if r.significant else "no")
        for p, r in significance_vs_vanilla(dataset).items()
    ]
    _LOG.info(
        "%s\n", render_table(["persona", "p", "effect", "significant"], rows, title="Table 7")
    )
    sync = detect_cookie_syncing(dataset)
    _LOG.info(
        "%s",
        render_kv(
            {
                "partners syncing with Amazon": sync.partner_count,
                "downstream third parties": sync.downstream_count,
            },
            title="§5.5",
        ),
    )
    return 0


def _cmd_report(args) -> int:
    dataset = _run_campaign_from_args(args)
    if dataset.obs is None:
        _LOG.warning("observability was disabled; no summary available")
        return 1
    summary = dataset.obs.summary()
    rows = [
        (name, f"{entry['real_s']:.3f}", f"{entry['sim_s']:.1f}", entry["spans"])
        for name, entry in sorted(summary["phases"].items())
    ]
    _LOG.info(
        "%s\n",
        render_table(["phase", "real s", "sim s", "spans"], rows, title="campaign phases"),
    )
    _LOG.info("%s\n", render_kv(summary["counters"], title="counters"))
    if summary["gauges"]:
        _LOG.info("%s\n", render_kv(summary["gauges"], title="gauges"))
    manifest = summary["manifest"]
    if manifest is not None:
        _LOG.info(
            "%s",
            render_kv(
                {
                    "seed": manifest["seed_root"],
                    "config": manifest["config_fingerprint"],
                    "entrypoint": manifest["entrypoint"],
                    "workers": manifest["workers"],
                    "backend": manifest["backend"],
                    "faults": manifest["fault_profile"],
                    "personas": manifest["persona_count"],
                    "events": summary["events"],
                },
                title="run manifest",
            ),
        )
    return 0


def _cmd_defend(args) -> int:
    from repro.alexa import AlexaCloud, AmazonAccount, EchoDevice, Marketplace
    from repro.data import categories as cat
    from repro.data.domains import PIHOLE_FILTER_TEXT, build_endpoint_registry
    from repro.data.skill_catalog import build_catalog
    from repro.defenses import BlockingRouter, evaluate_blocking
    from repro.netsim.router import Router
    from repro.orgmap.filterlists import FilterList
    from repro.util.clock import SimClock

    seed = Seed(args.seed)
    router = Router(build_endpoint_registry(), SimClock())
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, router.clock, seed)
    marketplace = Marketplace(catalog, cloud)
    blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))
    account = AmazonAccount(email="defend@persona.example.com", persona="defend")
    device = EchoDevice("echo-defend", account, blocking, cloud, seed)
    skills = [s for s in catalog.top_skills(cat.FASHION, 50) if s.active]
    evaluation = evaluate_blocking(device, marketplace, skills, blocking)
    for spec in skills:
        device.background_sync(list(spec.amazon_endpoints))
    _LOG.info(
        "%s",
        render_kv(
            {
                "skills functional": f"{evaluation.skills_functional}/{evaluation.skills_run}",
                "breakage rate": f"{100 * evaluation.breakage_rate:.1f}%",
                "tracking requests blocked": blocking.report.blocked_total,
            },
            title="selective blocking",
        ),
    )
    return 0


def _cmd_policheck(args) -> int:
    from repro.core.compliance import analyze_compliance, policy_availability
    from repro.data import datatypes as dt

    config = ExperimentConfig(
        pre_iterations=0,
        post_iterations=1,
        crawl_sites=1,
        prebid_discovery_target=2,
        audio_hours=0.1,
    )
    dataset = _run_campaign_from_args(args, config=config)
    world = dataset.world
    availability = policy_availability(dataset)
    _LOG.info(
        "%s\n",
        render_kv(
            {
                "skills": availability.total_skills,
                "policy links": availability.with_link,
                "downloadable": availability.downloadable,
                "generic (no Amazon mention)": availability.generic,
            },
            title="§7.1",
        ),
    )
    compliance = analyze_compliance(
        dataset,
        world.corpus,
        world.org_resolver(),
        world.org_categories(),
        include_platform_policy=args.with_amazon_policy,
    )
    rows = [
        (
            data_type,
            counts.get("clear", 0),
            counts.get("vague", 0),
            counts.get("omitted", 0),
            counts.get("no policy", 0),
        )
        for data_type in dt.ALL_DATA_TYPES
        for counts in [compliance.datatype_table.get(data_type, {})]
    ]
    _LOG.info(
        "%s",
        render_table(
            ["data type", "clear", "vague", "omitted", "no policy"],
            rows,
            title="Table 13",
        ),
    )
    return 0


def _cmd_sync(args) -> int:
    dataset = _run_campaign_from_args(args)
    analysis = detect_cookie_syncing(dataset)
    _LOG.info(
        "%s",
        render_kv(
            {
                "sync events": len(analysis.events),
                "partners syncing with Amazon": analysis.partner_count,
                "Amazon outbound syncs": len(analysis.amazon_outbound_targets),
                "downstream third parties": analysis.downstream_count,
            },
            title="§5.5 cookie syncing",
        ),
    )
    return 0


def _cmd_audio(args) -> int:
    from repro.adtech.audio import AudioAdServer
    from repro.core.adcontent import extract_audio_ads, transcribe_session
    from repro.data import categories as cat

    server = AudioAdServer(Seed(args.seed).derive("audio"))
    rows = []
    for skill in ("Amazon Music", "Spotify", "Pandora"):
        for persona in (cat.CONNECTED_CAR, cat.FASHION, cat.VANILLA):
            session = server.stream(skill, persona, hours=args.hours)
            brands = extract_audio_ads(transcribe_session(session))
            rows.append((skill, persona, len(brands)))
    _LOG.info(
        "%s", render_table(["skill", "persona", "ads"], rows, title="§5.4 audio ads")
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(quiet=getattr(args, "quiet", False))
    if args.command == "version":
        _LOG.info("%s", __version__)
        return 0
    if getattr(args, "storage_faults", "none") != "none":
        # Harness-level, not campaign-shaping: the plan lives in the
        # process (and, via propagate, in spawned workers), never in the
        # spec — which is why it composes with --spec and never touches
        # the config fingerprint.
        from repro.core.iosim import install_storage_faults

        install_storage_faults(
            args.storage_faults,
            seed=getattr(args, "seed", 42),
            propagate=True,
        )
    handlers = {
        "run": _cmd_run,
        "timeline": _cmd_timeline,
        "serve": _cmd_serve,
        "fsck": _cmd_fsck,
        "submit": _cmd_submit,
        "tables": _cmd_tables,
        "report": _cmd_report,
        "policheck": _cmd_policheck,
        "sync": _cmd_sync,
        "audio": _cmd_audio,
        "defend": _cmd_defend,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
