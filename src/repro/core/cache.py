"""On-disk dataset cache keyed by (seed, config).

Early versions memoized the campaign with an in-process
``functools.lru_cache``, which had two problems: every
caller shared one mutable :class:`~repro.core.experiment.AuditDataset`
(mutations leaked between tests), and the cache died with the process,
so every pytest session re-ran the full campaign.

:class:`DatasetCache` fixes both.  Datasets are pickled to disk under a
key derived from the seed root, the config fingerprint, and a schema
version, so repeat runs — across processes — load in seconds.  By
default reads return a deep copy, so callers can mutate their dataset
freely; read-only consumers (the CLI's report path, benchmarks) pass
``copy=False`` to alias the cached instance and skip the deep copy,
which for a paper-scale dataset costs more than loading the pickle.

The pickled payload strips the :class:`~repro.core.world.World` handle
(a world holds registered service closures, which do not pickle).  On a
disk hit the returned dataset carries a *fresh* ``build_world(seed)`` —
the same generative truth (catalog, toplist, corpus, entity DB), but
none of the campaign's accumulated runtime state (account interactions,
capture buffers).  Consumers of build-time attributes, which is all the
benchmarks use, see no difference.

The cache root is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-echo-audit``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from copy import copy as _shallow_copy, deepcopy as _deepcopy
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.checkpoint import atomic_write_bytes, quarantine_path
from repro.core.iosim import read_bytes as _seam_read_bytes
from repro.core.experiment import (
    AuditDataset,
    ExperimentConfig,
    _run_serial_experiment,
)
from repro.core.world import build_config_world
from repro.util.rng import Seed

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DatasetCache",
    "config_fingerprint",
    "default_cache_dir",
]

#: Bump whenever the pickled dataset layout changes shape; stale entries
#: are silently treated as misses and recomputed.
#: v2: AuditDataset gained the ``obs`` collector field.
#: v3: fault-injection era — ExperimentConfig gained ``fault_profile``
#: (fingerprints shifted) and reattached worlds honour it.
#: v4: sealed-flow era — ``Packet``/``Flow`` became slotted dataclasses
#: and captures pickle an incremental ``FlowTable``/``DnsTable``; v3
#: pickles would unpickle into the wrong shape.
#: v5: crash-safe era — ``AuditDataset`` gained ``missing_personas``
#: (supervisor degraded-merge accounting); v4 pickles lack the field.
#: v6: segment-store era — ``PersonaArtifacts`` gained per-persona
#: ``policy_fetches`` and ``ExperimentConfig`` gained ``roster_scale``
#: (fingerprints shifted); v5 pickles lack the field.  New campaigns
#: should prefer the content-addressed segment store
#: (:mod:`repro.core.segments`), which subsumes this cache with
#: persona-granularity reuse; ``DatasetCache`` remains as the
#: compatibility path for whole-dataset consumers.
#: v7: timeline era — ``ExperimentConfig`` gained the epoch-mutation
#: fields (``epoch_offset_days``, ``bidders_entered``/``bidders_exited``,
#: ``catalog_churn``, ``interest_drift``); fingerprints shifted and
#: reattached worlds are built through ``build_config_world`` so the
#: mutations apply on cache loads too.
CACHE_SCHEMA_VERSION = 7

_ENV_VAR = "REPRO_CACHE_DIR"

_log = logging.getLogger(__name__)


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-echo-audit``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-echo-audit"


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable digest of every config field (new fields change the key)."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class DatasetCache:
    """Two-level (memory, disk) cache of completed campaign datasets."""

    #: Pristine datasets computed or loaded by this process, shared by
    #: every ``DatasetCache`` instance.  Entries are never handed out
    #: directly — see :meth:`get_or_run`.
    _memory: Dict[Tuple[str, int, str], AuditDataset] = {}

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Whether the most recent :meth:`get_or_run` was served from the
        #: cache (memory or disk) rather than computed.  Feeds the run
        #: manifest's ``cache_hit`` field.
        self.last_hit = False

    # ------------------------------------------------------------------ #

    def read(
        self,
        seed_root: int,
        config: ExperimentConfig = ExperimentConfig(),
        *,
        copy: bool = True,
        compute=None,
    ) -> AuditDataset:
        """The campaign dataset for ``(seed_root, config)``.

        Runs the campaign on a miss (via ``compute``, a zero-argument
        callable; defaults to the serial campaign); loads from disk
        otherwise.  With ``copy=True`` (the default) returns an
        independent deep copy — mutations never propagate to other
        callers or back into the cache.  ``copy=False`` returns the
        cached instance itself: much cheaper, but the caller must treat
        it as read-only (exports, reports, benchmarks all qualify).
        """
        key = self._key(seed_root, config)
        dataset = self._memory.get(key)
        if dataset is None:
            dataset = self._load(seed_root, config)
        self.last_hit = dataset is not None
        if dataset is None:
            if compute is None:
                dataset = _run_serial_experiment(Seed(seed_root), config)
            else:
                dataset = compute()
            self._store(seed_root, config, dataset)
        self._memory[key] = dataset
        return _deepcopy(dataset) if copy else dataset

    def get_or_run(
        self,
        seed_root: int,
        config: ExperimentConfig = ExperimentConfig(),
        compute=None,
    ) -> AuditDataset:
        """Compatibility alias for :meth:`read` with deep-copy semantics."""
        return self.read(seed_root, config, copy=True, compute=compute)

    def clear(self) -> None:
        """Drop every entry, in memory and on disk, under this root."""
        for key in [k for k in self._memory if k[0] == str(self.root)]:
            del self._memory[key]
        if self.root.is_dir():
            for pattern in ("dataset-*.pkl", "dataset-*.pkl.corrupt"):
                for path in self.root.glob(pattern):
                    path.unlink(missing_ok=True)

    def path_for(self, seed_root: int, config: ExperimentConfig) -> Path:
        """Where the entry for ``(seed_root, config)`` lives on disk."""
        fingerprint = config_fingerprint(config)
        return self.root / (
            f"dataset-v{CACHE_SCHEMA_VERSION}-seed{seed_root}-{fingerprint}.pkl"
        )

    # ------------------------------------------------------------------ #

    def _key(self, seed_root: int, config: ExperimentConfig):
        return (str(self.root), seed_root, config_fingerprint(config))

    def _load(
        self, seed_root: int, config: ExperimentConfig
    ) -> Optional[AuditDataset]:
        path = self.path_for(seed_root, config)
        try:
            # Corruptible seam read: a flipped bit fails the pickle load
            # or envelope check and falls into the quarantine-and-miss
            # path below — a recompute, never altered data.
            raw = _seam_read_bytes(
                path, component="cache", op="dataset", corruptible=True
            )
            payload = pickle.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not an envelope dict")
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Truncated or corrupt entry (e.g. a crash mid-write before the
            # atomic helper existed, or disk damage): quarantine it aside so
            # the evidence survives, warn, and treat as a miss — the
            # recompute publishes a fresh entry at the original key.
            quarantined = self._quarantine(path)
            _log.warning(
                "quarantined corrupt cache entry %s -> %s (%s: %s); "
                "treating as a miss",
                path.name,
                quarantined.name if quarantined is not None else "<gone>",
                type(exc).__name__,
                exc,
            )
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        dataset: AuditDataset = payload["dataset"]
        # Re-attach a generative-truth world (see module docstring).
        dataset.world = build_config_world(Seed(seed_root), config)
        return dataset

    def _store(
        self, seed_root: int, config: ExperimentConfig, dataset: AuditDataset
    ) -> None:
        path = self.path_for(seed_root, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        stripped = _shallow_copy(dataset)  # shallow: share artifacts, drop world
        stripped.world = None
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "seed_root": seed_root,
            "config": dataclasses.asdict(config),
            "dataset": stripped,
        }
        # Atomic, fsynced publish (shared with the checkpoint journal):
        # never leave a half-written pickle at the key.
        atomic_write_bytes(
            path,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            component="cache",
            op="dataset",
        )

    @staticmethod
    def _quarantine(path: Path) -> Optional[Path]:
        """Move a corrupt entry to ``<name>.corrupt`` (best effort)."""
        return quarantine_path(path)
