"""Property tests: incremental FlowTable grouping vs the legacy reference.

The sealed-flow pipeline claims that building flows *as packets arrive*
(``FlowTable.add`` + ``seal``) is observationally identical to the
legacy post-hoc re-scan of the packet list: same flow keys, same key
order (first-packet insertion order), same per-flow packet sequences,
and same aggregates.  These tests check that claim against an
independent naive grouping on randomized seeded streams — including
streams salted with the fault shapes the campaign injects (NXDOMAIN
answers, HTTP 5xx bodies) — and against the captures of a real
mild-faulted campaign.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.netsim.packet import Direction, FlowTable, Packet, Protocol, flow_key, group_flows

LAN_IP = "192.168.7.10"
REMOTES = ("54.1.2.3", "54.9.9.9", "13.33.0.1")
DEVICES = ("echo-1", "echo-2")
SNIS = (None, "api.amazon.com", "ads.tracker.example")
#: Payload shapes seen on the wire, including the injected-fault ones:
#: an empty DNS answer set (NXDOMAIN) and an injected HTTP 5xx body.
PAYLOADS = (
    None,
    {"kind": "http-response", "status": 503, "error": "service unavailable"},
    {"kind": "dns-response", "answers": []},
    {
        "kind": "dns-response",
        "answers": [{"domain": "api.amazon.com", "ip": "54.1.2.3", "ttl": 60}],
    },
)


@st.composite
def packets(draw):
    protocol = draw(st.sampled_from((Protocol.TLS, Protocol.HTTP, Protocol.DNS)))
    remote = draw(st.sampled_from(REMOTES))
    remote_port = draw(st.sampled_from((443, 80, 53)))
    outbound = draw(st.booleans())
    if outbound:
        src_ip, dst_ip = LAN_IP, remote
        src_port, dst_port = 50000, remote_port
    else:
        src_ip, dst_ip = remote, LAN_IP
        src_port, dst_port = remote_port, 50000
    return Packet(
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        size=draw(st.integers(min_value=0, max_value=4096)),
        direction=Direction.OUTBOUND if outbound else Direction.INBOUND,
        device_id=draw(st.sampled_from(DEVICES)),
        sni=draw(st.sampled_from(SNIS)),
        payload=draw(st.sampled_from(PAYLOADS)),
    )


def reference_groups(stream):
    """Independent naive grouping: dict keyed in first-packet order."""
    groups = {}
    for packet in stream:
        groups.setdefault(flow_key(packet), []).append(packet)
    return groups


def assert_flows_match_reference(flows, stream):
    groups = reference_groups(stream)
    assert [flow.key for flow in flows] == list(groups)
    for flow in flows:
        expected = groups[flow.key]
        assert flow.packets == expected
        assert flow.total_bytes == sum(p.size for p in expected)
        assert flow.first_timestamp == min(p.timestamp for p in expected)
        expected_sni = next((p.sni for p in expected if p.sni is not None), None)
        assert flow.sni == expected_sni


class TestFlowTableProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(packets(), max_size=120))
    def test_incremental_equals_reference(self, stream):
        table = FlowTable()
        for packet in stream:
            table.add(packet)
        assert_flows_match_reference(table.seal(), stream)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(packets(), max_size=120))
    def test_group_flows_wrapper_equals_incremental(self, stream):
        table = FlowTable()
        for packet in stream:
            table.add(packet)
        sealed = table.seal()
        legacy = group_flows(stream)
        assert [f.key for f in legacy] == [f.key for f in sealed]
        assert [f.packets for f in legacy] == [f.packets for f in sealed]
        assert [f.total_bytes for f in legacy] == [f.total_bytes for f in sealed]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(packets(), min_size=1, max_size=120))
    def test_sealed_flows_are_never_empty(self, stream):
        table = FlowTable()
        for packet in stream:
            table.add(packet)
        for flow in table.seal():
            assert flow.packets  # invariant: a flow exists only with ≥1 packet
            flow.first_timestamp  # must never raise on a sealed flow


class TestFaultedCampaignCaptures:
    def test_mild_faulted_captures_match_reference(self):
        """Real injected 5xx/NXDOMAIN packets group identically."""
        config = ExperimentConfig(
            skills_per_persona=2,
            pre_iterations=1,
            post_iterations=1,
            crawl_sites=2,
            prebid_discovery_target=5,
            audio_hours=0.5,
            fault_profile="mild",
        )
        dataset = run_campaign(config, 42, obs=False)
        captures = [
            capture
            for artifacts in dataset.interest_personas
            for capture in artifacts.skill_captures.values()
        ]
        assert captures
        for capture in captures:
            assert_flows_match_reference(capture.flows(), capture.packets)
